"""``repro-top``: a live operations console for the advisor service.

Tails ``GET /metrics`` (plus the flight recorder at
``GET /v1/debug/recent``) and renders the watch layer's panes --
request/solver rates and latencies, SLO burn-rate states, surrogate
drift scores, controller health, recent anomalies -- as a
stdlib-curses dashboard.  ``--once`` renders a single plaintext
snapshot to stdout instead, for CI smoke tests, cron, and pipes.

No dependencies beyond the repo: the HTTP side is the blocking
:class:`repro.service.client.ServiceClient`, the UI is ``curses`` from
the standard library (degrading to ``--once`` behaviour when the
terminal cannot host curses).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.service.client import ServiceClient, ServiceError

__all__ = ["render_lines", "main"]

_STATE_MARK = {"ok": " ok ", "warn": "WARN", "page": "PAGE"}


def _fmt_ms(value: float | None) -> str:
    return "-" if value is None else f"{value:8.2f}"


def _bar(fraction: float, width: int = 10) -> str:
    filled = max(0, min(width, round(fraction * width)))
    return "#" * filled + "." * (width - filled)


def fetch_snapshot(client: ServiceClient) -> dict:
    """One console frame's worth of service state."""
    metrics = client.metrics()
    try:
        recent = client.debug("recent", limit=8)
    except ServiceError:
        recent = {"records": [], "counts": {}}
    return {"metrics": metrics, "recent": recent}


def render_lines(snapshot: dict, *, width: int = 100) -> list[str]:
    """Render one frame as plain text lines (shared by curses/--once)."""
    m = snapshot["metrics"]
    recent = snapshot.get("recent", {})
    process = m.get("process", {})
    alerts = m.get("alerts", {}) or {}
    lines: list[str] = []

    uptime = float(m.get("uptime_s", 0.0))
    lines.append(
        f"repro-top | up {uptime:9.1f}s | pid {process.get('pid', '?')} "
        f"| v{process.get('version', '?')} "
        f"| rev {str(process.get('revision', '?'))[:12]} "
        f"| cfg {str(process.get('config_digest', '?'))[:12]}"
    )
    lines.append(
        f"alerts: {alerts.get('paging', 0)} paging, "
        f"{alerts.get('warning', 0)} warning"
    )
    lines.append("-" * width)

    lines.append("ENDPOINTS            req    err   shed      p50ms      p99ms")
    for path, stats in sorted(m.get("endpoints", {}).items()):
        lat = stats.get("latency_ms", {})
        lines.append(
            f"{path:<18} {stats.get('requests', 0):6d} "
            f"{stats.get('errors', 0):6d} {stats.get('sheds', 0):6d} "
            f"{_fmt_ms(lat.get('p50'))}   {_fmt_ms(lat.get('p99'))}"
        )
    lines.append("SOLVERS              calls                p50ms      p99ms")
    for source, stats in sorted(m.get("solvers", {}).items()):
        lat = stats.get("latency_ms", {})
        lines.append(
            f"solver:{source:<11} {stats.get('requests', 0):6d} "
            f"{'':13s} {_fmt_ms(lat.get('p50'))}   {_fmt_ms(lat.get('p99'))}"
        )
    lines.append("-" * width)

    lines.append("SLO                        state  fast-burn  slow-burn  breached")
    for slo in m.get("slo", []) or []:
        state = str(slo.get("state", "ok"))
        if slo.get("signal") == "staleness":
            value = slo.get("value")
            detail = (
                f"  age {value:8.1f}s / max {slo.get('max_age_s', 0):.0f}s"
                if value is not None
                else "  (no samples yet)"
            )
            lines.append(
                f"{slo.get('name', '?'):<26} {_STATE_MARK.get(state, state)}"
                + detail
            )
            continue
        fast = slo.get("fast", {})
        slow = slo.get("slow", {})
        lines.append(
            f"{slo.get('name', '?'):<26} {_STATE_MARK.get(state, state)} "
            f"{fast.get('burn', 0.0):9.2f}  {slow.get('burn', 0.0):9.2f}  "
            f"{slo.get('breached_for_s', 0.0):7.1f}s"
        )
    lines.append("-" * width)

    drift = m.get("drift", {}) or {}
    shadow = drift.get("shadow", {}) or {}
    flag = "DEGRADED" if drift.get("degraded") else "healthy"
    lines.append(
        f"DRIFT [{flag}]  gate mape<={100 * drift.get('max_mape', 0.0):.1f}%  "
        f"shadows {shadow.get('sampled', 0)}/{shadow.get('calls', 0)} "
        f"(rate {shadow.get('rate', 0.0):.2f}, "
        f"skipped {shadow.get('skipped_inflight', 0)}, "
        f"auto_fallback={'on' if drift.get('auto_fallback') else 'off'})"
    )
    for scheme, score in sorted((drift.get("schemes") or {}).items()):
        gate = max(drift.get("max_mape", 0.05), 1e-9)
        mark = "BREACH" if score.get("breached") else "  ok  "
        lines.append(
            f"  {scheme:<12} {mark} mape {100 * score.get('mape', 0.0):6.2f}% "
            f"[{_bar(min(1.0, score.get('mape', 0.0) / (2 * gate)))}] "
            f"r2 {score.get('r2', 0.0):7.4f}  n={score.get('n', 0)}"
        )
    lines.append("-" * width)

    ctl = m.get("controller", {}) or {}
    lines.append(
        f"CONTROLLER  sessions {ctl.get('sessions', 0)}  "
        f"epochs {ctl.get('epochs', 0)}  "
        f"fire-rate {100 * ctl.get('fire_rate', 0.0):5.1f}%  "
        f"churn {ctl.get('beta_churn_mean', 0.0):.3f}  "
        f"resolve {ctl.get('resolve_ms_mean', 0.0):.2f}ms "
        f"(max {ctl.get('resolve_ms_max', 0.0):.2f})  "
        f"regret<= {100 * ctl.get('regret_proxy_max', 0.0):.1f}%"
    )
    lines.append("-" * width)

    counts = recent.get("counts", {}) or {}
    lines.append(
        "RECENT  "
        + "  ".join(f"{k}:{counts.get(k, 0)}" for k in sorted(counts))
    )
    for rec in (recent.get("records") or [])[:8]:
        latency = rec.get("latency_ms")
        lines.append(
            f"  [{rec.get('kind', '?'):<8}] {rec.get('path', '?'):<22} "
            f"status={rec.get('status')} "
            f"lat={'-' if latency is None else f'{latency:.1f}ms'} "
            f"{rec.get('detail') or ''}"
        )
    return [line[:width] for line in lines]


def _run_once(client: ServiceClient) -> int:
    try:
        snapshot = fetch_snapshot(client)
    except (ServiceError, OSError) as exc:
        print(f"repro-top: cannot reach service: {exc}", file=sys.stderr)
        return 1
    for line in render_lines(snapshot):
        print(line)
    return 0


def _run_curses(client: ServiceClient, interval_s: float) -> int:
    import curses

    def loop(screen) -> None:
        curses.curs_set(0)
        screen.nodelay(True)
        while True:
            try:
                snapshot = fetch_snapshot(client)
                height, width = screen.getmaxyx()
                lines = render_lines(snapshot, width=max(40, width - 1))
            except (ServiceError, OSError) as exc:
                lines = [f"repro-top: cannot reach service: {exc}"]
            screen.erase()
            for row, line in enumerate(lines):
                if row >= screen.getmaxyx()[0] - 1:
                    break
                screen.addnstr(row, 0, line, screen.getmaxyx()[1] - 1)
            screen.addnstr(
                screen.getmaxyx()[0] - 1,
                0,
                f"refresh {interval_s:.1f}s | q quits",
                screen.getmaxyx()[1] - 1,
            )
            screen.refresh()
            deadline = time.monotonic() + interval_s
            while time.monotonic() < deadline:
                key = screen.getch()
                if key in (ord("q"), ord("Q")):
                    return
                time.sleep(0.05)

    try:
        curses.wrapper(loop)
    except curses.error as exc:
        print(
            f"repro-top: terminal cannot host curses ({exc}); "
            "falling back to --once",
            file=sys.stderr,
        )
        return _run_once(client)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live operations console for the partitioning-advisor "
        "service (SLO burn rates, surrogate drift, controller health).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8737)
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period in seconds (curses mode)")
    parser.add_argument("--once", action="store_true",
                        help="print one plaintext snapshot and exit "
                        "(CI smoke / pipes)")
    parser.add_argument("--timeout", type=float, default=5.0,
                        help="per-request HTTP timeout in seconds")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.once:
            return _run_once(client)
        return _run_curses(client, max(0.2, args.interval))
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


if __name__ == "__main__":
    sys.exit(main())
