"""``python -m repro.watch`` == ``repro-top``."""

from __future__ import annotations

import sys

from repro.watch.top import main

if __name__ == "__main__":
    sys.exit(main())
