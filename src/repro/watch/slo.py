"""Declarative service-level objectives with multi-window burn rates.

An :class:`SLO` states what "good" means for one signal of one surface
-- request availability for an endpoint, request latency under a
threshold for an endpoint or a solver profile, or the staleness of a
monitor feed -- plus the objective (the target fraction of good
events).  The :class:`SLOEngine` turns the service's event stream into
*burn rates*: the ratio of the observed bad-event rate to the error
budget ``1 - objective``.  A burn of 1.0 spends the budget exactly at
the sustainable pace; a burn of 14.4 empties a 30-day budget in two
days.

Alerting is multi-window, the SRE-workbook shape: an objective *pages*
only when both a fast window (default 5 minutes -- "it is burning
right now") and a slow window (default 1 hour -- "it has been burning
long enough to matter") exceed their burn thresholds, which filters
blips without missing sustained incidents; one window alone is a
*warn*.  Staleness objectives are level-based instead (the current age
of a feed against ``max_age_s``) because a feed that has stopped
produces no events to rate.

Counts live in coarse time buckets inside a bounded deque, so an
engine's memory is O(slow_window / bucket) per objective regardless of
traffic, and the clock is injectable for tests.  Objectives come from
:func:`default_slos` or from a JSON file (:func:`load_slos`) -- see
``docs/WATCH.md`` for the schema.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.util.errors import ConfigurationError

__all__ = [
    "SIGNALS",
    "SLO",
    "SLOEngine",
    "WindowedCounts",
    "default_slos",
    "slos_from_json",
    "load_slos",
]

#: objective kinds an SLO may declare
SIGNALS: tuple[str, ...] = ("availability", "latency", "staleness")

#: events below this count in a window never alert: a single failed
#: request at night would otherwise page with an astronomical burn
DEFAULT_MIN_EVENTS = 10


@dataclass(frozen=True)
class SLO:
    """One declarative objective.

    ``selector`` binds the objective to an event stream: an endpoint
    path (``/v1/partition``), a solver profile (``solver:surrogate``),
    a monitor feed (``drift:shadow_age_s`` for staleness), ``*`` for
    everything, or a ``prefix*`` pattern (``/v1/stream/*``).
    """

    name: str
    signal: str
    selector: str
    #: target fraction of good events (availability/latency); the error
    #: budget is ``1 - objective``
    objective: float = 0.999
    #: latency objectives: a request is good iff it finishes within this
    threshold_ms: float | None = None
    #: staleness objectives: the feed is good iff its age is below this
    max_age_s: float | None = None
    fast_window_s: float = 300.0
    slow_window_s: float = 3600.0
    #: burn-rate thresholds per window (page needs both, warn needs one)
    fast_burn: float = 14.4
    slow_burn: float = 6.0
    #: a window with fewer events than this never alerts
    min_events: int = DEFAULT_MIN_EVENTS

    def __post_init__(self) -> None:
        if self.signal not in SIGNALS:
            raise ConfigurationError(
                f"SLO {self.name!r}: unknown signal {self.signal!r}; "
                f"available: {sorted(SIGNALS)}"
            )
        if not self.name or not self.selector:
            raise ConfigurationError("SLO name and selector must be non-empty")
        if not (0.0 < self.objective < 1.0):
            raise ConfigurationError(
                f"SLO {self.name!r}: objective must be in (0, 1), "
                f"got {self.objective}"
            )
        if self.signal == "latency" and (
            self.threshold_ms is None or self.threshold_ms <= 0
        ):
            raise ConfigurationError(
                f"SLO {self.name!r}: latency objectives need threshold_ms > 0"
            )
        if self.signal == "staleness" and (
            self.max_age_s is None or self.max_age_s <= 0
        ):
            raise ConfigurationError(
                f"SLO {self.name!r}: staleness objectives need max_age_s > 0"
            )
        if not (0 < self.fast_window_s < self.slow_window_s):
            raise ConfigurationError(
                f"SLO {self.name!r}: need 0 < fast_window_s < slow_window_s"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ConfigurationError(
                f"SLO {self.name!r}: burn thresholds must be positive"
            )
        if self.min_events < 1:
            raise ConfigurationError(
                f"SLO {self.name!r}: min_events must be >= 1"
            )

    def matches(self, selector: str) -> bool:
        """Does an event tagged ``selector`` feed this objective?"""
        if self.selector == "*":
            return True
        if self.selector.endswith("*"):
            return selector.startswith(self.selector[:-1])
        return selector == self.selector

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "signal": self.signal,
            "selector": self.selector,
            "objective": self.objective,
            "threshold_ms": self.threshold_ms,
            "max_age_s": self.max_age_s,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "min_events": self.min_events,
        }


class WindowedCounts:
    """Good/bad event counts over a sliding horizon, in coarse buckets.

    Buckets are anchored at the first event that opens them and span
    ``bucket_s`` seconds; anything older than ``horizon_s`` is pruned
    on every touch, so memory is O(horizon / bucket) regardless of
    event rate.  Window sums include every bucket whose *start* falls
    inside the window -- at the default 10 s granularity that edge
    blur is far below alerting resolution.
    """

    def __init__(
        self,
        horizon_s: float,
        *,
        bucket_s: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if horizon_s <= 0 or bucket_s <= 0:
            raise ConfigurationError("horizon_s and bucket_s must be positive")
        self.horizon_s = float(horizon_s)
        self.bucket_s = float(bucket_s)
        self._clock = clock
        #: deque of [bucket_start, good_count, bad_count]
        self._buckets: deque[list[float]] = deque()

    def _prune(self, now: float) -> None:
        while self._buckets and now - self._buckets[0][0] > self.horizon_s:
            self._buckets.popleft()

    def record(self, good: bool, n: int = 1) -> None:
        now = self._clock()
        self._prune(now)
        if not self._buckets or now - self._buckets[-1][0] >= self.bucket_s:
            self._buckets.append([now, 0.0, 0.0])
        self._buckets[-1][1 if good else 2] += n

    def counts(self, window_s: float) -> tuple[float, float]:
        """(good, bad) event counts over the trailing ``window_s``."""
        now = self._clock()
        self._prune(now)
        good = bad = 0.0
        for start, g, b in reversed(self._buckets):
            if now - start > window_s:
                break
            good += g
            bad += b
        return good, bad


class SLOEngine:
    """Routes events into per-objective trackers and evaluates burn.

    Event feeds:

    * :meth:`record_request` -- one finished HTTP request (availability
      objectives see ``error``; latency objectives see ``latency_ms``
      vs their threshold, on non-error requests only -- a 500 in 2 ms
      is not a fast success);
    * :meth:`record_solve` -- one solver call, tagged
      ``solver:<source>``;
    * :meth:`set_level` -- the current value of a staleness feed
      (evaluated against ``max_age_s`` at :meth:`status` time).
    """

    def __init__(
        self,
        slos: Sequence[SLO] | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        bucket_s: float = 10.0,
    ) -> None:
        self._clock = clock
        self.slos: tuple[SLO, ...] = tuple(
            default_slos() if slos is None else slos
        )
        names = [s.name for s in self.slos]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(f"duplicate SLO names: {dupes}")
        self._counts: dict[str, WindowedCounts] = {
            s.name: WindowedCounts(s.slow_window_s, bucket_s=bucket_s, clock=clock)
            for s in self.slos
            if s.signal != "staleness"
        }
        #: staleness feeds: selector -> current level
        self._levels: dict[str, float] = {}
        #: objective name -> clock() time the current breach started
        self._breached_since: dict[str, float] = {}

    # ------------------------------------------------------------------
    # event feeds
    # ------------------------------------------------------------------
    def record_request(
        self, path: str, latency_ms: float, *, error: bool
    ) -> None:
        for slo in self.slos:
            if slo.signal == "availability" and slo.matches(path):
                self._counts[slo.name].record(not error)
            elif slo.signal == "latency" and slo.matches(path) and not error:
                assert slo.threshold_ms is not None  # enforced at init
                self._counts[slo.name].record(latency_ms <= slo.threshold_ms)

    def record_solve(self, source: str, latency_ms: float) -> None:
        self.record_request(f"solver:{source}", latency_ms, error=False)

    def set_level(self, selector: str, value: float) -> None:
        """Update a staleness feed (e.g. seconds since the last shadow)."""
        self._levels[selector] = float(value)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _window(self, slo: SLO, window_s: float, burn_threshold: float) -> dict:
        good, bad = self._counts[slo.name].counts(window_s)
        total = good + bad
        rate = bad / total if total else 0.0
        budget = 1.0 - slo.objective
        burn = rate / budget
        return {
            "window_s": window_s,
            "total": total,
            "bad": bad,
            "error_rate": rate,
            "burn": burn,
            "burning": bool(total >= slo.min_events and burn >= burn_threshold),
        }

    def _status_one(self, slo: SLO) -> dict:
        base = {
            "name": slo.name,
            "signal": slo.signal,
            "selector": slo.selector,
            "objective": slo.objective,
        }
        if slo.signal == "staleness":
            level = self._levels.get(slo.selector)
            state = (
                "page"
                if level is not None and slo.max_age_s is not None
                and level > slo.max_age_s
                else "ok"
            )
            base.update(
                {"value": level, "max_age_s": slo.max_age_s, "state": state}
            )
        else:
            fast = self._window(slo, slo.fast_window_s, slo.fast_burn)
            slow = self._window(slo, slo.slow_window_s, slo.slow_burn)
            if fast["burning"] and slow["burning"]:
                state = "page"
            elif fast["burning"] or slow["burning"]:
                state = "warn"
            else:
                state = "ok"
            if slo.signal == "latency":
                base["threshold_ms"] = slo.threshold_ms
            base.update({"fast": fast, "slow": slow, "state": state})
        now = self._clock()
        if state == "ok":
            self._breached_since.pop(slo.name, None)
            base["breached_for_s"] = 0.0
        else:
            since = self._breached_since.setdefault(slo.name, now)
            base["breached_for_s"] = max(0.0, now - since)
        return base

    def status(self) -> list[dict]:
        """Every objective's current evaluation, in declaration order."""
        return [self._status_one(slo) for slo in self.slos]

    def alerts(self) -> dict:
        """The compact ``/metrics`` alerts section."""
        page: list[dict] = []
        warn: list[dict] = []
        for st in self.status():
            if st["state"] == "ok":
                continue
            entry = {
                "name": st["name"],
                "signal": st["signal"],
                "selector": st["selector"],
                "state": st["state"],
                "breached_for_s": st["breached_for_s"],
            }
            (page if st["state"] == "page" else warn).append(entry)
        return {
            "paging": len(page),
            "warning": len(warn),
            "page": page,
            "warn": warn,
        }


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def default_slos() -> tuple[SLO, ...]:
    """The service's built-in objectives, per endpoint and per profile."""
    return (
        SLO("partition.availability", "availability", "/v1/partition"),
        SLO(
            "partition.latency", "latency", "/v1/partition",
            objective=0.99, threshold_ms=50.0,
        ),
        SLO("batch.availability", "availability", "/v1/partition/batch"),
        SLO("qos.availability", "availability", "/v1/qos"),
        SLO(
            "stream.availability", "availability", "/v1/stream/*",
            objective=0.99,
        ),
        SLO(
            "solve.analytic.latency", "latency", "solver:analytic",
            objective=0.99, threshold_ms=5.0,
        ),
        SLO(
            "solve.surrogate.latency", "latency", "solver:surrogate",
            objective=0.99, threshold_ms=5.0,
        ),
        SLO(
            "solve.sim.latency", "latency", "solver:sim",
            objective=0.95, threshold_ms=500.0,
        ),
        SLO(
            "surrogate.shadow.staleness", "staleness", "drift:shadow_age_s",
            max_age_s=900.0,
        ),
    )


_SLO_FIELDS = frozenset(SLO.__dataclass_fields__)


def slos_from_json(data: object) -> tuple[SLO, ...]:
    """Parse a JSON array of objective objects into validated SLOs."""
    if not isinstance(data, list) or not data:
        raise ConfigurationError("SLO config must be a non-empty JSON array")
    out: list[SLO] = []
    for i, entry in enumerate(data):
        if not isinstance(entry, dict):
            raise ConfigurationError(f"SLO entry {i} must be a JSON object")
        unknown = set(entry) - _SLO_FIELDS
        if unknown:
            raise ConfigurationError(
                f"SLO entry {i}: unknown fields {sorted(unknown)}; "
                f"available: {sorted(_SLO_FIELDS)}"
            )
        try:
            out.append(SLO(**entry))
        except TypeError as exc:
            raise ConfigurationError(f"SLO entry {i}: {exc}") from None
    return tuple(out)


def load_slos(path: str | os.PathLike[str]) -> tuple[SLO, ...]:
    """Load objectives from a JSON file (see ``docs/WATCH.md``)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ConfigurationError(f"cannot read SLO config {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigurationError(
            f"SLO config {path} is not valid JSON: {exc}"
        ) from exc
    return slos_from_json(data)
