"""Flight recorder: a bounded ring of recent anomalous requests.

Aggregates (the SLO engine, the drift monitor) tell an operator *that*
something is wrong; the flight recorder keeps the last few hundred
*examples* -- slow requests, errors, timeouts, sheds, surrogate
fallbacks, drift-flagged shadow samples -- with enough detail to start
debugging without replaying traffic.  It is served raw through
``GET /v1/debug/recent`` and rendered by ``repro-top``.

The ring is a ``deque(maxlen=capacity)``: constant memory, oldest
records silently dropped, and per-kind lifetime counters survive the
drop so "how many sheds ever" stays answerable after the examples age
out.
"""

from __future__ import annotations

import threading
import time
from collections import Counter as TallyCounter
from collections import deque
from typing import Callable

from repro.util.errors import ConfigurationError

__all__ = ["KINDS", "FlightRecorder"]

#: anomaly classes the recorder accepts
KINDS: tuple[str, ...] = ("slow", "error", "timeout", "shed", "fallback", "drift")


class FlightRecorder:
    """Bounded ring of anomaly records with per-kind lifetime tallies."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._tally: TallyCounter[str] = TallyCounter()
        self._seq = 0

    def record(
        self,
        kind: str,
        *,
        path: str,
        status: int | None = None,
        latency_ms: float | None = None,
        detail: dict | None = None,
    ) -> dict:
        """Append one anomaly; returns the stored record."""
        if kind not in KINDS:
            raise ConfigurationError(
                f"unknown anomaly kind {kind!r}; available: {sorted(KINDS)}"
            )
        with self._lock:
            self._seq += 1
            rec = {
                "seq": self._seq,
                "ts_unix": self._clock(),
                "kind": kind,
                "path": path,
                "status": status,
                "latency_ms": latency_ms,
                "detail": dict(detail) if detail else {},
            }
            self._ring.append(rec)
            self._tally[kind] += 1
            return rec

    def snapshot(self, *, limit: int | None = None, kind: str | None = None) -> dict:
        """Newest-first records (optionally filtered) plus the tallies."""
        if kind is not None and kind not in KINDS:
            raise ConfigurationError(
                f"unknown anomaly kind {kind!r}; available: {sorted(KINDS)}"
            )
        with self._lock:
            records = [
                dict(rec)
                for rec in reversed(self._ring)
                if kind is None or rec["kind"] == kind
            ]
            if limit is not None:
                records = records[: max(0, int(limit))]
            return {
                "capacity": self.capacity,
                "stored": len(self._ring),
                "counts": {k: self._tally.get(k, 0) for k in KINDS},
                "records": records,
            }
