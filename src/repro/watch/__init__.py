"""Operational observability: SLOs, drift detection, flight recording.

:mod:`repro.obs` measures -- counters, histograms, spans.
:mod:`repro.watch` *judges*: it turns those measurements into the
operational quality signals a team serving the partitioning model at
scale actually pages on.

``slo``
    Declarative latency/availability/staleness objectives per endpoint
    and per solver profile, evaluated with multi-window (fast 5 m /
    slow 1 h) burn-rate alerting.
``drift``
    Shadow-samples live surrogate solves through the sim fallback path
    and scores online MAPE/R² per scheme against the artifact's
    fit-time gate, flipping a ``degraded`` flag (with hysteresis) that
    the service can use to auto-fall back to the sim.
``recorder``
    A bounded flight-recorder ring of recent anomalous requests (slow,
    shed, error, fallback, drift-flagged), served via
    ``GET /v1/debug/recent``.
``top``
    ``repro-top``: a stdlib-curses live console tailing ``/metrics``
    (``--once`` renders a plaintext snapshot for CI and pipes).

Controller health (detector fire-rate, β churn, re-solve latency,
regret proxies) lives in :mod:`repro.control.health` next to the
controller it watches; the service aggregates it per session into the
``controller`` section of ``/metrics``.  The glue binding all of this
into the server is :mod:`repro.service.watch`.
"""

from __future__ import annotations

from repro.watch.drift import DriftMonitor, ShadowSampler
from repro.watch.recorder import FlightRecorder
from repro.watch.slo import (
    SLO,
    SLOEngine,
    WindowedCounts,
    default_slos,
    load_slos,
    slos_from_json,
)

__all__ = [
    "SLO",
    "SLOEngine",
    "WindowedCounts",
    "DriftMonitor",
    "ShadowSampler",
    "FlightRecorder",
    "default_slos",
    "load_slos",
    "slos_from_json",
]
