"""Tests for random mix construction (repro.workloads.randmix)."""

import pytest

from repro.util.errors import ConfigurationError
from repro.workloads.randmix import (
    benchmarks_by_intensity,
    mix_by_classes,
    mix_with_rsd,
    random_mix,
)


class TestGroups:
    def test_groups_partition_table3(self):
        groups = benchmarks_by_intensity()
        names = sorted(sum(groups.values(), []))
        from repro.workloads.spec import TABLE3

        assert names == sorted(TABLE3)

    def test_group_sizes_match_paper(self):
        groups = benchmarks_by_intensity()
        assert len(groups["high"]) == 1  # lbm
        assert len(groups["middle"]) == 7
        assert len(groups["low"]) == 8


class TestRandomMix:
    def test_deterministic_per_seed(self):
        m1, _ = random_mix(seed=5)
        m2, _ = random_mix(seed=5)
        assert m1 == m2

    def test_different_seeds_differ(self):
        assert random_mix(seed=1)[0] != random_mix(seed=2)[0]

    def test_no_duplicates_by_default(self):
        members, _ = random_mix(n_apps=8, seed=3)
        assert len(set(members)) == 8

    def test_duplicates_allowed_when_requested(self):
        members, wl = random_mix(n_apps=20, seed=3, allow_duplicates=True)
        assert len(members) == 20
        assert wl.n == 20

    def test_too_many_distinct_rejected(self):
        with pytest.raises(ConfigurationError):
            random_mix(n_apps=17)

    def test_workload_profiles_from_table3(self):
        members, wl = random_mix(seed=9)
        from repro.workloads.spec import TABLE3

        for name, app in zip(members, wl):
            assert app.apc_alone == pytest.approx(
                TABLE3[name].apc_alone_target
            )


class TestMixByClasses:
    def test_respects_classes(self):
        members, _ = mix_by_classes(("high", "middle", "low", "low"), seed=2)
        from repro.workloads.spec import TABLE3

        classes = [TABLE3[m].intensity for m in members]
        assert classes == ["high", "middle", "low", "low"]

    def test_no_repeats_within_mix(self):
        members, _ = mix_by_classes(("low",) * 8, seed=2)
        assert len(set(members)) == 8

    def test_exhausted_class_rejected(self):
        with pytest.raises(ConfigurationError):
            mix_by_classes(("high", "high"), seed=2)  # only lbm is high

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            mix_by_classes(("extreme",), seed=2)


class TestMixWithRsd:
    def test_hetero_band(self):
        members, wl = mix_with_rsd(30.0, 1000.0, seed=4)
        assert wl.heterogeneity > 30.0

    def test_homo_band(self):
        members, wl = mix_with_rsd(0.0, 30.0, seed=4)
        assert wl.heterogeneity <= 30.0

    def test_narrow_band_reachable(self):
        _, wl = mix_with_rsd(40.0, 60.0, seed=4)
        assert 40.0 <= wl.heterogeneity <= 60.0

    def test_impossible_band_raises(self):
        with pytest.raises(ConfigurationError):
            mix_with_rsd(0.0, 0.01, seed=4, max_tries=50)

    def test_invalid_band(self):
        with pytest.raises(ConfigurationError):
            mix_with_rsd(10.0, 5.0)
