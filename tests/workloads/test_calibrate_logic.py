"""Fast unit tests for the calibration logic (repro.workloads.calibrate)
using a stubbed simulator measurement (no real runs)."""

import dataclasses

import pytest

import repro.workloads.calibrate as cal
from repro.workloads.spec import TABLE3


class _FakeWindow:
    def __init__(self, apc: float, ipc: float):
        self.apc = apc
        self.ipc = ipc


class TestDemandSearchLogic:
    def test_bisection_converges_on_monotone_response(self, monkeypatch):
        """Stub: measured IPC = 80% of ipc_peak (a stall-y core).  The
        search must land at ipc_peak = target / 0.8."""
        bench = TABLE3["gobmk"]
        target = bench.ipc_alone_target

        def fake_measure(spec, cfg=None):
            return _FakeWindow(apc=spec.api * spec.ipc_peak * 0.8,
                               ipc=spec.ipc_peak * 0.8)

        monkeypatch.setattr(cal, "measure_alone", fake_measure)
        result = cal.calibrate_benchmark(bench, cal.calibration_config())
        assert not result.saturated
        assert result.ipc_peak == pytest.approx(target / 0.8, rel=0.02)
        assert result.error < 0.01

    def test_mlp_escalation_triggers_when_ceiling_low(self, monkeypatch):
        """Stub: IPC ceiling grows with MLP; a low base MLP cannot reach
        the target so the calibrator must escalate."""
        bench = TABLE3["gobmk"]  # base mlp = 2
        target = bench.ipc_alone_target

        def fake_measure(spec, cfg=None):
            ceiling = target * (0.3 + 0.25 * spec.mlp)  # mlp 2 -> 0.8x target
            ipc = min(spec.ipc_peak * 0.95, ceiling)
            return _FakeWindow(apc=spec.api * ipc, ipc=ipc)

        monkeypatch.setattr(cal, "measure_alone", fake_measure)
        result = cal.calibrate_benchmark(bench, cal.calibration_config())
        assert result.mlp > bench.mlp
        assert result.error < 0.02

    def test_saturated_branch_tunes_write_fraction(self, monkeypatch):
        """Stub: saturated APC falls linearly with write fraction; the
        calibrator must land on the wf hitting lbm's APKC target."""
        bench = TABLE3["lbm"]
        target_apc = bench.apc_alone_target

        def fake_measure(spec, cfg=None):
            apc = 0.0105 * (1.0 - 0.5 * spec.write_fraction)
            apc = min(apc, spec.api * spec.ipc_peak)
            return _FakeWindow(apc=apc, ipc=apc / spec.api)

        monkeypatch.setattr(cal, "measure_alone", fake_measure)
        result = cal.calibrate_benchmark(bench, cal.calibration_config())
        assert result.saturated
        expected_wf = (1.0 - target_apc / 0.0105) / 0.5
        assert result.write_fraction == pytest.approx(expected_wf, abs=0.01)


class TestConfigHelpers:
    def test_window_scales_inversely_with_intensity(self):
        a = cal.calibration_config(target_apc=0.008)
        b = cal.calibration_config(target_apc=0.0004)
        assert b.measure_cycles == pytest.approx(4_000 / 0.0004)
        assert a.measure_cycles == 1_000_000.0

    def test_seed_override(self):
        cfg = cal.calibration_config(seed=99)
        assert cfg.seed == 99
