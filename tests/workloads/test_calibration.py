"""Re-validation of the baked-in calibration (repro.workloads.calibrate).

These tests re-run alone-mode simulations and check that the calibrated
surrogates still hit Table III.  They are the slowest unit tests in the
suite (fresh multi-hundred-k-cycle runs per benchmark) but they are what
makes Table III a *measured* reproduction rather than hard-coded data.
"""

import pytest

from repro.sim.engine import SimConfig, run_alone
from repro.workloads.calibrate import (
    CALIBRATION_SEED,
    CalibrationResult,
    calibration_config,
)
from repro.workloads.spec import TABLE3

#: revalidation uses a different seed than calibration on purpose: the
#: operating points must hold across seeds, not just on the tuned one
REVALIDATION_SEED = 77


def _fast_config(bench) -> SimConfig:
    return SimConfig(
        warmup_cycles=150_000.0,
        measure_cycles=max(500_000.0, 2_500.0 / bench.apc_alone_target),
        seed=REVALIDATION_SEED,
    )


@pytest.mark.parametrize("name", sorted(TABLE3))
def test_alone_ipc_matches_table3(name):
    """Alone-mode IPC within 6% of APKC/APKI (sampling noise included)."""
    bench = TABLE3[name]
    result = run_alone(bench.core_spec(), _fast_config(bench))
    assert result.ipc == pytest.approx(bench.ipc_alone_target, rel=0.06), (
        f"{name}: ipc {result.ipc:.4f} vs target {bench.ipc_alone_target:.4f}"
    )


@pytest.mark.parametrize("name", ["lbm", "libquantum", "hmmer", "gobmk", "povray"])
def test_alone_apkc_matches_table3(name):
    """Alone-mode APKC within 10% of the paper (API sampling adds noise
    on top of the IPC calibration)."""
    bench = TABLE3[name]
    result = run_alone(bench.core_spec(), _fast_config(bench))
    assert result.apkc == pytest.approx(bench.apkc_alone, rel=0.10), (
        f"{name}: apkc {result.apkc:.3f} vs target {bench.apkc_alone:.3f}"
    )


def test_lbm_is_bus_saturated():
    """lbm must sit near the channel's efficiency ceiling: its demand
    (api x ipc_peak) is far above the peak bus rate."""
    bench = TABLE3["lbm"]
    assert bench.api * bench.ipc_peak > 0.015  # >> 0.01 peak APC


def test_calibration_config_scales_window_for_light_apps():
    heavy = calibration_config(target_apc=0.009)
    light = calibration_config(target_apc=0.0005)
    assert light.measure_cycles > heavy.measure_cycles


def test_calibration_result_error():
    r = CalibrationResult(
        name="x", ipc_peak=1.0, write_fraction=0.1, mlp=2,
        measured=1.05, target=1.0, saturated=False,
    )
    assert r.error == pytest.approx(0.05)


def test_calibration_seed_is_stable_constant():
    """The baked-in numbers in spec.py were produced with this seed; if
    it changes, spec.py must be regenerated."""
    assert CALIBRATION_SEED == 2013
