"""Tests for the non-stationary workload generators.

Covers the ground-truth schedule contract (sorted, deterministic under a
fixed seed) and -- via alone-mode simulation -- that each declared phase
operating point is actually achievable by the core model, which is what
makes the declared schedule a valid oracle.
"""

import numpy as np
import pytest

from repro.sim.engine import SimConfig
from repro.util.errors import ConfigurationError
from repro.workloads import (
    SCENARIOS,
    alternating_workload,
    bursty_workload,
    phase_swap_workload,
    ramp_workload,
    scenario,
    scenario_names,
)
from repro.workloads.calibrate import measure_alone_apc


class TestRegistry:
    def test_names(self):
        assert set(scenario_names()) == {
            "ramp",
            "alternating",
            "bursty",
            "phase-swap",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario("nope")

    def test_all_scenarios_instantiate(self):
        for name in SCENARIOS:
            wl = scenario(name)
            assert wl.n == 4
            assert len(wl.core_specs()) == 4


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_same_schedule(self, name):
        a, b = scenario(name, seed=99), scenario(name, seed=99)
        assert a == b  # frozen dataclasses compare by value

    def test_bursty_seed_changes_burst_placement(self):
        a = bursty_workload(seed=1)
        b = bursty_workload(seed=2)
        assert a.change_cycles() != b.change_cycles()

    def test_ramp_seed_changes_jitter(self):
        a = ramp_workload(seed=1)
        b = ramp_workload(seed=2)
        assert a.true_apc_alone(0.0).tolist() != b.true_apc_alone(0.0).tolist()


class TestScheduleStructure:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_change_cycles_sorted_within_horizon(self, name):
        wl = scenario(name)
        changes = wl.change_cycles()
        assert list(changes) == sorted(changes)
        assert all(0 < c < 1_200_000.0 for c in changes)

    def test_phase_swap_single_change(self):
        wl = phase_swap_workload(swap_cycle=500_000.0)
        assert wl.change_cycles() == (500_000.0,)
        before, after = wl.true_apc_alone(0.0), wl.true_apc_alone(500_000.0)
        # the swap inverts the ranking exactly
        np.testing.assert_allclose(before, after[[1, 0, 3, 2]])
        assert before[0] > before[1]

    def test_alternating_stagger_halves_the_quiet_time(self):
        wl = alternating_workload(period_cycles=200_000.0, stagger=True)
        # staggered neighbours flip half a period apart
        assert 100_000.0 in wl.change_cycles()
        assert 200_000.0 in wl.change_cycles()

    def test_ramp_is_monotonic_per_app(self):
        wl = ramp_workload(steps=5)
        t0 = wl.tracks[0]  # even index ramps up
        vals = [s.apc_alone for s in t0.segments]
        assert vals == sorted(vals)
        t1 = wl.tracks[1]  # odd index ramps down
        vals = [s.apc_alone for s in t1.segments]
        assert vals == sorted(vals, reverse=True)

    def test_bursty_only_burst_apps_change(self):
        wl = bursty_workload(burst_apps=2, n_apps=4)
        assert wl.tracks[0].change_cycles() != ()
        assert wl.tracks[1].change_cycles() != ()
        assert wl.tracks[2].change_cycles() == ()
        assert wl.tracks[3].change_cycles() == ()

    def test_track_at_selects_segment(self):
        wl = phase_swap_workload(swap_cycle=600_000.0)
        t = wl.tracks[0]
        assert t.at(0.0) is t.segments[0]
        assert t.at(599_999.0) is t.segments[0]
        assert t.at(600_000.0) is t.segments[1]

    def test_core_specs_carry_phases(self):
        wl = phase_swap_workload()
        spec = wl.core_specs()[0]
        assert len(spec.phases) == 2
        api0, ipc0 = spec.params_at(0.0)
        api1, ipc1 = spec.params_at(700_000.0)
        assert api0 * ipc0 == pytest.approx(wl.true_apc_alone(0.0)[0])
        assert api1 * ipc1 == pytest.approx(wl.true_apc_alone(700_000.0)[0])


class TestValidation:
    def test_intensity_guard(self):
        with pytest.raises(ConfigurationError):
            phase_swap_workload(hi_frac=0.9)

    def test_swap_must_be_inside_horizon(self):
        with pytest.raises(ConfigurationError):
            phase_swap_workload(swap_cycle=2_000_000.0)

    def test_burst_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            bursty_workload(n_bursts=4, burst_cycles=400_000.0)

    def test_ramp_needs_steps(self):
        with pytest.raises(ConfigurationError):
            ramp_workload(steps=1)


class TestGroundTruthAchievable:
    """Declared per-phase APC_alone must match alone-mode simulation.

    This is the property that turns the declared schedule into a usable
    phase oracle: a stationary core pinned at a phase's operating point
    must standalone-achieve the declared APC to within a few percent.
    """

    @pytest.mark.parametrize("frac", [0.08, 0.45])
    def test_phase_operating_point_achieved_alone(self, frac):
        wl = phase_swap_workload(lo_frac=frac, hi_frac=0.45)
        track = wl.tracks[1]  # starts in its lo phase
        seg = track.segments[0]
        # pin a stationary spec at the segment's operating point
        from repro.sim.cpu import CoreSpec
        from repro.sim.stream import StreamSpec

        spec = CoreSpec(
            name="pin",
            api=seg.api,
            ipc_peak=seg.ipc_peak,
            mlp=track.mlp,
            write_fraction=track.write_fraction,
            stream=StreamSpec(row_locality=track.row_locality),
        )
        cfg = SimConfig(warmup_cycles=100_000.0, measure_cycles=1_000_000.0, seed=7)
        measured = measure_alone_apc(spec, cfg)
        assert measured == pytest.approx(seg.apc_alone, rel=0.10)
