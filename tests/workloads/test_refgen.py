"""Unit tests for the reference-stream generators (repro.workloads.refgen)."""

import pytest

from repro.sim.cache import CacheHierarchy
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream
from repro.workloads.refgen import ReferenceStream, RefStreamSpec, measure_apki


class TestRefStreamSpec:
    def test_defaults_valid(self):
        RefStreamSpec()

    def test_validation(self):
        with pytest.raises(Exception):
            RefStreamSpec(streaming_fraction=1.5)
        with pytest.raises(Exception):
            RefStreamSpec(refs_per_instr=0.0)


class TestReferenceStream:
    def test_streaming_addresses_never_repeat(self):
        spec = RefStreamSpec(streaming_fraction=1.0)
        stream = ReferenceStream(spec, RngStream(1, "t"))
        addrs = [stream.next_reference()[0] for _ in range(100)]
        assert len(set(addrs)) == 100

    def test_working_set_bounded(self):
        spec = RefStreamSpec(streaming_fraction=0.0, working_set_lines=100)
        stream = ReferenceStream(spec, RngStream(1, "t"))
        addrs = [stream.next_reference()[0] for _ in range(1000)]
        assert max(addrs) < 100

    def test_store_fraction(self):
        spec = RefStreamSpec(store_fraction=0.4)
        stream = ReferenceStream(spec, RngStream(1, "t"))
        stores = sum(stream.next_reference()[1] for _ in range(3000))
        assert stores / 3000 == pytest.approx(0.4, abs=0.05)

    def test_hot_set_is_skewed(self):
        """The u^2 transform must bias references toward low line indices
        (temporal-locality skew)."""
        spec = RefStreamSpec(streaming_fraction=0.0, working_set_lines=1000)
        stream = ReferenceStream(spec, RngStream(1, "t"))
        addrs = [stream.next_reference()[0] for _ in range(4000)]
        low = sum(a < 250 for a in addrs)  # top quartile of the u^2 law: 50%
        assert low / 4000 == pytest.approx(0.5, abs=0.05)


class TestApkiCalibration:
    def test_pure_cache_resident_gives_near_zero_apki(self):
        spec = RefStreamSpec(streaming_fraction=0.0, working_set_lines=256)
        apki = measure_apki(spec, instructions=50_000)
        assert apki < 0.2

    def test_pure_streaming_gives_refs_rate_apki(self):
        """Every streaming reference misses: APKI ~= refs_per_instr x 1000
        (stores disabled so writebacks don't inflate the count)."""
        spec = RefStreamSpec(
            streaming_fraction=1.0, refs_per_instr=0.05, store_fraction=0.0
        )
        apki = measure_apki(spec, instructions=50_000)
        assert apki == pytest.approx(50.0, rel=0.02)

    def test_apki_monotone_in_streaming_fraction(self):
        apkis = [
            measure_apki(
                RefStreamSpec(streaming_fraction=f, working_set_lines=512),
                instructions=30_000,
            )
            for f in (0.0, 0.05, 0.2)
        ]
        assert apkis[0] < apkis[1] < apkis[2]

    def test_large_working_set_spills_l2(self):
        """A working set far beyond 256 KB L2 misses even without streaming."""
        small = measure_apki(
            RefStreamSpec(streaming_fraction=0.0, working_set_lines=1024),
            instructions=30_000,
        )
        big = measure_apki(
            RefStreamSpec(streaming_fraction=0.0, working_set_lines=64_000),
            instructions=30_000,
        )
        assert big > small + 1.0

    def test_table3_like_point_is_reachable(self):
        """A modest streaming fraction reproduces a libquantum-class APKI
        (~34) from raw references + the Table II hierarchy."""
        spec = RefStreamSpec(
            refs_per_instr=0.35, streaming_fraction=0.097, working_set_lines=512
        )
        apki = measure_apki(spec, instructions=60_000)
        assert apki == pytest.approx(34.0, rel=0.15)

    def test_stores_generate_writebacks(self):
        h = CacheHierarchy()
        spec = RefStreamSpec(streaming_fraction=0.3, store_fraction=0.5)
        measure_apki(spec, instructions=30_000, hierarchy=h)
        assert h.offchip_writes > 0

    def test_invalid_instructions(self):
        with pytest.raises(ConfigurationError):
            measure_apki(RefStreamSpec(), instructions=0)
