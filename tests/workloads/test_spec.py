"""Unit tests for the Table III benchmark surrogates (repro.workloads.spec)."""

import pytest

from repro.util.errors import ConfigurationError
from repro.workloads.spec import (
    TABLE3,
    BenchmarkSpec,
    benchmark,
    benchmark_names,
    mlp_for_apkc,
    paper_profile,
)

#: Table III verbatim: name -> (type, APKC_alone, APKI, intensity)
PAPER_TABLE3 = {
    "lbm": ("FP", 9.38517, 53.1331, "high"),
    "libquantum": ("INT", 6.91693, 34.1188, "middle"),
    "milc": ("FP", 6.87143, 42.2216, "middle"),
    "soplex": ("FP", 6.05614, 37.8789, "middle"),
    "hmmer": ("INT", 5.29083, 4.6008, "middle"),
    "omnetpp": ("INT", 5.18984, 30.5707, "middle"),
    "sphinx3": ("FP", 4.88898, 13.5657, "middle"),
    "leslie3d": ("FP", 4.3855, 7.5847, "middle"),
    "bzip2": ("INT", 3.93331, 5.6413, "low"),
    "gromacs": ("FP", 3.36604, 5.1976, "low"),
    "h264ref": ("INT", 3.04387, 2.2705, "low"),
    "zeusmp": ("FP", 2.42424, 4.521, "low"),
    "gobmk": ("INT", 1.91485, 4.0668, "low"),
    "namd": ("FP", 0.61975, 0.428, "low"),
    "sjeng": ("INT", 0.559802, 0.7906, "low"),
    "povray": ("FP", 0.553825, 0.6977, "low"),
}


class TestTable3Data:
    def test_all_sixteen_benchmarks_present(self):
        assert set(TABLE3) == set(PAPER_TABLE3)

    @pytest.mark.parametrize("name", sorted(PAPER_TABLE3))
    def test_values_match_paper(self, name):
        btype, apkc, apki, intensity = PAPER_TABLE3[name]
        b = TABLE3[name]
        assert b.btype == btype
        assert b.apkc_alone == pytest.approx(apkc)
        assert b.apki == pytest.approx(apki)
        assert b.intensity == intensity

    def test_order_is_descending_apkc(self):
        apkcs = [TABLE3[n].apkc_alone for n in benchmark_names()]
        assert apkcs == sorted(apkcs, reverse=True)

    def test_derived_quantities(self):
        b = TABLE3["libquantum"]
        assert b.api == pytest.approx(0.0341188)
        assert b.apc_alone_target == pytest.approx(0.00691693)
        assert b.ipc_alone_target == pytest.approx(6.91693 / 34.1188)


class TestSurrogateConstruction:
    def test_core_spec_carries_api(self):
        spec = TABLE3["milc"].core_spec()
        assert spec.api == pytest.approx(0.0422216)
        assert spec.name == "milc"

    def test_paper_profile(self):
        p = paper_profile("gobmk")
        assert p.apc_alone == pytest.approx(0.00191485)
        assert p.api == pytest.approx(0.0040668)

    def test_mlp_classes(self):
        assert mlp_for_apkc(9.0) == 24
        assert mlp_for_apkc(5.0) == 12
        assert mlp_for_apkc(3.0) == 3
        assert mlp_for_apkc(0.5) == 2

    def test_intensive_benchmarks_have_deep_mlp(self):
        for b in TABLE3.values():
            if b.intensity in ("high", "middle"):
                assert b.mlp >= 12, b.name
            else:
                assert b.mlp <= 4, b.name

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError):
            benchmark("doom3")

    def test_btype_validation(self):
        with pytest.raises(ConfigurationError):
            BenchmarkSpec(
                name="x", btype="GPU", apkc_alone=1.0, apki=1.0,
                ipc_peak=1.0, write_fraction=0.1, mlp=2,
            )

    def test_demand_exceeds_target(self):
        """Every calibrated surrogate must be able to *demand* at least
        its target rate (ipc_peak >= ipc_alone_target)."""
        for b in TABLE3.values():
            assert b.ipc_peak >= b.ipc_alone_target * 0.999, b.name
