"""Unit tests for the Table IV mixes (repro.workloads.mixes)."""

import pytest

from repro.util.errors import ConfigurationError
from repro.workloads.mixes import (
    HETERO_MIXES,
    HOMO_MIXES,
    MIXES,
    QOS_MIXES,
    mix_benchmarks,
    mix_core_specs,
    mix_names,
    mix_paper_workload,
)

#: Table IV's printed RSD values
PAPER_RSD = {
    "homo-1": 12.27, "homo-2": 13.02, "homo-3": 18.55, "homo-4": 19.16,
    "homo-5": 19.74, "homo-6": 24.06, "homo-7": 29.71,
    "hetero-1": 41.93, "hetero-2": 45.10, "hetero-3": 47.92,
    "hetero-4": 50.31, "hetero-5": 52.99, "hetero-6": 58.31, "hetero-7": 69.84,
}


class TestTable4Structure:
    def test_fourteen_mixes(self):
        assert len(MIXES) == 14
        assert len(HOMO_MIXES) == 7
        assert len(HETERO_MIXES) == 7

    def test_every_mix_has_four_apps(self):
        for members in MIXES.values():
            assert len(members) == 4

    def test_mix_names_order(self):
        names = mix_names()
        assert names[:7] == HOMO_MIXES
        assert names[7:] == HETERO_MIXES

    def test_table4_membership_verbatim(self):
        assert MIXES["hetero-5"] == ("libquantum", "milc", "gromacs", "gobmk")
        assert MIXES["homo-1"] == ("libquantum", "milc", "soplex", "hmmer")
        assert MIXES["hetero-7"] == ("lbm", "milc", "gobmk", "zeusmp")

    def test_qos_mixes(self):
        """Sec. VI-B: Mix-1 and Mix-2, both containing hmmer."""
        assert QOS_MIXES["Mix-1"] == ("lbm", "libquantum", "omnetpp", "hmmer")
        assert QOS_MIXES["Mix-2"] == ("h264ref", "zeusmp", "leslie3d", "hmmer")
        for members in QOS_MIXES.values():
            assert "hmmer" in members


class TestHeterogeneity:
    @pytest.mark.parametrize("mix", sorted(set(MIXES) - {"homo-7"}))
    def test_rsd_matches_table4(self, mix):
        wl = mix_paper_workload(mix)
        assert wl.heterogeneity == pytest.approx(PAPER_RSD[mix], abs=0.02)

    def test_homo7_known_paper_discrepancy(self):
        """Table IV prints 29.71 for homo-7, but its Table III inputs give
        30.71 -- an off-by-one in the paper (see EXPERIMENTS.md)."""
        wl = mix_paper_workload("homo-7")
        assert wl.heterogeneity == pytest.approx(30.71, abs=0.02)

    def test_hetero_mixes_cross_threshold(self):
        for mix in HETERO_MIXES:
            assert mix_paper_workload(mix).heterogeneity > 30.0


class TestConstruction:
    def test_mix_benchmarks_resolves_specs(self):
        benches = mix_benchmarks("hetero-5")
        assert [b.name for b in benches] == list(MIXES["hetero-5"])

    def test_core_specs_single_copy(self):
        specs = mix_core_specs("homo-1")
        assert [s.name for s in specs] == list(MIXES["homo-1"])

    def test_core_specs_copies_scale_and_rename(self):
        specs = mix_core_specs("hetero-5", copies=2)
        assert len(specs) == 8
        names = [s.name for s in specs]
        assert len(set(names)) == 8
        assert names[0] == "libquantum#0" and names[4] == "libquantum#1"

    def test_paper_workload_copies(self):
        wl = mix_paper_workload("hetero-5", copies=4)
        assert wl.n == 16

    def test_unknown_mix(self):
        with pytest.raises(ConfigurationError):
            mix_benchmarks("hetero-99")

    def test_invalid_copies(self):
        with pytest.raises(ConfigurationError):
            mix_core_specs("homo-1", copies=0)
