"""Unit tests for the system metrics (repro.core.metrics)."""

import numpy as np
import pytest

from repro.core import (
    ALL_METRICS,
    HarmonicWeightedSpeedup,
    MinFairness,
    SumOfIPCs,
    WeightedSpeedup,
    metric_by_name,
    speedups,
)
from repro.util.errors import ConfigurationError

IPC_ALONE = np.array([2.0, 1.0, 0.5, 0.25])


class TestSpeedups:
    def test_identity_at_alone_performance(self):
        np.testing.assert_allclose(speedups(IPC_ALONE, IPC_ALONE), 1.0)

    def test_half_speed(self):
        np.testing.assert_allclose(speedups(IPC_ALONE / 2, IPC_ALONE), 0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            speedups(np.ones(3), np.ones(4))

    def test_zero_alone_rejected(self):
        with pytest.raises(ConfigurationError):
            speedups(np.ones(2), np.array([1.0, 0.0]))


class TestHarmonicWeightedSpeedup:
    def test_equals_one_at_alone_performance(self):
        assert HarmonicWeightedSpeedup()(IPC_ALONE, IPC_ALONE) == pytest.approx(1.0)

    def test_eq3_hand_computed(self):
        # two apps at speedups 1/2 and 1/4: Hsp = 2 / (2 + 4) = 1/3
        shared = np.array([1.0, 0.25])
        alone = np.array([2.0, 1.0])
        assert HarmonicWeightedSpeedup()(shared, alone) == pytest.approx(1 / 3)

    def test_starvation_gives_zero(self):
        shared = np.array([1.0, 0.0])
        assert HarmonicWeightedSpeedup()(shared, IPC_ALONE[:2]) == 0.0

    def test_dominated_by_weighted_speedup(self, rng):
        # harmonic mean <= arithmetic mean of speedups, always
        for _ in range(100):
            alone = rng.uniform(0.1, 3.0, 4)
            shared = alone * rng.uniform(0.05, 1.0, 4)
            hsp = HarmonicWeightedSpeedup()(shared, alone)
            wsp = WeightedSpeedup()(shared, alone)
            assert hsp <= wsp + 1e-12


class TestWeightedSpeedup:
    def test_equals_one_at_alone_performance(self):
        assert WeightedSpeedup()(IPC_ALONE, IPC_ALONE) == pytest.approx(1.0)

    def test_eq9_hand_computed(self):
        shared = np.array([1.0, 0.25])
        alone = np.array([2.0, 1.0])
        # speedups 0.5 and 0.25 -> mean 0.375
        assert WeightedSpeedup()(shared, alone) == pytest.approx(0.375)

    def test_linear_in_each_app(self):
        base = WeightedSpeedup()(IPC_ALONE * 0.5, IPC_ALONE)
        bumped = IPC_ALONE * 0.5
        bumped = bumped.copy()
        bumped[0] += 0.1
        delta = WeightedSpeedup()(bumped, IPC_ALONE) - base
        assert delta == pytest.approx(0.1 / IPC_ALONE[0] / len(IPC_ALONE))


class TestSumOfIPCs:
    def test_eq10_is_plain_sum(self):
        shared = np.array([0.3, 0.2, 0.1])
        assert SumOfIPCs()(shared, np.ones(3)) == pytest.approx(0.6)

    def test_ignores_alone_values(self):
        shared = np.array([0.3, 0.2])
        a = SumOfIPCs()(shared, np.array([1.0, 1.0]))
        b = SumOfIPCs()(shared, np.array([9.0, 0.1]))
        assert a == b


class TestMinFairness:
    def test_eq14_hand_computed(self):
        shared = np.array([1.0, 0.25])
        alone = np.array([2.0, 1.0])
        # min speedup 0.25, N=2 -> 0.5
        assert MinFairness()(shared, alone) == pytest.approx(0.5)

    def test_threshold_one_at_equal_nth_share(self):
        # every app at exactly 1/N speedup -> MinF == 1 (the paper's
        # "achieves minimum fairness" criterion)
        n = 4
        assert MinFairness()(IPC_ALONE / n, IPC_ALONE) == pytest.approx(1.0)

    def test_starvation_gives_zero(self):
        shared = IPC_ALONE.copy()
        shared[-1] = 0.0
        assert MinFairness()(shared, IPC_ALONE) == 0.0

    def test_maximized_by_equal_speedups(self, rng):
        """For fixed total 'speedup budget', equal speedups maximize MinF."""
        alone = np.array([2.0, 1.0, 0.5])
        equal = MinFairness()(alone * 0.4, alone)
        for _ in range(50):
            perturb = rng.uniform(-0.1, 0.1, 3)
            perturb -= perturb.mean()  # keep average speedup fixed
            shared = alone * (0.4 + perturb)
            assert MinFairness()(shared, alone) <= equal + 1e-12


class TestRegistry:
    def test_all_metrics_registered(self):
        assert {m.name for m in ALL_METRICS} == {"hsp", "wsp", "ipcsum", "minf"}

    def test_lookup_by_name(self):
        assert isinstance(metric_by_name("hsp"), HarmonicWeightedSpeedup)
        assert isinstance(metric_by_name("minf"), MinFairness)

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            metric_by_name("throughput")

    def test_all_higher_is_better(self):
        assert all(m.higher_is_better for m in ALL_METRICS)
