"""Unit tests for the analytical model facade (repro.core.model)."""

import numpy as np
import pytest

from repro.core import (
    AnalyticalModel,
    HarmonicWeightedSpeedup,
    MinFairness,
    OperatingPoint,
    PriorityAPC,
    PriorityAPI,
    ProportionalPartitioning,
    SquareRootPartitioning,
    SumOfIPCs,
    WeightedSpeedup,
    default_schemes,
)
from repro.core.metrics import Metric
from repro.util.errors import ConfigurationError

B = 0.01


class TestOperatingPoint:
    def test_eq1_ipc_from_apc(self, hetero_workload):
        apc = hetero_workload.apc_alone * 0.5
        op = OperatingPoint(hetero_workload, apc)
        np.testing.assert_allclose(op.ipc_shared, apc / hetero_workload.api)

    def test_speedups_at_half_bandwidth(self, hetero_workload):
        op = OperatingPoint(hetero_workload, hetero_workload.apc_alone * 0.5)
        np.testing.assert_allclose(op.speedups, 0.5)

    def test_beta_sums_to_one(self, hetero_workload):
        op = OperatingPoint(hetero_workload, hetero_workload.apc_alone)
        assert op.beta.sum() == pytest.approx(1.0)

    def test_evaluate_all_has_four_metrics(self, hetero_workload):
        op = OperatingPoint(hetero_workload, hetero_workload.apc_alone * 0.4)
        assert set(op.evaluate_all()) == {"hsp", "minf", "wsp", "ipcsum"}


class TestAnalysis:
    def test_bandwidth_conservation(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        total = min(B, hetero_workload.apc_alone.sum())
        for scheme in default_schemes().values():
            op = model.operating_point(scheme)
            assert op.apc_shared.sum() == pytest.approx(total), scheme.name

    def test_compare_covers_all_schemes(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        table = model.compare(default_schemes())
        assert set(table) == set(default_schemes())
        for row in table.values():
            assert set(row) == {"hsp", "minf", "wsp", "ipcsum"}

    def test_rejects_nonpositive_bandwidth(self, hetero_workload):
        with pytest.raises(ConfigurationError):
            AnalyticalModel(hetero_workload, 0.0)


class TestDerivedOptima:
    """Each derived scheme must win its own metric among all schemes
    (the core claim of the paper, Sec. III-B..E)."""

    @pytest.mark.parametrize(
        "metric,winner",
        [
            (HarmonicWeightedSpeedup(), "sqrt"),
            (MinFairness(), "prop"),
            (WeightedSpeedup(), "prio_apc"),
            (SumOfIPCs(), "prio_api"),
        ],
    )
    def test_optimal_scheme_wins_its_metric(self, hetero_workload, metric, winner):
        model = AnalyticalModel(hetero_workload, B)
        schemes = default_schemes()
        values = {n: model.evaluate(metric, s) for n, s in schemes.items()}
        best = max(values, key=values.get)
        assert values[winner] == pytest.approx(values[best]), (
            f"{winner} not optimal for {metric.name}: {values}"
        )

    def test_optimal_scheme_mapping(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        assert isinstance(
            model.optimal_scheme(HarmonicWeightedSpeedup()), SquareRootPartitioning
        )
        assert isinstance(
            model.optimal_scheme(MinFairness()), ProportionalPartitioning
        )
        assert isinstance(model.optimal_scheme(WeightedSpeedup()), PriorityAPC)
        assert isinstance(model.optimal_scheme(SumOfIPCs()), PriorityAPI)

    def test_unknown_metric_has_no_derived_optimum(self, hetero_workload):
        class Weird(Metric):
            name = "weird"

            def evaluate(self, ipc_shared, ipc_alone):
                return float(np.prod(ipc_shared))

        model = AnalyticalModel(hetero_workload, B)
        with pytest.raises(ConfigurationError):
            model.optimal_scheme(Weird())

    def test_proportional_equalizes_speedups(self, hetero_workload):
        """Eq. (7): ideal fairness means identical speedups."""
        model = AnalyticalModel(hetero_workload, B)
        op = model.operating_point(ProportionalPartitioning())
        s = op.speedups
        np.testing.assert_allclose(s, s[0], rtol=1e-9)

    def test_knapsack_wsp_matches_priority_apc(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        direct = model.evaluate(WeightedSpeedup(), PriorityAPC())
        assert model.max_weighted_speedup() == pytest.approx(direct)

    def test_knapsack_ipcsum_matches_priority_api(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        direct = model.evaluate(SumOfIPCs(), PriorityAPI())
        assert model.max_sum_of_ipcs() == pytest.approx(direct)

    def test_optimal_operating_point_consistency(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        metric = HarmonicWeightedSpeedup()
        op = model.optimal_operating_point(metric)
        assert op.evaluate(metric) == pytest.approx(
            model.evaluate(metric, SquareRootPartitioning())
        )


class TestSchemeProximity:
    """Sec. III-F: 'the closer a scheme is to our optimal partitioning
    scheme, the better performance it will achieve' -- check the power
    family is unimodal around the optimum exponent for Hsp."""

    def test_hsp_peaks_at_alpha_half(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        from repro.core import PowerPartitioning

        alphas = [0.0, 0.25, 0.5, 0.75, 1.0]
        vals = [
            model.evaluate(HarmonicWeightedSpeedup(), PowerPartitioning(a))
            for a in alphas
        ]
        assert vals[2] == max(vals)
        # monotone on both sides of 0.5
        assert vals[0] <= vals[1] <= vals[2]
        assert vals[2] >= vals[3] >= vals[4]

    def test_twothirds_between_sqrt_and_prop_on_fairness(self, hetero_workload):
        """Paper Sec. VI-A: 2/3_power is better than Square_root and worse
        than Proportional on fairness; the reverse on Hsp."""
        model = AnalyticalModel(hetero_workload, B)
        from repro.core import TwoThirdsPowerPartitioning

        minf = MinFairness()
        hsp = HarmonicWeightedSpeedup()
        m_sqrt = model.evaluate(minf, SquareRootPartitioning())
        m_23 = model.evaluate(minf, TwoThirdsPowerPartitioning())
        m_prop = model.evaluate(minf, ProportionalPartitioning())
        assert m_sqrt <= m_23 <= m_prop
        h_sqrt = model.evaluate(hsp, SquareRootPartitioning())
        h_23 = model.evaluate(hsp, TwoThirdsPowerPartitioning())
        h_prop = model.evaluate(hsp, ProportionalPartitioning())
        assert h_prop <= h_23 <= h_sqrt
