"""Unit tests for the Eq. 2 conservation checkpoint.

``assert_conservation`` is the single runtime anchor every solver must
route results through (enforced structurally by the ``inv-conservation``
lint rule); these tests pin its semantics: feasibility bounds, the
work-conserving equality, tolerance behaviour, batch shapes, and the
pass-through return.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bandwidth import (
    CONSERVATION_ATOL,
    CONSERVATION_RTOL,
    assert_conservation,
    capped_allocation,
    conservation_residual,
    greedy_allocation,
)
from repro.util.errors import InvariantViolation


def test_valid_allocation_passes_and_returns_input() -> None:
    alloc = np.array([0.1, 0.2])
    out = assert_conservation(alloc, 0.5, np.array([0.3, 0.4]))
    assert out is alloc


def test_negative_entry_raises() -> None:
    with pytest.raises(InvariantViolation, match="conservation"):
        assert_conservation(np.array([-0.01, 0.2]), 0.5)


def test_capacity_overrun_raises() -> None:
    with pytest.raises(InvariantViolation):
        assert_conservation(np.array([0.35, 0.1]), 0.5, np.array([0.3, 0.4]))


def test_budget_overrun_raises() -> None:
    with pytest.raises(InvariantViolation):
        assert_conservation(np.array([0.3, 0.3]), 0.5)


def test_work_conserving_requires_equality() -> None:
    cap = np.array([0.3, 0.4])
    # under-allocation only fails in work-conserving mode
    under = np.array([0.1, 0.1])
    assert_conservation(under, 0.5, cap)
    with pytest.raises(InvariantViolation):
        assert_conservation(under, 0.5, cap, work_conserving=True)
    # min(B, sum(cap)) on either side of the min
    assert_conservation(np.array([0.2, 0.3]), 0.5, cap, work_conserving=True)
    assert_conservation(cap, 1.0, cap, work_conserving=True)


def test_tolerance_scales_with_budget() -> None:
    tol = CONSERVATION_ATOL + CONSERVATION_RTOL * 1.0
    assert_conservation(np.array([0.5 + tol * 0.5]), 0.5)
    with pytest.raises(InvariantViolation):
        assert_conservation(np.array([0.5 + tol * 10]), 0.5)


def test_nonfinite_allocation_raises() -> None:
    with pytest.raises(InvariantViolation):
        assert_conservation(np.array([np.nan, 0.1]), 0.5)
    with pytest.raises(InvariantViolation):
        assert_conservation(np.array([np.inf, 0.1]), 0.5)


def test_batch_rows_checked_independently() -> None:
    alloc = np.array([[0.1, 0.2], [0.2, 0.2]])
    assert_conservation(alloc, 0.5)
    assert_conservation(alloc, np.array([0.3, 0.4]))
    bad = np.array([[0.1, 0.2], [0.9, 0.2]])
    with pytest.raises(InvariantViolation):
        assert_conservation(bad, 0.5)


def test_residual_reports_worst_violation() -> None:
    # feasible allocations sit at or below zero (slack is negative)
    assert conservation_residual(np.array([0.1, 0.2]), 0.5) <= 0.0
    res = conservation_residual(np.array([0.4, 0.3]), 0.5)
    assert res == pytest.approx(0.2)
    assert conservation_residual(np.array([np.nan]), 0.5) == np.inf


def test_error_message_names_the_site() -> None:
    with pytest.raises(InvariantViolation, match="my_solver"):
        assert_conservation(np.array([1.0]), 0.5, where="my_solver")


def test_wired_solvers_still_satisfy_the_check() -> None:
    # the solvers call assert_conservation internally; a representative
    # sample exercises the wiring on both the capped and greedy paths
    demand = np.array([0.08, 0.02, 0.11])
    beta = np.array([0.5, 0.3, 0.2])
    for budget in (0.05, 0.15, 0.5):
        tol = CONSERVATION_ATOL + CONSERVATION_RTOL * max(1.0, budget)
        wc = capped_allocation(beta, budget, demand, work_conserving=True)
        assert conservation_residual(
            wc, budget, np.where(beta > 0, demand, 0.0), work_conserving=True
        ) <= tol
        nc = capped_allocation(beta, budget, demand, work_conserving=False)
        assert conservation_residual(nc, budget, demand) <= tol
        order = np.argsort(demand)
        greedy = greedy_allocation(order, budget, demand)
        assert conservation_residual(greedy, budget, demand) <= tol


def test_zero_share_apps_do_not_fail_work_conservation() -> None:
    # beta=0 apps legitimately receive nothing; water-filling cannot give
    # their headroom away below B, and the check must accept that
    beta = np.array([1.0, 0.0])
    demand = np.array([0.1, 0.1])
    alloc = capped_allocation(beta, 0.3, demand, work_conserving=True)
    assert alloc[1] == 0.0
    assert alloc[0] == pytest.approx(0.1)
