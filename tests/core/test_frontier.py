"""Tests for the throughput-fairness frontier analysis (repro.core.frontier)."""

import numpy as np
import pytest

from repro.core import (
    AppProfile,
    Workload,
    best_alpha,
    knee_alpha,
    pareto_points,
    power_family_frontier,
)
from repro.util.errors import ConfigurationError

B = 0.01


@pytest.fixture
def frontier(hetero_workload):
    return power_family_frontier(hetero_workload, B)


class TestFrontierConstruction:
    def test_default_grid_spans_family(self, frontier):
        alphas = [p.alpha for p in frontier]
        assert alphas[0] == pytest.approx(0.0)
        assert alphas[-1] == pytest.approx(1.5)
        assert len(frontier) == 31

    def test_each_point_has_all_metrics(self, frontier):
        for p in frontier:
            assert set(p.metrics) == {"hsp", "minf", "wsp", "ipcsum"}

    def test_betas_sum_to_one(self, frontier):
        for p in frontier:
            assert p.beta.sum() == pytest.approx(1.0)

    def test_custom_alpha_grid(self, hetero_workload):
        pts = power_family_frontier(hetero_workload, B, alphas=np.array([0.5]))
        assert len(pts) == 1
        assert pts[0].alpha == 0.5

    def test_getitem(self, frontier):
        assert frontier[0]["hsp"] == frontier[0].metrics["hsp"]


class TestPaperAnchors:
    def test_hsp_peaks_near_half(self, frontier):
        """The paper's Square_root derivation: α* = 0.5 for Hsp."""
        best = best_alpha(frontier, "hsp")
        assert best.alpha == pytest.approx(0.5, abs=0.051)

    def test_minf_peaks_near_one(self, frontier):
        """The paper's Proportional derivation: α* = 1 for MinFairness."""
        best = best_alpha(frontier, "minf")
        assert best.alpha == pytest.approx(1.0, abs=0.051)

    def test_throughput_decreases_with_alpha(self, frontier):
        """Larger α feeds bandwidth-insensitive (high-API) apps: IPCsum
        falls monotonically along the family (hetero workload)."""
        ipcsums = [p["ipcsum"] for p in frontier]
        assert all(a >= b - 1e-12 for a, b in zip(ipcsums, ipcsums[1:]))

    def test_fairness_increases_to_one_then_decreases(self, frontier):
        minfs = [p["minf"] for p in frontier]
        peak = int(np.argmax(minfs))
        assert all(a <= b + 1e-12 for a, b in zip(minfs[:peak], minfs[1 : peak + 1]))
        assert all(a >= b - 1e-12 for a, b in zip(minfs[peak:], minfs[peak + 1 :]))


class TestPareto:
    def test_pareto_subset_is_nondominated(self, frontier):
        eff = pareto_points(frontier, "minf", "wsp")
        assert 0 < len(eff) <= len(frontier)
        for p in eff:
            for q in frontier:
                assert not (
                    (q["minf"] >= p["minf"] and q["wsp"] >= p["wsp"])
                    and (q["minf"] > p["minf"] or q["wsp"] > p["wsp"])
                )

    def test_pareto_sorted_by_x(self, frontier):
        eff = pareto_points(frontier, "minf", "wsp")
        xs = [p["minf"] for p in eff]
        assert xs == sorted(xs)

    def test_pareto_excludes_extreme_alphas(self, frontier):
        """α > 1 over-weights heavy apps: worse on both fairness AND
        throughput than Proportional -> dominated."""
        eff = pareto_points(frontier, "minf", "wsp")
        assert all(p.alpha <= 1.0 + 1e-9 for p in eff)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            pareto_points([], "minf", "wsp")


class TestKnee:
    def test_knee_is_interior(self, frontier):
        """The knee lies strictly between the two extreme objectives'
        optima: more balanced than either Proportional or priority-ish."""
        knee = knee_alpha(frontier, "minf", "wsp")
        eff = pareto_points(frontier, "minf", "wsp")
        assert eff[0].alpha - 1e-9 <= knee.alpha <= eff[-1].alpha + 1e-9

    def test_knee_on_homogeneous_degenerates_gracefully(self):
        wl = Workload.of(
            "same",
            [AppProfile(f"a{i}", api=0.01, apc_alone=0.003) for i in range(4)],
        )
        pts = power_family_frontier(wl, B)
        knee = knee_alpha(pts, "minf", "wsp")
        assert knee in pts

    def test_best_alpha_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            best_alpha([], "hsp")
