"""Unit tests for application profiles and workloads (repro.core.apps)."""

import numpy as np
import pytest

from repro.core import AppProfile, Workload, relative_std
from repro.util.errors import ConfigurationError


class TestAppProfile:
    def test_ipc_alone_is_apc_over_api(self):
        app = AppProfile("x", api=0.02, apc_alone=0.004)
        assert app.ipc_alone == pytest.approx(0.2)

    def test_apki_scales_by_thousand(self):
        app = AppProfile("x", api=0.0341188, apc_alone=0.0069)
        assert app.apki == pytest.approx(34.1188)

    def test_apkc_alone_scales_by_thousand(self):
        app = AppProfile("x", api=0.03, apc_alone=0.00691693)
        assert app.apkc_alone == pytest.approx(6.91693)

    @pytest.mark.parametrize(
        "apkc,expected",
        [(9.38, "high"), (8.01, "high"), (8.0, "middle"), (6.9, "middle"),
         (4.01, "middle"), (4.0, "low"), (3.9, "low"), (0.55, "low")],
    )
    def test_intensity_classification(self, apkc, expected):
        app = AppProfile("x", api=0.05, apc_alone=apkc / 1000.0)
        assert app.intensity == expected

    def test_rejects_nonpositive_api(self):
        with pytest.raises(ConfigurationError):
            AppProfile("x", api=0.0, apc_alone=0.004)

    def test_rejects_nonpositive_apc(self):
        with pytest.raises(ConfigurationError):
            AppProfile("x", api=0.01, apc_alone=-1.0)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            AppProfile("x", api=float("nan"), apc_alone=0.004)

    def test_scaled_changes_only_apc(self):
        app = AppProfile("x", api=0.02, apc_alone=0.004)
        scaled = app.scaled(0.008)
        assert scaled.apc_alone == 0.008
        assert scaled.api == app.api
        assert scaled.name == app.name

    def test_frozen(self):
        app = AppProfile("x", api=0.02, apc_alone=0.004)
        with pytest.raises(AttributeError):
            app.api = 0.5  # type: ignore[misc]


class TestRelativeStd:
    def test_identical_values_have_zero_rsd(self):
        assert relative_std([3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_known_value(self):
        # values 1 and 3: mean 2, sample std sqrt(2) -> RSD 70.71%
        assert relative_std([1.0, 3.0]) == pytest.approx(70.7106, abs=1e-3)

    def test_paper_homo1_value(self):
        # Table IV: homo-1 (libquantum-milc-soplex-hmmer) has RSD 12.27
        apkc = [6.91693, 6.87143, 6.05614, 5.29083]
        assert relative_std(apkc) == pytest.approx(12.27, abs=0.02)

    def test_too_few_values_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_std([])
        with pytest.raises(ConfigurationError):
            relative_std([1.0])

    def test_zero_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_std([-1.0, 1.0])


class TestWorkload:
    def test_vectors_match_apps(self, hetero_workload):
        np.testing.assert_allclose(
            hetero_workload.api, [a.api for a in hetero_workload]
        )
        np.testing.assert_allclose(
            hetero_workload.apc_alone, [a.apc_alone for a in hetero_workload]
        )

    def test_ipc_alone_vector(self, hetero_workload):
        np.testing.assert_allclose(
            hetero_workload.ipc_alone,
            hetero_workload.apc_alone / hetero_workload.api,
        )

    def test_len_and_iteration(self, hetero_workload):
        assert len(hetero_workload) == 4
        assert hetero_workload.n == 4
        assert [a.name for a in hetero_workload] == list(hetero_workload.names)

    def test_heterogeneity_threshold(self, hetero_workload, homo_workload):
        # the paper: heterogeneous iff RSD of APC_alone > 30
        assert hetero_workload.is_heterogeneous
        assert not homo_workload.is_heterogeneous

    def test_hetero5_rsd_close_to_paper(self, hetero_workload):
        # Table IV reports RSD 52.99 for hetero-5
        assert hetero_workload.heterogeneity == pytest.approx(52.99, abs=0.5)

    def test_index_of(self, hetero_workload):
        assert hetero_workload.index_of("gromacs") == 2
        with pytest.raises(KeyError):
            hetero_workload.index_of("nonexistent")

    def test_empty_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            Workload.of("empty", [])

    def test_replicated_scales_app_count(self, hetero_workload):
        doubled = hetero_workload.replicated(2)
        assert doubled.n == 8
        # same APC_alone values, duplicated
        np.testing.assert_allclose(
            np.sort(doubled.apc_alone),
            np.sort(np.tile(hetero_workload.apc_alone, 2)),
        )

    def test_replicated_names_unique(self, hetero_workload):
        doubled = hetero_workload.replicated(2)
        assert len(set(doubled.names)) == 8

    def test_replicated_once_keeps_names(self, hetero_workload):
        same = hetero_workload.replicated(1)
        assert same.names == hetero_workload.names

    def test_getitem(self, hetero_workload):
        assert hetero_workload[0].name == "libquantum"
