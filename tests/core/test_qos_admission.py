"""Tests for QoS admission control (repro.core.qos extension)."""

import numpy as np
import pytest

from repro.core import AppProfile, QoSTarget, Workload
from repro.core.qos import AdmissionResult, admit_targets, max_feasible_target
from repro.util.errors import ConfigurationError

B = 0.01


@pytest.fixture
def wl() -> Workload:
    return Workload.of(
        "adm",
        [
            AppProfile("a", api=0.040, apc_alone=0.0080),  # ipc_alone 0.2
            AppProfile("b", api=0.020, apc_alone=0.0050),  # ipc_alone 0.25
            AppProfile("c", api=0.005, apc_alone=0.0040),  # ipc_alone 0.8
            AppProfile("d", api=0.002, apc_alone=0.0012),  # ipc_alone 0.6
        ],
    )


class TestMaxFeasibleTarget:
    def test_capped_by_alone_ipc(self, wl):
        # app d needs only 0.0012 APC at full speed: alone IPC binds
        assert max_feasible_target(wl, B, "d") == pytest.approx(0.6)

    def test_capped_by_bandwidth(self, wl):
        # app a at alone speed needs 0.008; with floor 0.004 only 0.006
        # remains -> IPC_max = 0.006 / 0.04 = 0.15 < 0.2
        t = max_feasible_target(wl, B, "a", best_effort_floor=0.004)
        assert t == pytest.approx(0.15)

    def test_existing_reservations_subtract(self, wl):
        existing = [QoSTarget("b", 0.25)]  # reserves 0.005
        t = max_feasible_target(wl, B, "a", existing=existing)
        assert t == pytest.approx(0.005 / 0.040)

    def test_zero_when_overcommitted(self, wl):
        existing = [QoSTarget("a", 0.2), QoSTarget("b", 0.25)]  # 0.013 > B
        assert max_feasible_target(wl, B, "c", existing=existing) == 0.0

    def test_duplicate_rejected(self, wl):
        with pytest.raises(ConfigurationError):
            max_feasible_target(wl, B, "a", existing=[QoSTarget("a", 0.1)])

    def test_target_at_max_is_plannable(self, wl):
        from repro.core import QoSPartitioner

        t = max_feasible_target(wl, B, "a", best_effort_floor=0.002)
        plan = QoSPartitioner().plan(wl, B, [QoSTarget("a", t)])
        assert plan.b_best_effort >= 0.002 - 1e-12


class TestAdmission:
    def test_all_fit(self, wl):
        res = admit_targets(wl, B, [QoSTarget("c", 0.4), QoSTarget("d", 0.5)])
        assert res.n_admitted == 2
        assert not res.rejected
        assert res.plan is not None

    def test_max_count_prefers_cheap_targets(self, wl):
        # a@0.2 costs 0.008; c@0.4 costs 0.002; d@0.5 costs 0.001.
        # Budget 0.01: admitting a leaves room for only d (0.009 total);
        # cheap-first admits c+d+... then a does NOT fit (0.011).
        targets = [QoSTarget("a", 0.2), QoSTarget("c", 0.4), QoSTarget("d", 0.5)]
        res = admit_targets(wl, B, targets, policy="max-count")
        admitted_names = {t.app_name for t in res.admitted}
        assert admitted_names == {"c", "d"} or res.n_admitted >= 2
        assert "a" in {t.app_name for t in res.rejected}

    def test_fifo_admits_in_order(self, wl):
        targets = [QoSTarget("a", 0.2), QoSTarget("c", 0.4), QoSTarget("d", 0.5)]
        res = admit_targets(wl, B, targets, policy="fifo")
        names = [t.app_name for t in res.admitted]
        assert names[0] == "a"  # first-come wins under fifo
        # a costs 0.008, c costs 0.002 -> fits; d costs 0.001 -> rejected
        assert "d" in {t.app_name for t in res.rejected}

    def test_max_count_never_fewer_than_fifo(self, wl, rng):
        """The greedy cheap-first rule is count-optimal, so it can never
        admit fewer targets than arrival order."""
        names = ["a", "b", "c", "d"]
        for _ in range(30):
            targets = []
            for name in rng.permutation(names):
                app = wl[wl.index_of(str(name))]
                frac = float(rng.uniform(0.2, 1.0))
                targets.append(QoSTarget(str(name), app.ipc_alone * frac))
            greedy = admit_targets(wl, B, targets, policy="max-count")
            fifo = admit_targets(wl, B, targets, policy="fifo")
            assert greedy.n_admitted >= fifo.n_admitted

    def test_infeasible_target_always_rejected(self, wl):
        res = admit_targets(wl, B, [QoSTarget("a", 0.9)])  # > alone IPC 0.2
        assert res.n_admitted == 0
        assert res.plan is None

    def test_best_effort_floor_respected(self, wl):
        res = admit_targets(
            wl, B, [QoSTarget("a", 0.2), QoSTarget("b", 0.25)],
            best_effort_floor=0.004,
        )
        # both together cost 0.013 > 0.006 budget; only one admitted
        assert res.n_admitted == 1
        assert res.plan.b_qos <= B - 0.004 + 1e-12

    def test_duplicate_targets_rejected(self, wl):
        with pytest.raises(ConfigurationError):
            admit_targets(wl, B, [QoSTarget("a", 0.1), QoSTarget("a", 0.2)])

    def test_unknown_policy(self, wl):
        with pytest.raises(ConfigurationError):
            admit_targets(wl, B, [QoSTarget("a", 0.1)], policy="random")

    def test_plan_pins_admitted_ipcs(self, wl):
        res = admit_targets(wl, B, [QoSTarget("c", 0.4), QoSTarget("d", 0.5)])
        op = res.plan.operating_point
        assert op.ipc_shared[wl.index_of("c")] == pytest.approx(0.4)
        assert op.ipc_shared[wl.index_of("d")] == pytest.approx(0.5)

    def test_result_structure(self, wl):
        res = admit_targets(wl, B, [QoSTarget("d", 0.5)])
        assert isinstance(res, AdmissionResult)
        assert res.n_admitted == 1
