"""Tests for the shared-L2 extension (repro.core.sharedl2, footnote 1)."""

import numpy as np
import pytest

from repro.core.metrics import HarmonicWeightedSpeedup, SumOfIPCs
from repro.core.sharedl2 import (
    JointPoint,
    MissRatioCurve,
    SharedL2App,
    SharedL2Model,
    optimize_joint,
    profile_miss_ratio_curve,
)
from repro.util.errors import ConfigurationError


def curve(shares=(0.25, 0.5, 1.0), apis=(0.04, 0.02, 0.01)) -> MissRatioCurve:
    return MissRatioCurve(shares=shares, apis=apis)


class TestMissRatioCurve:
    def test_interpolation(self):
        c = curve()
        assert c.api_at(0.25) == pytest.approx(0.04)
        assert c.api_at(0.375) == pytest.approx(0.03)
        assert c.api_at(1.0) == pytest.approx(0.01)

    def test_clamping_outside_range(self):
        c = curve()
        assert c.api_at(0.0) == pytest.approx(0.04)
        assert c.api_at(2.0) == pytest.approx(0.01)

    def test_monotonicity_enforced(self):
        with pytest.raises(ConfigurationError):
            MissRatioCurve(shares=(0.25, 0.5), apis=(0.01, 0.02))

    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            MissRatioCurve(shares=(0.5,), apis=(0.02,))

    def test_shares_must_increase(self):
        with pytest.raises(ConfigurationError):
            MissRatioCurve(shares=(0.5, 0.25), apis=(0.02, 0.03))


class TestProfiledCurve:
    def test_profiled_curve_is_monotone(self):
        from repro.workloads.refgen import RefStreamSpec

        spec = RefStreamSpec(
            refs_per_instr=0.3,
            streaming_fraction=0.02,
            working_set_lines=6_000,  # ~384 KB: spills small L2 shares
            store_fraction=0.2,
        )
        c = profile_miss_ratio_curve(spec, instructions=30_000)
        apis = [c.api_at(s) for s in c.shares]
        assert apis == sorted(apis, reverse=True)

    def test_cache_sensitive_app_has_steep_curve(self):
        """A working set around the L2 size shows a large API drop from
        the smallest to the largest share; a tiny working set does not."""
        from repro.workloads.refgen import RefStreamSpec

        sensitive = profile_miss_ratio_curve(
            RefStreamSpec(
                refs_per_instr=0.3, streaming_fraction=0.0,
                working_set_lines=8_000, store_fraction=0.1,
            ),
            instructions=30_000,
        )
        insensitive = profile_miss_ratio_curve(
            RefStreamSpec(
                refs_per_instr=0.3, streaming_fraction=0.05,
                working_set_lines=256, store_fraction=0.1,
            ),
            instructions=30_000,
        )
        drop = lambda c: c.apis[0] / c.apis[-1]
        assert drop(sensitive) > 3.0
        assert drop(insensitive) < 1.5


def make_model() -> SharedL2Model:
    apps = [
        SharedL2App("cache-hungry", curve(apis=(0.05, 0.02, 0.005)), 0.8),
        SharedL2App("streaming", curve(apis=(0.04, 0.039, 0.038)), 0.4),
        SharedL2App("small-footprint", curve(apis=(0.004, 0.0039, 0.0038)), 1.0),
    ]
    return SharedL2Model(apps, total_bandwidth=0.0095)


class TestSharedL2Model:
    def test_workload_reflects_cache_shares(self):
        model = make_model()
        wl_small = model.workload_at([0.2, 0.4, 0.4])
        wl_big = model.workload_at([0.6, 0.2, 0.2])
        i = 0  # cache-hungry
        assert wl_big.api[i] < wl_small.api[i]

    def test_invalid_shares(self):
        model = make_model()
        with pytest.raises(ConfigurationError):
            model.workload_at([0.8, 0.8, 0.8])  # sum > 1
        with pytest.raises(ConfigurationError):
            model.workload_at([0.5, 0.5])  # wrong length

    def test_evaluate_returns_feasible_point(self):
        model = make_model()
        point = model.evaluate([1 / 3, 1 / 3, 1 / 3], SumOfIPCs())
        assert isinstance(point, JointPoint)
        assert point.operating_point.apc_shared.sum() <= 0.0095 + 1e-9


class TestJointOptimization:
    def test_joint_beats_equal_cache_split(self):
        """Optimizing the cache partition jointly never loses to the
        naive equal split (same bandwidth optimizer inside)."""
        model = make_model()
        for metric in (SumOfIPCs(), HarmonicWeightedSpeedup()):
            best = optimize_joint(model, metric, granularity=9)
            equal = model.evaluate([1 / 3, 1 / 3, 1 / 3], metric)
            assert best.metric_value >= equal.metric_value - 1e-12

    def test_cache_hungry_app_attracts_cache_for_ipcsum(self):
        """For throughput, cache capacity should flow to the app whose
        API falls fastest with capacity (cutting its bandwidth demand)."""
        model = make_model()
        best = optimize_joint(model, SumOfIPCs(), granularity=9)
        assert best.cache_shares[0] > 1 / 3  # the cache-hungry app

    def test_granularity_validation(self):
        with pytest.raises(ConfigurationError):
            optimize_joint(make_model(), SumOfIPCs(), granularity=2)

    def test_shares_are_positive_and_sum_to_one(self):
        best = optimize_joint(make_model(), SumOfIPCs(), granularity=8)
        assert np.all(best.cache_shares > 0)
        assert best.cache_shares.sum() == pytest.approx(1.0)
