"""Tests for priority-weighted metrics and their derived optima."""

import numpy as np
import pytest

from repro.core import (
    AnalyticalModel,
    HarmonicWeightedSpeedup,
    PriorityAPC,
    SquareRootPartitioning,
    WeightedSpeedup,
    optimize_partition,
)
from repro.core.weighted import (
    WeightedHarmonicSpeedup,
    WeightedPriorityAPC,
    WeightedSquareRootPartitioning,
    WeightedWeightedSpeedup,
    weighted_hsp_optimum,
)
from repro.util.errors import ConfigurationError

B = 0.01
W = np.array([4.0, 2.0, 1.0, 1.0])


class TestWeightValidation:
    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedHarmonicSpeedup([1.0, 0.0])
        with pytest.raises(ConfigurationError):
            WeightedWeightedSpeedup([-1.0, 1.0])

    def test_length_mismatch_rejected(self, hetero_workload):
        metric = WeightedHarmonicSpeedup([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            metric(np.ones(4), np.ones(4))


class TestReductionToPaperMetrics:
    def test_equal_weights_hsp_matches_unweighted(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        op = model.operating_point(SquareRootPartitioning())
        plain = op.evaluate(HarmonicWeightedSpeedup())
        weighted = op.evaluate(WeightedHarmonicSpeedup(np.ones(4)))
        assert weighted == pytest.approx(plain)

    def test_equal_weights_wsp_matches_unweighted(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        op = model.operating_point(SquareRootPartitioning())
        plain = op.evaluate(WeightedSpeedup())
        weighted = op.evaluate(WeightedWeightedSpeedup(np.ones(4)))
        assert weighted == pytest.approx(plain)

    def test_equal_weight_schemes_match_paper_schemes(self, hetero_workload):
        ones = np.ones(4)
        np.testing.assert_allclose(
            WeightedSquareRootPartitioning(ones).beta(hetero_workload),
            SquareRootPartitioning().beta(hetero_workload),
        )
        np.testing.assert_array_equal(
            WeightedPriorityAPC(ones).priority_order(hetero_workload),
            PriorityAPC().priority_order(hetero_workload),
        )


class TestDerivedOptimaVerification:
    def test_weighted_sqrt_matches_numerical_optimum(self, hetero_workload):
        """The Lagrange derivation x_i ∝ sqrt(w_i a_i) must agree with
        the generic optimizer -- the Sec. III-F versatility claim."""
        metric = WeightedHarmonicSpeedup(W)
        scheme = WeightedSquareRootPartitioning(W)
        model = AnalyticalModel(hetero_workload, B)
        derived = model.evaluate(metric, scheme)
        numerical = optimize_partition(hetero_workload, B, metric)
        assert numerical.objective == pytest.approx(derived, rel=1e-5)

    def test_weighted_sqrt_closed_form(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        explicit = model.evaluate(
            WeightedHarmonicSpeedup(W), WeightedSquareRootPartitioning(W)
        )
        assert weighted_hsp_optimum(hetero_workload, B, W) == pytest.approx(explicit)

    def test_weighted_priority_matches_numerical_optimum(self, hetero_workload):
        metric = WeightedWeightedSpeedup(W)
        scheme = WeightedPriorityAPC(W)
        model = AnalyticalModel(hetero_workload, B)
        derived = model.evaluate(metric, scheme)
        numerical = optimize_partition(hetero_workload, B, metric)
        assert numerical.objective == pytest.approx(derived, rel=1e-5)

    def test_knapsack_point_equals_scheme_allocation(self, hetero_workload):
        scheme = WeightedPriorityAPC(W)
        alloc = scheme.allocate(hetero_workload, B)
        point = scheme.knapsack_point(hetero_workload, B)
        np.testing.assert_allclose(point.apc_shared, alloc)


class TestWeightEffects:
    def test_heavier_weight_attracts_bandwidth(self, hetero_workload):
        """Raising an app's weight increases its share under the weighted
        square-root scheme."""
        base = WeightedSquareRootPartitioning(np.ones(4)).beta(hetero_workload)
        boosted = WeightedSquareRootPartitioning(
            np.array([9.0, 1.0, 1.0, 1.0])
        ).beta(hetero_workload)
        assert boosted[0] > base[0]
        assert all(boosted[i] < base[i] for i in range(1, 4))

    def test_weights_can_flip_priority_order(self, hetero_workload):
        """A big enough weight puts a heavy app at the front of the
        weighted knapsack order."""
        a = hetero_workload.apc_alone
        heaviest = int(np.argmax(a))
        w = np.ones(4)
        w[heaviest] = 1000.0
        order = WeightedPriorityAPC(w).priority_order(hetero_workload)
        assert order[0] == heaviest

    def test_starvation_shifts_with_weights(self, hetero_workload):
        """With a huge weight on the heaviest app, the weighted-priority
        allocation serves it fully while someone else starves."""
        a = hetero_workload.apc_alone
        heaviest = int(np.argmax(a))
        w = np.ones(4)
        w[heaviest] = 1000.0
        alloc = WeightedPriorityAPC(w).allocate(hetero_workload, B)
        assert alloc[heaviest] == pytest.approx(a[heaviest])
        assert alloc.min() < 0.2 * a.min()

    def test_weighted_hsp_zero_on_starvation(self):
        metric = WeightedHarmonicSpeedup([1.0, 2.0])
        assert metric(np.array([1.0, 0.0]), np.array([1.0, 1.0])) == 0.0
