"""Unit tests for partitioning schemes (repro.core.partitioning)."""

import numpy as np
import pytest

from repro.core import (
    SCHEME_ORDER,
    EqualPartitioning,
    ExplicitShares,
    NoPartitioningModel,
    PowerPartitioning,
    PriorityAPC,
    PriorityAPI,
    ProportionalPartitioning,
    SquareRootPartitioning,
    TwoThirdsPowerPartitioning,
    Workload,
    AppProfile,
    default_schemes,
    scheme_by_name,
)
from repro.util.errors import ConfigurationError

B = 0.01


class TestShareRules:
    def test_equal_shares(self, hetero_workload):
        beta = EqualPartitioning().beta(hetero_workload)
        np.testing.assert_allclose(beta, 0.25)

    def test_proportional_shares(self, hetero_workload):
        beta = ProportionalPartitioning().beta(hetero_workload)
        a = hetero_workload.apc_alone
        np.testing.assert_allclose(beta, a / a.sum())

    def test_square_root_shares(self, hetero_workload):
        beta = SquareRootPartitioning().beta(hetero_workload)
        s = np.sqrt(hetero_workload.apc_alone)
        np.testing.assert_allclose(beta, s / s.sum())

    def test_two_thirds_shares(self, hetero_workload):
        beta = TwoThirdsPowerPartitioning().beta(hetero_workload)
        w = hetero_workload.apc_alone ** (2 / 3)
        np.testing.assert_allclose(beta, w / w.sum())

    def test_power_family_endpoints(self, hetero_workload):
        # alpha=0 -> Equal; alpha=1 -> Proportional
        np.testing.assert_allclose(
            PowerPartitioning(0.0).beta(hetero_workload),
            EqualPartitioning().beta(hetero_workload),
        )
        np.testing.assert_allclose(
            PowerPartitioning(1.0).beta(hetero_workload),
            ProportionalPartitioning().beta(hetero_workload),
        )

    def test_all_shares_sum_to_one(self, hetero_workload):
        for scheme in default_schemes().values():
            if hasattr(scheme, "beta"):
                assert scheme.beta(hetero_workload).sum() == pytest.approx(1.0)

    def test_share_ordering_by_alpha(self, hetero_workload):
        """Sec. III-F: among Prop, Sqrt, Priority_APC, Priority_APC gives
        the most to low-APC apps and Proportional the least; more broadly
        a smaller exponent gives low-APC apps a larger share."""
        low_idx = int(np.argmin(hetero_workload.apc_alone))
        shares = [
            PowerPartitioning(alpha).beta(hetero_workload)[low_idx]
            for alpha in (0.0, 0.5, 2 / 3, 1.0)
        ]
        assert shares == sorted(shares, reverse=True)


class TestPrioritySchemes:
    def test_priority_apc_order(self, hetero_workload):
        order = PriorityAPC().priority_order(hetero_workload)
        a = hetero_workload.apc_alone
        assert list(a[order]) == sorted(a)

    def test_priority_api_order(self, hetero_workload):
        order = PriorityAPI().priority_order(hetero_workload)
        api = hetero_workload.api
        assert list(api[order]) == sorted(api)

    def test_priority_allocation_starves_heaviest(self, hetero_workload):
        alloc = PriorityAPC().allocate(hetero_workload, B)
        heaviest = int(np.argmax(hetero_workload.apc_alone))
        # the paper: strict priority causes starvation for high-APC apps
        assert alloc[heaviest] < hetero_workload.apc_alone[heaviest]

    def test_priority_allocation_fills_budget(self, hetero_workload):
        alloc = PriorityAPC().allocate(hetero_workload, B)
        total = min(B, hetero_workload.apc_alone.sum())
        assert alloc.sum() == pytest.approx(total)

    def test_api_and_apc_agree_when_correlated(self):
        """Paper Sec. VI-A: for heterogeneous workloads the two priority
        schemes coincide because high-API apps are also high-APC.  Build
        a workload where the API and APC_alone orderings agree."""
        wl = Workload.of(
            "correlated",
            [
                AppProfile("lbm", api=0.0531331, apc_alone=0.00938517),
                AppProfile("milc", api=0.0422216, apc_alone=0.00687143),
                AppProfile("gromacs", api=0.0051976, apc_alone=0.00336604),
                AppProfile("gobmk", api=0.0040668, apc_alone=0.00191485),
            ],
        )
        a = PriorityAPC().allocate(wl, B)
        b = PriorityAPI().allocate(wl, B)
        np.testing.assert_allclose(a, b)

    def test_api_and_apc_differ_when_anticorrelated(self):
        """hmmer has higher APC_alone but lower API than leslie3d
        (paper Sec. VI-A) -- the schemes must diverge."""
        wl = Workload.of(
            "hmmer-leslie",
            [
                AppProfile("hmmer", api=0.0046008, apc_alone=0.00529083),
                AppProfile("leslie3d", api=0.0075847, apc_alone=0.0043855),
            ],
        )
        a = PriorityAPC().allocate(wl, 0.006)
        b = PriorityAPI().allocate(wl, 0.006)
        assert not np.allclose(a, b)
        # APC priority serves leslie3d (lower APC) first
        assert a[1] == pytest.approx(wl.apc_alone[1])
        # API priority serves hmmer (lower API) first
        assert b[0] == pytest.approx(wl.apc_alone[0])


class TestAllocationInvariants:
    def test_no_scheme_exceeds_demand(self, hetero_workload):
        for scheme in default_schemes().values():
            alloc = scheme.allocate(hetero_workload, B)
            assert np.all(alloc <= hetero_workload.apc_alone + 1e-12), scheme.name

    def test_all_schemes_use_full_budget(self, hetero_workload):
        total = min(B, hetero_workload.apc_alone.sum())
        for scheme in default_schemes().values():
            alloc = scheme.allocate(hetero_workload, B)
            assert alloc.sum() == pytest.approx(total), scheme.name

    def test_homogeneous_apps_make_share_schemes_equal(self):
        """Paper Sec. VI-A: identical APC_alone collapses Equal,
        Proportional and Square_root to the same allocation."""
        wl = Workload.of(
            "identical",
            [AppProfile(f"a{i}", api=0.01, apc_alone=0.003) for i in range(4)],
        )
        allocs = [
            s.allocate(wl, B)
            for s in (
                EqualPartitioning(),
                ProportionalPartitioning(),
                SquareRootPartitioning(),
            )
        ]
        np.testing.assert_allclose(allocs[0], allocs[1])
        np.testing.assert_allclose(allocs[0], allocs[2])


class TestNoPartitioningModel:
    def test_overweights_heavy_apps(self, hetero_workload):
        beta_np = NoPartitioningModel(gamma=1.3).beta(hetero_workload)
        beta_prop = ProportionalPartitioning().beta(hetero_workload)
        heavy = int(np.argmax(hetero_workload.apc_alone))
        light = int(np.argmin(hetero_workload.apc_alone))
        assert beta_np[heavy] > beta_prop[heavy]
        assert beta_np[light] < beta_prop[light]

    def test_gamma_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            NoPartitioningModel(gamma=0.9)


class TestExplicitShares:
    def test_roundtrip(self, hetero_workload):
        beta = np.array([0.4, 0.3, 0.2, 0.1])
        scheme = ExplicitShares(beta)
        np.testing.assert_allclose(scheme.beta(hetero_workload), beta)

    def test_invalid_shares_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitShares(np.array([0.5, 0.6]))
        with pytest.raises(ConfigurationError):
            ExplicitShares(np.array([-0.1, 1.1]))

    def test_length_mismatch_rejected(self, hetero_workload):
        scheme = ExplicitShares(np.array([0.5, 0.5]))
        with pytest.raises(ConfigurationError):
            scheme.beta(hetero_workload)


class TestRegistry:
    def test_default_schemes_match_paper_fig2(self):
        assert set(default_schemes()) == set(SCHEME_ORDER)

    def test_lookup(self):
        assert isinstance(scheme_by_name("sqrt"), SquareRootPartitioning)
        assert isinstance(scheme_by_name("nopart"), NoPartitioningModel)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            scheme_by_name("bogus")
