"""Tests for the generic numerical optimizer (repro.core.optimizer).

These tests are the operational verification of the paper's derivations:
the numerical optimum over all feasible partitions must coincide (within
tolerance) with the closed-form optima.
"""

import numpy as np
import pytest

from repro.core import (
    AnalyticalModel,
    AppProfile,
    HarmonicWeightedSpeedup,
    Metric,
    SumOfIPCs,
    WeightedSpeedup,
    Workload,
    hsp_square_root,
    optimize_partition,
)
from repro.core.optimizer import project_to_feasible

B = 0.01


class TestProjection:
    def test_already_feasible_unchanged(self):
        cap = np.array([0.5, 0.5])
        x = np.array([0.3, 0.2])
        out = project_to_feasible(x, 0.5, cap)
        np.testing.assert_allclose(out, x)

    def test_clips_and_rescales(self):
        cap = np.array([0.2, 1.0])
        x = np.array([0.5, 0.1])
        out = project_to_feasible(x, 0.6, cap)
        assert out.sum() == pytest.approx(0.6)
        assert np.all(out <= cap + 1e-12)
        assert np.all(out >= 0)

    def test_target_capped_by_total_demand(self):
        cap = np.array([0.1, 0.1])
        out = project_to_feasible(np.array([5.0, 5.0]), 1.0, cap)
        assert out.sum() == pytest.approx(0.2)

    def test_random_inputs_stay_feasible(self, rng):
        for _ in range(100):
            n = int(rng.integers(2, 7))
            cap = rng.uniform(0.1, 1.0, n)
            x = rng.uniform(-0.5, 2.0, n)
            budget = float(rng.uniform(0.05, 1.5))
            out = project_to_feasible(x, budget, cap)
            assert np.all(out >= -1e-12)
            assert np.all(out <= cap + 1e-9)
            assert out.sum() == pytest.approx(min(budget, cap.sum()), rel=1e-6)


class TestOptimizerRecoversClosedForms:
    def test_hsp_optimum_matches_eq4(self, hetero_workload):
        result = optimize_partition(hetero_workload, B, HarmonicWeightedSpeedup())
        assert result.objective == pytest.approx(
            hsp_square_root(hetero_workload, B), rel=1e-6
        )

    def test_hsp_optimal_beta_is_sqrt_shares(self, hetero_workload):
        result = optimize_partition(hetero_workload, B, HarmonicWeightedSpeedup())
        s = np.sqrt(hetero_workload.apc_alone)
        np.testing.assert_allclose(result.beta, s / s.sum(), rtol=1e-4)

    def test_wsp_optimum_matches_knapsack(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        result = optimize_partition(hetero_workload, B, WeightedSpeedup())
        assert result.objective == pytest.approx(
            model.max_weighted_speedup(), rel=1e-6
        )

    def test_ipcsum_optimum_matches_knapsack(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        result = optimize_partition(hetero_workload, B, SumOfIPCs())
        assert result.objective == pytest.approx(model.max_sum_of_ipcs(), rel=1e-6)

    def test_random_workloads_never_beat_closed_form(self, rng):
        """Hsp: no numerical optimum may exceed Eq. (4) (it is THE max)."""
        for _ in range(10):
            n = int(rng.integers(2, 6))
            apps = [
                AppProfile(
                    f"a{i}",
                    api=float(rng.uniform(0.002, 0.05)),
                    apc_alone=float(rng.uniform(0.001, 0.009)),
                )
                for i in range(n)
            ]
            wl = Workload.of("rand", apps)
            bw = float(min(0.01, wl.apc_alone.sum() * 0.9))
            if not np.all(np.sqrt(wl.apc_alone) / np.sqrt(wl.apc_alone).sum() * bw
                          <= wl.apc_alone):
                continue  # closed form only exact in the uncapped regime
            result = optimize_partition(wl, bw, HarmonicWeightedSpeedup())
            assert result.objective <= hsp_square_root(wl, bw) * (1 + 1e-6)


class TestArbitraryMetrics:
    def test_custom_metric_geometric_mean(self, hetero_workload):
        """Sec. III-F versatility: optimize a metric with no closed form.

        Geometric-mean speedup is maximized by equal *marginal log gain*:
        d/dx_i sum log(x_i/a_i) = 1/x_i equal -> equal APC, water-filled
        against the per-app demand caps.  The optimizer should find it.
        """

        class GeoMeanSpeedup(Metric):
            name = "geomean"

            def evaluate(self, ipc_shared, ipc_alone):
                if np.any(ipc_shared <= 0):
                    return 0.0
                return float(np.exp(np.mean(np.log(ipc_shared / ipc_alone))))

        result = optimize_partition(hetero_workload, B, GeoMeanSpeedup())
        # equal-APC water-filling against caps: gobmk (0.00191) caps below
        # B/4 = 0.0025, the other three split the remainder equally
        cap = hetero_workload.apc_alone
        expected = np.empty(4)
        expected[3] = cap[3]
        expected[:3] = (B - cap[3]) / 3
        np.testing.assert_allclose(result.apc_shared, expected, rtol=1e-3)

    def test_model_facade_numerical_path(self, hetero_workload):
        class GeoMeanSpeedup(Metric):
            name = "geomean"

            def evaluate(self, ipc_shared, ipc_alone):
                if np.any(ipc_shared <= 0):
                    return 0.0
                return float(np.exp(np.mean(np.log(ipc_shared / ipc_alone))))

        model = AnalyticalModel(hetero_workload, B)
        op = model.optimize_numerically(GeoMeanSpeedup())
        assert op.apc_shared.sum() == pytest.approx(B)

    def test_minfairness_fallback_not_worse_than_proportional(self, hetero_workload):
        """MinFairness is non-smooth; SLSQP may struggle, but the result
        must never be worse than the Proportional starting point."""
        from repro.core import MinFairness, ProportionalPartitioning

        model = AnalyticalModel(hetero_workload, B)
        prop_val = model.evaluate(MinFairness(), ProportionalPartitioning())
        result = optimize_partition(hetero_workload, B, MinFairness())
        assert result.objective >= prop_val - 1e-9
