"""Tests for the closed-form expressions (repro.core.closed_form)."""

import numpy as np
import pytest

from repro.core import (
    AnalyticalModel,
    AppProfile,
    HarmonicWeightedSpeedup,
    ProportionalPartitioning,
    SquareRootPartitioning,
    WeightedSpeedup,
    Workload,
    cauchy_dominance_holds,
    hsp_proportional,
    hsp_square_root,
    wsp_proportional,
    wsp_square_root,
)
from repro.core.closed_form import (
    proportional_allocation_is_uncapped,
    sqrt_allocation_is_uncapped,
    wsp_square_root_paper_form,
)

B = 0.01


class TestClosedFormsMatchExplicitAllocations:
    """The closed forms must agree with evaluating the metric on the
    explicitly constructed allocation (in the uncapped regime)."""

    def test_eq4_hsp_square_root(self, hetero_workload):
        assert sqrt_allocation_is_uncapped(hetero_workload, B)
        model = AnalyticalModel(hetero_workload, B)
        explicit = model.evaluate(HarmonicWeightedSpeedup(), SquareRootPartitioning())
        assert hsp_square_root(hetero_workload, B) == pytest.approx(explicit)

    def test_eq8_hsp_proportional(self, hetero_workload):
        assert proportional_allocation_is_uncapped(hetero_workload, B)
        model = AnalyticalModel(hetero_workload, B)
        explicit = model.evaluate(HarmonicWeightedSpeedup(), ProportionalPartitioning())
        assert hsp_proportional(hetero_workload, B) == pytest.approx(explicit)

    def test_eq8_wsp_equals_hsp_for_proportional(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        wsp = model.evaluate(WeightedSpeedup(), ProportionalPartitioning())
        hsp = model.evaluate(HarmonicWeightedSpeedup(), ProportionalPartitioning())
        assert wsp == pytest.approx(hsp)
        assert wsp_proportional(hetero_workload, B) == pytest.approx(wsp)

    def test_wsp_square_root_self_consistent_form(self, hetero_workload):
        model = AnalyticalModel(hetero_workload, B)
        explicit = model.evaluate(WeightedSpeedup(), SquareRootPartitioning())
        assert wsp_square_root(hetero_workload, B) == pytest.approx(explicit)

    def test_eq6_paper_form_documented_discrepancy(self, hetero_workload):
        """Eq. (6) as printed disagrees with evaluating Eq. (9) on the
        Eq. (5) allocation (missing normalization); we keep it exposed but
        distinct.  For N identical apps the printed form overshoots by N^2."""
        wl = Workload.of(
            "same", [AppProfile(f"a{i}", api=0.01, apc_alone=0.004) for i in range(4)]
        )
        literal = wsp_square_root_paper_form(wl, B)
        consistent = wsp_square_root(wl, B)
        assert literal == pytest.approx(consistent * wl.n**2)


class TestDominance:
    def test_cauchy_dominance_fixed_workloads(self, hetero_workload, homo_workload):
        assert cauchy_dominance_holds(hetero_workload, B)
        assert cauchy_dominance_holds(homo_workload, B)

    def test_dominance_equality_for_identical_apps(self):
        """Cauchy-Schwarz is tight iff all APC_alone are equal: then
        Square_root and Proportional coincide."""
        wl = Workload.of(
            "same", [AppProfile(f"a{i}", api=0.01, apc_alone=0.004) for i in range(4)]
        )
        assert hsp_square_root(wl, B) == pytest.approx(hsp_proportional(wl, B))

    def test_dominance_random_workloads(self, rng):
        for _ in range(200):
            n = int(rng.integers(2, 9))
            apps = [
                AppProfile(
                    f"a{i}",
                    api=float(rng.uniform(0.001, 0.06)),
                    apc_alone=float(rng.uniform(0.0005, 0.0099)),
                )
                for i in range(n)
            ]
            wl = Workload.of("rand", apps)
            assert cauchy_dominance_holds(wl, B)

    def test_wsp_ordering_priority_sqrt_prop(self, hetero_workload):
        """Sec. III: Wsp(Priority_APC) >= Wsp(Square_root) >= Wsp(Prop)."""
        model = AnalyticalModel(hetero_workload, B)
        w_prio = model.max_weighted_speedup()
        w_sqrt = wsp_square_root(hetero_workload, B)
        w_prop = wsp_proportional(hetero_workload, B)
        assert w_prio >= w_sqrt - 1e-12 >= w_prop - 1e-12


class TestCappingDetection:
    def test_sqrt_capping_detected_at_high_bandwidth(self):
        # one tiny-demand app: with huge B its sqrt share exceeds demand
        wl = Workload.of(
            "tiny",
            [
                AppProfile("big", api=0.05, apc_alone=0.009),
                AppProfile("tiny", api=0.001, apc_alone=0.0001),
            ],
        )
        assert sqrt_allocation_is_uncapped(wl, 0.001)
        assert not sqrt_allocation_is_uncapped(wl, 0.009)

    def test_proportional_capping_is_total_demand_check(self, hetero_workload):
        total = hetero_workload.apc_alone.sum()
        assert proportional_allocation_is_uncapped(hetero_workload, total)
        assert not proportional_allocation_is_uncapped(hetero_workload, total * 1.01)
