"""Tests for QoS-guaranteed partitioning (repro.core.qos, paper Sec. III-G)."""

import numpy as np
import pytest

from repro.core import (
    AppProfile,
    HarmonicWeightedSpeedup,
    MinFairness,
    QoSPartitioner,
    QoSTarget,
    SumOfIPCs,
    WeightedSpeedup,
    Workload,
)
from repro.util.errors import ConfigurationError, InfeasibleError

B = 0.01


@pytest.fixture
def mix1() -> Workload:
    """Paper Sec. VI-B Mix-1: lbm, libquantum, omnetpp, hmmer."""
    return Workload.of(
        "Mix-1",
        [
            AppProfile("lbm", api=0.0531331, apc_alone=0.00938517),
            AppProfile("libquantum", api=0.0341188, apc_alone=0.00691693),
            AppProfile("omnetpp", api=0.0305707, apc_alone=0.00518984),
            AppProfile("hmmer", api=0.0046008, apc_alone=0.00529083),
        ],
    )


class TestReservation:
    def test_bqos_is_target_ipc_times_api(self, mix1):
        """Sec. III-G: B_QoS = IPC_target x API."""
        plan = QoSPartitioner(WeightedSpeedup()).plan(
            mix1, B, [QoSTarget("hmmer", 0.6)]
        )
        i = mix1.index_of("hmmer")
        expected = 0.6 * mix1[i].api
        assert plan.apc_shared[i] == pytest.approx(expected)
        assert plan.b_qos == pytest.approx(expected)

    def test_eq11_bandwidth_split(self, mix1):
        plan = QoSPartitioner(WeightedSpeedup()).plan(
            mix1, B, [QoSTarget("hmmer", 0.6)]
        )
        assert plan.b_best_effort == pytest.approx(B - plan.b_qos)
        assert plan.apc_shared.sum() <= B + 1e-12

    def test_qos_app_hits_ipc_target(self, mix1):
        plan = QoSPartitioner(WeightedSpeedup()).plan(
            mix1, B, [QoSTarget("hmmer", 0.6)]
        )
        op = plan.operating_point
        i = mix1.index_of("hmmer")
        assert op.ipc_shared[i] == pytest.approx(0.6)

    def test_multiple_targets(self, mix1):
        plan = QoSPartitioner(SumOfIPCs()).plan(
            mix1, B, [QoSTarget("hmmer", 0.5), QoSTarget("omnetpp", 0.05)]
        )
        op = plan.operating_point
        assert op.ipc_shared[mix1.index_of("hmmer")] == pytest.approx(0.5)
        assert op.ipc_shared[mix1.index_of("omnetpp")] == pytest.approx(0.05)

    def test_beta_vector_usable_by_scheduler(self, mix1):
        plan = QoSPartitioner(WeightedSpeedup()).plan(
            mix1, B, [QoSTarget("hmmer", 0.6)]
        )
        assert plan.beta.sum() == pytest.approx(1.0)
        assert np.all(plan.beta >= 0)


class TestBestEffortOptimization:
    @pytest.mark.parametrize(
        "objective",
        [WeightedSpeedup(), SumOfIPCs(), HarmonicWeightedSpeedup(), MinFairness()],
    )
    def test_best_effort_beats_equal_split(self, mix1, objective):
        """The optimized best-effort allocation must be at least as good
        as naively splitting B_BE equally among best-effort apps."""
        plan = QoSPartitioner(objective).plan(mix1, B, [QoSTarget("hmmer", 0.6)])
        be_point = plan.best_effort_point()
        achieved = be_point.evaluate(objective)

        from repro.core import EqualPartitioning

        sub = be_point.workload
        equal_apc = EqualPartitioning().allocate(sub, plan.b_best_effort)
        from repro.core import OperatingPoint

        baseline = OperatingPoint(sub, equal_apc).evaluate(objective)
        assert achieved >= baseline - 1e-9

    def test_best_effort_group_excludes_qos_app(self, mix1):
        plan = QoSPartitioner(WeightedSpeedup()).plan(
            mix1, B, [QoSTarget("hmmer", 0.6)]
        )
        be = plan.best_effort_point()
        assert "hmmer" not in be.workload.names
        assert be.workload.n == 3

    def test_custom_metric_best_effort(self, mix1):
        class GeoMean(HarmonicWeightedSpeedup):
            name = "geo"

            def evaluate(self, ipc_shared, ipc_alone):
                if np.any(ipc_shared <= 0):
                    return 0.0
                return float(np.exp(np.mean(np.log(ipc_shared / ipc_alone))))

        plan = QoSPartitioner(GeoMean()).plan(mix1, B, [QoSTarget("hmmer", 0.6)])
        assert plan.apc_shared.sum() <= B + 1e-9


class TestFeasibility:
    def test_target_above_alone_ipc_rejected(self, mix1):
        hmmer = mix1[mix1.index_of("hmmer")]
        with pytest.raises(InfeasibleError):
            QoSPartitioner().plan(
                mix1, B, [QoSTarget("hmmer", hmmer.ipc_alone * 1.1)]
            )

    def test_overcommitted_reservations_rejected(self, mix1):
        # demand nearly-alone IPC for the two heaviest apps: exceeds B
        targets = [
            QoSTarget("lbm", mix1[0].ipc_alone * 0.99),
            QoSTarget("libquantum", mix1[1].ipc_alone * 0.99),
        ]
        with pytest.raises(InfeasibleError):
            QoSPartitioner().plan(mix1, 0.01, targets)

    def test_duplicate_target_rejected(self, mix1):
        with pytest.raises(ConfigurationError):
            QoSPartitioner().plan(
                mix1, B, [QoSTarget("hmmer", 0.3), QoSTarget("hmmer", 0.4)]
            )

    def test_unknown_app_rejected(self, mix1):
        with pytest.raises(KeyError):
            QoSPartitioner().plan(mix1, B, [QoSTarget("nonexistent", 0.3)])

    def test_empty_targets_rejected(self, mix1):
        with pytest.raises(ConfigurationError):
            QoSPartitioner().plan(mix1, B, [])

    def test_negative_target_rejected(self):
        with pytest.raises(ConfigurationError):
            QoSTarget("x", -0.5)

    def test_exact_full_reservation_feasible(self):
        wl = Workload.of(
            "two",
            [
                AppProfile("a", api=0.01, apc_alone=0.005),
                AppProfile("b", api=0.01, apc_alone=0.005),
            ],
        )
        # reserve the entire bandwidth for app a at its alone IPC=0.5
        plan = QoSPartitioner().plan(wl, 0.005, [QoSTarget("a", 0.5)])
        assert plan.b_best_effort == pytest.approx(0.0)
        assert plan.apc_shared[1] == pytest.approx(0.0)
