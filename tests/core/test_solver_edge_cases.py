"""Edge cases for the solvers the service exposes.

Degenerate inputs -- zero bandwidth, a single app, all-equal
``APC_alone`` (priority ties), a zero ``APC_alone`` -- must produce
either a graceful, finite result or a *typed* error
(:class:`ConfigurationError`), never NaNs or silent garbage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SCHEME_ORDER,
    AppProfile,
    Workload,
    scheme_by_name,
    solve_fractional_knapsack,
)
from repro.core.batch import batch_allocate, batch_solve_fractional_knapsack
from repro.core.closed_form import (
    hsp_proportional,
    hsp_square_root,
    wsp_proportional,
    wsp_square_root,
)
from repro.core.metrics import metric_by_name
from repro.core.optimizer import optimize_partition
from repro.util.errors import ConfigurationError

CLOSED_FORMS = (hsp_square_root, wsp_square_root, hsp_proportional, wsp_proportional)


def workload(apcs, apis=None):
    apis = apis if apis is not None else [0.02] * len(apcs)
    return Workload.of(
        "w", [AppProfile(f"a{i}", api=apis[i], apc_alone=apcs[i]) for i in range(len(apcs))]
    )


# ----------------------------------------------------------------------
# B = 0: typed error from solvers, graceful zero from closed forms
# ----------------------------------------------------------------------
class TestZeroBandwidth:
    @pytest.mark.parametrize("scheme", SCHEME_ORDER)
    def test_schemes_reject_zero_bandwidth(self, scheme):
        with pytest.raises(ConfigurationError):
            scheme_by_name(scheme).allocate(workload([0.004, 0.002]), 0.0)

    def test_optimizer_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            optimize_partition(workload([0.004, 0.002]), 0.0, metric_by_name("hsp"))

    @pytest.mark.parametrize("fn", CLOSED_FORMS, ids=lambda f: f.__name__)
    def test_closed_forms_degrade_to_zero_speedup(self, fn):
        value = fn(workload([0.004, 0.002]), 0.0)
        assert value == 0.0  # no bandwidth, no progress -- but no NaN

    def test_knapsack_zero_budget_takes_nothing(self):
        sol = solve_fractional_knapsack(
            np.array([1.0, 2.0]), np.array([0.5, 0.5]), 0.0
        )
        assert sol.quantities.tolist() == [0.0, 0.0]
        assert sol.objective == 0.0
        assert sol.split_item == -1

    def test_knapsack_negative_budget_is_typed_error(self):
        with pytest.raises(ConfigurationError):
            solve_fractional_knapsack(np.array([1.0]), np.array([0.5]), -0.1)

    def test_batch_kernels_reject_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            batch_allocate("sqrt", np.full((2, 3), 0.004), np.array([0.01, 0.0]))


# ----------------------------------------------------------------------
# single app: everything goes to it (up to its demand)
# ----------------------------------------------------------------------
class TestSingleApp:
    @pytest.mark.parametrize("scheme", SCHEME_ORDER)
    def test_schemes_give_single_app_min_of_b_and_demand(self, scheme):
        w = workload([0.004])
        alloc = scheme_by_name(scheme).allocate(w, 0.01)
        assert alloc.tolist() == [0.004]  # capped at APC_alone
        starved = scheme_by_name(scheme).allocate(w, 0.001)
        assert starved.tolist() == [0.001]

    def test_optimizer_single_app(self):
        opt = optimize_partition(workload([0.004]), 0.002, metric_by_name("hsp"))
        assert opt.apc_shared.tolist() == pytest.approx([0.002])
        assert np.isfinite(opt.objective)

    @pytest.mark.parametrize("fn", CLOSED_FORMS, ids=lambda f: f.__name__)
    def test_closed_forms_single_app_unit_speedup(self, fn):
        # one app, B = APC_alone: running exactly as fast as standalone
        assert fn(workload([0.004]), 0.004) == pytest.approx(1.0)

    def test_knapsack_single_item(self):
        sol = solve_fractional_knapsack(np.array([2.0]), np.array([0.5]), 0.2)
        assert sol.quantities.tolist() == [0.2]
        assert sol.split_item == 0


# ----------------------------------------------------------------------
# all-equal APC_alone: priority ties must break by index, stably
# ----------------------------------------------------------------------
class TestPriorityTies:
    def test_prio_apc_ties_fill_in_index_order(self):
        w = workload([0.005] * 4)
        alloc = scheme_by_name("prio_apc").allocate(w, 0.012)
        assert alloc.tolist() == [0.005, 0.005, 0.002, 0.0]

    def test_prio_api_ties_fill_in_index_order(self):
        w = workload([0.005] * 4, apis=[0.02] * 4)
        alloc = scheme_by_name("prio_api").allocate(w, 0.012)
        assert alloc.tolist() == [0.005, 0.005, 0.002, 0.0]

    def test_knapsack_value_ties_stable_by_index(self):
        sol = solve_fractional_knapsack(
            np.array([1.0, 1.0, 1.0]), np.array([0.5, 0.5, 0.5]), 0.75
        )
        assert sol.fill_order.tolist() == [0, 1, 2]
        assert sol.quantities.tolist() == [0.5, 0.25, 0.0]
        assert sol.split_item == 1

    @pytest.mark.parametrize("scheme", ["sqrt", "prop", "equal"])
    def test_weighted_schemes_split_ties_equally(self, scheme):
        w = workload([0.005] * 4)
        alloc = scheme_by_name(scheme).allocate(w, 0.012)
        np.testing.assert_allclose(alloc, 0.003)
        assert np.isfinite(alloc).all()

    def test_batch_ties_match_scalar(self):
        apc = np.full((3, 4), 0.005)
        bandwidth = np.array([0.012, 0.012, 0.012])
        stacked = batch_allocate("prio_apc", apc, bandwidth)
        assert stacked[0].tolist() == [0.005, 0.005, 0.002, 0.0]
        assert np.array_equal(stacked[0], stacked[2])


# ----------------------------------------------------------------------
# APC_alone = 0: rejected at construction, never NaN downstream
# ----------------------------------------------------------------------
class TestZeroApcAlone:
    def test_app_profile_rejects_zero_apc_alone(self):
        with pytest.raises(ConfigurationError):
            AppProfile("a", api=0.01, apc_alone=0.0)

    def test_app_profile_rejects_negative_and_nan(self):
        with pytest.raises(ConfigurationError):
            AppProfile("a", api=0.01, apc_alone=-0.004)
        with pytest.raises(ConfigurationError):
            AppProfile("a", api=0.01, apc_alone=float("nan"))

    def test_batch_kernels_reject_nonpositive_apc(self):
        bad = np.array([[0.004, 0.0], [0.004, 0.002]])
        with pytest.raises(ConfigurationError):
            batch_allocate("sqrt", bad, np.array([0.01, 0.01]))

    def test_knapsack_zero_capacity_item_is_skipped_not_nan(self):
        sol = solve_fractional_knapsack(
            np.array([1.0, 2.0]), np.array([0.0, 0.5]), 0.3
        )
        assert sol.quantities.tolist() == [0.0, 0.3]
        assert np.isfinite(sol.objective)

    def test_batch_knapsack_zero_capacity_matches_scalar(self):
        values = np.array([[1.0, 2.0]])
        caps = np.array([[0.0, 0.5]])
        sol = batch_solve_fractional_knapsack(values, caps, np.array([0.3]))
        ref = solve_fractional_knapsack(values[0], caps[0], 0.3)
        assert np.array_equal(sol.quantities[0], ref.quantities)

    def test_knapsack_rejects_non_finite_inputs(self):
        with pytest.raises(ConfigurationError):
            solve_fractional_knapsack(np.array([np.nan]), np.array([0.5]), 0.1)
        with pytest.raises(ConfigurationError):
            solve_fractional_knapsack(np.array([1.0]), np.array([np.inf]), 0.1)
