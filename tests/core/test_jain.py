"""Tests for the Jain fairness index extension metric."""

import numpy as np
import pytest

from repro.core import AnalyticalModel, ProportionalPartitioning
from repro.core.metrics import JainFairness


class TestJainIndex:
    def test_equal_speedups_give_one(self):
        m = JainFairness()
        assert m(np.array([0.5, 1.0, 2.0]) * 0.3,
                 np.array([0.5, 1.0, 2.0])) == pytest.approx(1.0)

    def test_total_monopoly_gives_one_over_n(self):
        m = JainFairness()
        shared = np.array([1.0, 1e-12, 1e-12, 1e-12])
        alone = np.ones(4)
        assert m(shared, alone) == pytest.approx(0.25, rel=1e-3)

    def test_scale_invariant_in_speedups(self):
        m = JainFairness()
        alone = np.array([2.0, 1.0])
        a = m(alone * 0.3, alone)
        b = m(alone * 0.9, alone)
        assert a == pytest.approx(b)

    def test_bounded_in_unit_interval(self, rng):
        m = JainFairness()
        for _ in range(100):
            alone = rng.uniform(0.1, 3.0, 5)
            shared = alone * rng.uniform(0.01, 1.0, 5)
            j = m(shared, alone)
            assert 1 / 5 - 1e-9 <= j <= 1.0 + 1e-9

    def test_proportional_is_optimal(self, hetero_workload):
        """Equal speedups maximize Jain's index, so Proportional is the
        derived optimum -- same as MinFairness (paper Sec. III-C logic)."""
        model = AnalyticalModel(hetero_workload, 0.01)
        prop = model.evaluate(JainFairness(), ProportionalPartitioning())
        assert prop == pytest.approx(1.0)
        from repro.core import optimize_partition

        numerical = optimize_partition(hetero_workload, 0.01, JainFairness())
        assert numerical.objective <= prop + 1e-9

    def test_zero_everything(self):
        m = JainFairness()
        assert m(np.zeros(3), np.ones(3)) == 0.0
