"""Unit tests for bandwidth units and allocation (repro.core.bandwidth)."""

import numpy as np
import pytest

from repro.core import (
    BandwidthUnit,
    apc_to_bytes_per_sec,
    bytes_per_sec_to_apc,
    capped_allocation,
    greedy_allocation,
    normalize_shares,
)
from repro.util.errors import ConfigurationError


class TestBandwidthUnit:
    def test_paper_example(self):
        """Sec. III-A: 0.01 APC = 3.2 GB/s at 64 B lines, 5 GHz."""
        unit = BandwidthUnit(cache_line_bytes=64, cpu_frequency_hz=5e9)
        assert unit.to_gigabytes_per_sec(0.01) == pytest.approx(3.2)

    def test_roundtrip(self):
        unit = BandwidthUnit()
        for apc in (0.001, 0.01, 0.1):
            assert unit.to_apc(unit.to_bytes_per_sec(apc)) == pytest.approx(apc)

    def test_module_level_wrappers(self):
        assert apc_to_bytes_per_sec(0.01) == pytest.approx(3.2e9)
        assert bytes_per_sec_to_apc(3.2e9) == pytest.approx(0.01)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            BandwidthUnit(cache_line_bytes=0)


class TestNormalizeShares:
    def test_sums_to_one(self):
        b = normalize_shares(np.array([1.0, 2.0, 3.0]))
        assert b.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(b, [1 / 6, 2 / 6, 3 / 6])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            normalize_shares(np.array([1.0, -0.1]))

    def test_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            normalize_shares(np.zeros(3))


class TestCappedAllocation:
    def test_uncapped_is_proportional(self):
        beta = np.array([0.25, 0.25, 0.25, 0.25])
        demand = np.array([1.0, 1.0, 1.0, 1.0])
        alloc = capped_allocation(beta, 1.0, demand)
        np.testing.assert_allclose(alloc, 0.25)

    def test_capped_redistributes_slack(self):
        # app 0 can only use 0.1 of its 0.5 share; the slack goes to app 1
        beta = np.array([0.5, 0.5])
        demand = np.array([0.1, 10.0])
        alloc = capped_allocation(beta, 1.0, demand)
        np.testing.assert_allclose(alloc, [0.1, 0.9])

    def test_total_is_min_of_budget_and_demand(self):
        beta = np.array([0.5, 0.5])
        demand = np.array([0.1, 0.2])
        alloc = capped_allocation(beta, 1.0, demand)
        assert alloc.sum() == pytest.approx(0.3)
        np.testing.assert_allclose(alloc, demand)

    def test_never_exceeds_demand(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            n = rng.integers(2, 8)
            beta = rng.dirichlet(np.ones(n))
            demand = rng.uniform(0.01, 1.0, size=n)
            alloc = capped_allocation(beta, 1.0, demand)
            assert np.all(alloc <= demand + 1e-12)
            assert alloc.sum() <= 1.0 + 1e-12

    def test_non_work_conserving_leaves_slack(self):
        beta = np.array([0.5, 0.5])
        demand = np.array([0.1, 10.0])
        alloc = capped_allocation(beta, 1.0, demand, work_conserving=False)
        np.testing.assert_allclose(alloc, [0.1, 0.5])

    def test_zero_share_gets_nothing_uncapped(self):
        beta = np.array([0.0, 1.0])
        demand = np.array([5.0, 5.0])
        alloc = capped_allocation(beta, 1.0, demand)
        np.testing.assert_allclose(alloc, [0.0, 1.0])

    def test_zero_share_can_get_spillover(self):
        # work conservation: even a zero-share app receives bandwidth the
        # others cannot use -- matches a work-conserving scheduler.
        beta = np.array([0.0, 1.0])
        demand = np.array([5.0, 0.2])
        alloc = capped_allocation(beta, 1.0, demand)
        assert alloc[1] == pytest.approx(0.2)
        # remaining 0.8 is unusable by app 1; app 0 has zero share but the
        # allocator gives the leftover to apps with headroom only if they
        # have nonzero share weight -- so the leftover is unassigned here.
        assert alloc[0] == pytest.approx(0.0)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            capped_allocation(np.array([0.5, 0.6]), 1.0, np.array([1.0, 1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            capped_allocation(np.array([1.0]), 1.0, np.array([1.0, 1.0]))


class TestGreedyAllocation:
    def test_priority_order_respected(self):
        order = np.array([2, 0, 1])
        demand = np.array([0.5, 0.5, 0.4])
        alloc = greedy_allocation(order, 1.0, demand)
        np.testing.assert_allclose(alloc, [0.5, 0.1, 0.4])

    def test_starvation_of_low_priority(self):
        order = np.array([0, 1])
        demand = np.array([2.0, 1.0])
        alloc = greedy_allocation(order, 1.0, demand)
        np.testing.assert_allclose(alloc, [1.0, 0.0])

    def test_budget_larger_than_demand(self):
        order = np.array([0, 1])
        demand = np.array([0.3, 0.3])
        alloc = greedy_allocation(order, 1.0, demand)
        np.testing.assert_allclose(alloc, demand)
