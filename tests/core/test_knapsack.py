"""Unit tests for the fractional-knapsack solver (repro.core.knapsack)."""

import numpy as np
import pytest

from repro.core import solve_fractional_knapsack
from repro.util.errors import ConfigurationError


class TestGreedyFill:
    def test_fills_highest_density_first(self):
        sol = solve_fractional_knapsack(
            values=np.array([1.0, 3.0, 2.0]),
            capacities=np.array([1.0, 1.0, 1.0]),
            budget=1.5,
        )
        np.testing.assert_allclose(sol.quantities, [0.0, 1.0, 0.5])
        assert sol.split_item == 2
        assert sol.objective == pytest.approx(3.0 + 1.0)

    def test_budget_exceeds_all_capacity(self):
        sol = solve_fractional_knapsack(
            values=np.array([2.0, 1.0]),
            capacities=np.array([0.5, 0.5]),
            budget=5.0,
        )
        np.testing.assert_allclose(sol.quantities, [0.5, 0.5])
        assert sol.split_item == -1
        assert sol.used_capacity == pytest.approx(1.0)

    def test_zero_budget(self):
        sol = solve_fractional_knapsack(
            np.array([1.0, 2.0]), np.array([1.0, 1.0]), 0.0
        )
        np.testing.assert_allclose(sol.quantities, 0.0)
        assert sol.objective == 0.0

    def test_ties_break_by_index(self):
        sol = solve_fractional_knapsack(
            np.array([1.0, 1.0]), np.array([1.0, 1.0]), 1.0
        )
        np.testing.assert_allclose(sol.quantities, [1.0, 0.0])

    def test_fill_order_is_value_descending(self):
        sol = solve_fractional_knapsack(
            np.array([1.0, 5.0, 3.0]), np.ones(3), 0.5
        )
        assert list(sol.fill_order) == [1, 2, 0]


class TestOptimality:
    def test_greedy_beats_random_feasible_points(self, rng):
        """The greedy solution is optimal for the fractional knapsack:
        no random feasible allocation may achieve a higher objective."""
        for _ in range(200):
            n = int(rng.integers(2, 7))
            v = rng.uniform(0.1, 5.0, n)
            cap = rng.uniform(0.1, 2.0, n)
            budget = float(rng.uniform(0.1, cap.sum() * 1.2))
            sol = solve_fractional_knapsack(v, cap, budget)
            # random feasible competitor
            x = rng.uniform(0.0, 1.0, n) * cap
            if x.sum() > budget:
                x *= budget / x.sum()
            assert np.dot(v, x) <= sol.objective + 1e-9

    def test_conserves_budget(self, rng):
        for _ in range(100):
            n = int(rng.integers(1, 6))
            v = rng.uniform(0.1, 5.0, n)
            cap = rng.uniform(0.1, 2.0, n)
            budget = float(rng.uniform(0.1, 3.0))
            sol = solve_fractional_knapsack(v, cap, budget)
            assert sol.used_capacity == pytest.approx(min(budget, cap.sum()))
            assert np.all(sol.quantities <= cap + 1e-12)
            assert np.all(sol.quantities >= 0)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            solve_fractional_knapsack(np.ones(2), np.ones(3), 1.0)

    def test_negative_capacity(self):
        with pytest.raises(ConfigurationError):
            solve_fractional_knapsack(np.ones(2), np.array([1.0, -1.0]), 1.0)

    def test_negative_budget(self):
        with pytest.raises(ConfigurationError):
            solve_fractional_knapsack(np.ones(2), np.ones(2), -1.0)

    def test_non_finite_values(self):
        with pytest.raises(ConfigurationError):
            solve_fractional_knapsack(
                np.array([1.0, np.inf]), np.ones(2), 1.0
            )
