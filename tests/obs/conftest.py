"""Telemetry tests assert absolute values, so each test gets a clean
process-global registry + tracer and fully-on tracing."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs.reset()
    obs.configure(enabled=True, sample=1.0)
    yield
    obs.reset()
