"""RunManifest provenance file and the repro-trace CLI."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import cli


class TestRunManifest:
    def test_create_stamps_environment(self):
        m = obs.RunManifest.create("fig2", {"scheme": "sqrt"}, argv=["x"])
        assert m.name == "fig2"
        assert m.config_digest  # hashed from config parts
        assert m.python
        assert m.argv == ["x"]
        assert m.created_unix > 0

    def test_digest_tracks_config_content(self):
        a = obs.RunManifest.create("r", {"k": 1})
        b = obs.RunManifest.create("r", {"k": 2})
        assert a.config_digest != b.config_digest

    def test_write_and_read_back(self, tmp_path):
        m = obs.RunManifest.create("fig2", argv=["prog"])
        m.add_timing("profile", 1.25)
        path = m.write(tmp_path / "out")
        assert path.name == "fig2.manifest.json"
        doc = json.loads(path.read_text())
        assert doc["name"] == "fig2"
        assert doc["timings_s"] == {"profile": 1.25}
        assert "python" in doc and "platform" in doc

    def test_git_revision_in_repo(self):
        # the test suite runs inside the repo, so a hash must come back
        rev = obs.git_revision()
        assert rev is None or len(rev.split("-")[0]) == 40


def _trace_file(tmp_path, fmt):
    for _ in range(3):
        with obs.span("solve"):
            pass
    with obs.span("serialize"):
        pass
    path = tmp_path / f"trace.{fmt}"
    if fmt == "json":
        obs.write_chrome_trace(path, obs.tracer().spans())
    else:
        obs.write_jsonl(path, obs.tracer().spans())
    return path


class TestTraceCli:
    @pytest.mark.parametrize("fmt", ["json", "jsonl"])
    def test_summarizes_both_formats(self, tmp_path, capsys, fmt):
        path = _trace_file(tmp_path, fmt)
        assert cli.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out
        assert "solve" in out and "serialize" in out

    def test_sort_and_top(self, tmp_path, capsys):
        path = _trace_file(tmp_path, "json")
        assert cli.main([str(path), "--sort", "count", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "solve" in out  # count 3 ranks first
        assert "serialize" not in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert cli.main([str(tmp_path / "nope.json")]) == 2

    def test_empty_trace_exits_1(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}')
        assert cli.main([str(path)]) == 1

    def test_summarize_aggregates(self):
        rows = cli.summarize(
            [
                {"name": "a", "dur_us": 10.0, "cpu_us": 5.0},
                {"name": "a", "dur_us": 30.0, "cpu_us": 5.0},
                {"name": "b", "dur_us": 1.0, "cpu_us": 0.0},
            ]
        )
        by = {r["name"]: r for r in rows}
        assert by["a"]["count"] == 2
        assert by["a"]["total_us"] == 40.0
        assert by["a"]["mean_us"] == 20.0
        assert by["a"]["max_us"] == 30.0
