"""Span tracing: nesting across threads, processes and asyncio tasks."""

from __future__ import annotations

import asyncio
import contextvars
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro import obs
from repro.obs.tracing import Tracer


def _by_name():
    return {s.name: s for s in obs.tracer().spans()}


class TestBasicNesting:
    def test_nested_with_blocks_chain_parent_ids(self):
        with obs.span("outer"):
            with obs.span("middle"):
                with obs.span("inner"):
                    pass
        by = _by_name()
        assert by["outer"].parent_id is None
        assert by["middle"].parent_id == by["outer"].span_id
        assert by["inner"].parent_id == by["middle"].span_id

    def test_siblings_share_a_parent(self):
        with obs.span("parent"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        by = _by_name()
        assert by["a"].parent_id == by["parent"].span_id
        assert by["b"].parent_id == by["parent"].span_id

    def test_span_records_wall_and_cpu_time(self):
        with obs.span("work", attrs={"k": "v"}):
            sum(range(10_000))
        (rec,) = obs.tracer().find("work")
        assert rec.dur_us > 0
        assert rec.cpu_us >= 0
        assert rec.attrs["k"] == "v"

    def test_decorator_form(self):
        @obs.span("decorated", attrs={"fn": "f"})
        def f(x):
            return x + 1

        assert f(1) == 2
        (rec,) = obs.tracer().find("decorated")
        assert rec.attrs["fn"] == "f"

    def test_exception_is_recorded_and_propagates(self):
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        (rec,) = obs.tracer().find("failing")
        assert rec.attrs["error"] == "ValueError"

    def test_imperative_begin_end(self):
        s = obs.span("phase").begin()
        assert s.span_id is not None
        s.end()
        assert s.span_id is None
        assert len(obs.tracer().find("phase")) == 1

    def test_explicit_parent_override(self):
        with obs.span("a") as a:
            aid = a.span_id
        with obs.span("b", parent_id=aid):
            pass
        by = _by_name()
        assert by["b"].parent_id == aid


class TestDisabledAndSampling:
    def test_disabled_records_nothing(self):
        obs.configure(enabled=False)
        with obs.span("invisible"):
            pass
        assert len(obs.tracer()) == 0
        assert obs.current_span_id() is None

    def test_disabled_decorator_still_calls_through(self):
        obs.configure(enabled=False)

        @obs.span("invisible")
        def f():
            return 42

        assert f() == 42
        assert len(obs.tracer()) == 0

    def test_sampling_keeps_a_deterministic_stride(self):
        obs.configure(sample=0.25)
        for _ in range(20):
            with obs.span("sampled"):
                pass
        assert len(obs.tracer().find("sampled")) == 5

    def test_env_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "off")
        obs.reset()  # re-reads the environment
        assert not obs.enabled()
        with obs.span("invisible"):
            pass
        assert len(obs.tracer()) == 0

    def test_env_sample_fraction_form(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_SAMPLE", "1/5")
        obs.reset()
        assert obs.STATE.stride == 5


class TestRingBuffer:
    def test_ring_is_bounded_and_counts_drops(self):
        tracer = Tracer(capacity=16)
        for i in range(40):
            with obs.span(f"s{i}"):
                pass
        # record into the private tracer instead: use ingest
        tracer.ingest(obs.tracer().spans())
        assert len(tracer) == 16
        assert tracer.dropped == 24

    def test_drain_empties(self):
        with obs.span("x"):
            pass
        out = obs.tracer().drain()
        assert [s.name for s in out] == ["x"]
        assert len(obs.tracer()) == 0


class TestThreads:
    def test_carry_context_keeps_parent_across_thread_pool(self):
        def work():
            with obs.span("threaded"):
                pass

        with obs.span("submitter") as parent:
            parent_id = parent.span_id
            with ThreadPoolExecutor(max_workers=2) as pool:
                pool.submit(obs.carry_context(work)).result()
        by = _by_name()
        assert by["threaded"].parent_id == parent_id
        assert by["threaded"].tid != by["submitter"].tid

    def test_bare_submit_has_no_parent(self):
        def work():
            with obs.span("orphan"):
                pass

        with obs.span("submitter"):
            with ThreadPoolExecutor(max_workers=1) as pool:
                pool.submit(work).result()
        assert _by_name()["orphan"].parent_id is None

    def test_copy_context_run_also_works(self):
        def work():
            with obs.span("ctxrun"):
                pass

        with obs.span("submitter") as parent:
            parent_id = parent.span_id
            ctx = contextvars.copy_context()
            with ThreadPoolExecutor(max_workers=1) as pool:
                pool.submit(ctx.run, work).result()
        assert _by_name()["ctxrun"].parent_id == parent_id


def _process_worker(parent_id):
    """Module-level so it pickles into the pool worker."""
    obs.configure(enabled=True, sample=1.0)
    obs.tracer().clear()  # fork inherits the parent's ring
    with obs.span("proc_outer", parent_id=parent_id):
        with obs.span("proc_inner"):
            pass
    return obs.tracer().drain()


class TestProcesses:
    def test_worker_spans_merge_with_correct_parents(self):
        with obs.span("driver") as parent:
            parent_id = parent.span_id
            with ProcessPoolExecutor(max_workers=1) as pool:
                shipped = pool.submit(_process_worker, parent_id).result()
            obs.tracer().ingest(shipped)
        by = _by_name()
        assert by["proc_outer"].parent_id == parent_id
        assert by["proc_inner"].parent_id == by["proc_outer"].span_id
        # ids embed the pid, so merged ids cannot collide
        assert by["proc_outer"].pid != by["driver"].pid
        assert by["proc_outer"].span_id != by["driver"].span_id


class TestAsyncio:
    def test_tasks_inherit_the_creating_spans_context(self):
        async def child(name):
            with obs.span(name):
                await asyncio.sleep(0)

        async def main():
            with obs.span("request"):
                await asyncio.gather(child("task_a"), child("task_b"))

        asyncio.run(main())
        by = _by_name()
        assert by["task_a"].parent_id == by["request"].span_id
        assert by["task_b"].parent_id == by["request"].span_id

    def test_sibling_tasks_do_not_leak_context_to_each_other(self):
        async def child(name):
            with obs.span(name):
                await asyncio.sleep(0.001)

        async def main():
            await asyncio.gather(child("t1"), child("t2"))

        asyncio.run(main())
        by = _by_name()
        assert by["t1"].parent_id is None
        assert by["t2"].parent_id is None
