"""MetricsRegistry: instruments, labels, cardinality bound, exporters."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.registry import CardinalityError, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests")
        c.inc()
        c.inc(4)
        assert reg.get_value("requests") == 5.0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("requests").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("workers")
        g.set(8)
        g.set(4)
        g.add(1)
        assert reg.get_value("workers") == 5.0

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["mean"] == 2.5
        assert snap["p50"] == pytest.approx(3.0)  # nearest-rank

    def test_histogram_window_is_bounded(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", reservoir=8)
        for v in range(100):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100  # exact aggregates survive eviction
        assert snap["window"] == 8
        assert snap["p50"] >= 92.0  # window holds only the newest values

    def test_same_labels_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("hits", cache="sim") is reg.counter(
            "hits", cache="sim"
        )
        assert reg.counter("hits", cache="sim") is not reg.counter(
            "hits", cache="service"
        )

    def test_kind_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("x")


class TestCardinality:
    def test_cap_raises_clear_error(self):
        reg = MetricsRegistry(max_label_sets=4)
        for i in range(4):
            reg.counter("requests", path=f"/p{i}")
        with pytest.raises(CardinalityError, match="cap 4"):
            reg.counter("requests", path="/one-too-many")

    def test_cap_is_per_name(self):
        reg = MetricsRegistry(max_label_sets=2)
        reg.counter("a", k="1")
        reg.counter("a", k="2")
        # a different metric name starts its own budget
        reg.counter("b", k="1")
        reg.counter("b", k="2")
        with pytest.raises(CardinalityError):
            reg.counter("b", k="3")


class TestSnapshotAndExport:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("hits", cache="sim").inc(3)
        snap = reg.snapshot()
        assert snap["hits"]["kind"] == "counter"
        assert snap["hits"]["series"] == [
            {"labels": {"cache": "sim"}, "value": 3.0}
        ]

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits", cache="sim").inc(2)
        reg.gauge("parallel.workers").set(8)
        h = reg.histogram("service.latency_ms", path="/v1/partition")
        h.observe(1.5)
        text = obs.prometheus_text(reg)
        assert "# TYPE cache_hits counter" in text
        assert 'cache_hits{cache="sim"} 2.0' in text
        assert "# TYPE parallel_workers gauge" in text
        assert "parallel_workers 8.0" in text
        assert "# TYPE service_latency_ms summary" in text
        assert 'service_latency_ms_count{path="/v1/partition"} 1' in text
        assert 'quantile="0.5"' in text

    def test_prometheus_text_emits_min_and_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("service.latency_ms", path="/v1/partition")
        for v in (4.0, 1.5, 9.0):
            h.observe(v)
        text = obs.prometheus_text(reg)
        assert 'service_latency_ms_min{path="/v1/partition"} 1.5' in text
        assert 'service_latency_ms_max{path="/v1/partition"} 9.0' in text

    def test_global_registry_is_process_wide(self):
        obs.registry().counter("global.check").inc()
        assert obs.registry().get_value("global.check") == 1.0


class TestQuantileMath:
    """Pin the nearest-rank rule: index = round(q * (n - 1)).

    These values are load-bearing for dashboards: the exporter's
    ``quantile=`` series and the ``/metrics`` latency fields both ride
    on this rule, so a silent switch to linear interpolation (or an
    off-by-one in the rank) should fail loudly here.
    """

    def test_window_1_to_100_pins_p50_p90_p99(self):
        reg = MetricsRegistry()
        h = reg.histogram("pinned", reservoir=128)
        for v in range(1, 101):  # window = [1.0 .. 100.0]
            h.observe(float(v))
        snap = h.snapshot()
        # round(0.5 * 99) = 50 -> 51.0 (half-even), round(0.9 * 99) = 89
        # -> 90.0, round(0.99 * 99) = 98 -> 99.0
        assert snap["p50"] == 51.0
        assert snap["p90"] == 90.0
        assert snap["p99"] == 99.0

    def test_extremes_clamp_to_window_ends(self):
        reg = MetricsRegistry()
        h = reg.histogram("pinned")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.percentile(0.0) == 1.0
        assert h.percentile(1.0) == 3.0

    def test_single_observation_is_every_percentile(self):
        reg = MetricsRegistry()
        h = reg.histogram("pinned")
        h.observe(7.5)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert h.percentile(q) == 7.5

    def test_empty_window_reports_zero(self):
        reg = MetricsRegistry()
        assert reg.histogram("pinned").percentile(0.5) == 0.0
