"""MetricsRegistry under concurrency: threads and forked workers.

The registry's contract is *no lost increments*: every instrument
carries its own lock, so counters hammered from many threads land on
the exact total and histogram aggregates stay internally consistent.
The forkserver case pins the other half of the story -- instruments
hold ``threading.Lock`` objects, so a registry must be *created inside*
a worker process (never pickled into one), and a fresh start method
must produce the same exact totals and parseable Prometheus text.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.obs.exporters import prometheus_text
from repro.obs.registry import MetricsRegistry

N_THREADS = 8
N_PER_THREAD = 4000


def _hammer(reg: MetricsRegistry, n: int) -> None:
    """Per-thread body: get-or-create then update all three kinds."""
    counter = reg.counter("conc.requests", path="/x")
    gauge = reg.gauge("conc.level")
    hist = reg.histogram("conc.latency_ms", reservoir=256)
    for i in range(n):
        counter.inc()
        gauge.add(1.0)
        hist.observe(float(i % 7))


def _run_threads(reg: MetricsRegistry, n_threads: int, n: int) -> None:
    threads = [
        threading.Thread(target=_hammer, args=(reg, n))
        for _ in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def _forkserver_report(n: int) -> tuple[float, int, str]:
    """Worker entry point (module top level so forkserver can import it)."""
    reg = MetricsRegistry()
    _run_threads(reg, N_THREADS, n)
    total = reg.get_value("conc.requests", path="/x")
    hist = reg.histogram("conc.latency_ms", reservoir=256)
    return float(total), hist.snapshot()["count"], prometheus_text(reg)


class TestThreadSafety:
    def test_no_lost_increments_across_threads(self):
        reg = MetricsRegistry()
        _run_threads(reg, N_THREADS, N_PER_THREAD)
        expected = float(N_THREADS * N_PER_THREAD)
        assert reg.get_value("conc.requests", path="/x") == expected
        assert reg.get_value("conc.level") == expected
        snap = reg.histogram("conc.latency_ms", reservoir=256).snapshot()
        assert snap["count"] == N_THREADS * N_PER_THREAD
        assert snap["min"] == 0.0
        assert snap["max"] == 6.0

    def test_concurrent_get_or_create_yields_one_instrument(self):
        reg = MetricsRegistry()
        found = []
        barrier = threading.Barrier(N_THREADS)

        def create():
            barrier.wait()
            found.append(reg.counter("conc.created", path="/race"))

        threads = [threading.Thread(target=create) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is found[0] for c in found)

    def test_export_is_stable_while_threads_write(self):
        """Exporting mid-hammer never crashes or emits unparseable lines."""
        reg = MetricsRegistry()
        writers = [
            threading.Thread(target=_hammer, args=(reg, N_PER_THREAD))
            for _ in range(4)
        ]
        for t in writers:
            t.start()
        try:
            for _ in range(50):
                text = prometheus_text(reg)
                for line in text.splitlines():
                    if line.startswith("#") or not line:
                        continue
                    # every sample line ends in a parseable float
                    float(line.rsplit(" ", 1)[1])
        finally:
            for t in writers:
                t.join()
        # after the writers drain, the export shows the exact total
        final = prometheus_text(reg)
        assert f'conc_requests{{path="/x"}} {4 * N_PER_THREAD}.0' in final


class TestForkserverWorker:
    def test_worker_process_registry_is_consistent(self):
        try:
            ctx = multiprocessing.get_context("forkserver")
        except ValueError:  # platform without forkserver
            pytest.skip("forkserver start method unavailable")
        with ctx.Pool(processes=1) as pool:
            total, hist_count, text = pool.apply(
                _forkserver_report, (N_PER_THREAD // 4,)
            )
        expected = N_THREADS * (N_PER_THREAD // 4)
        assert total == float(expected)
        assert hist_count == expected
        assert f'conc_requests{{path="/x"}} {expected}.0' in text
        assert "# TYPE conc_latency_ms summary" in text
        assert "conc_latency_ms_min" in text
        assert "conc_latency_ms_max" in text
