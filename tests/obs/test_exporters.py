"""Exporters: Chrome trace-event JSON and span JSON-lines."""

from __future__ import annotations

import json

from repro import obs


def _make_spans(n=3):
    for i in range(n):
        with obs.span(f"phase{i}", attrs={"i": i}):
            pass
    return obs.tracer().spans()


class TestChromeTrace:
    def test_structure_is_trace_event_format(self):
        spans = _make_spans()
        doc = obs.chrome_trace(spans)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3
        for e in xs:
            # required complete-event fields
            assert {"name", "ph", "ts", "dur", "pid", "tid", "args"} <= set(e)
            assert e["args"]["span_id"] is not None
        # per-pid process_name metadata for Perfetto's process rail
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert metas and metas[0]["args"]["name"].startswith("repro:")

    def test_parent_ids_travel_in_args(self):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        doc = obs.chrome_trace(obs.tracer().spans())
        by = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert by["inner"]["args"]["parent_id"] == by["outer"]["args"]["span_id"]

    def test_extra_events_merge_into_the_same_file(self):
        extra = [{"name": "mem.request", "ph": "i", "ts": 1.0, "pid": 1,
                  "tid": 0, "s": "t", "args": {}}]
        doc = obs.chrome_trace(_make_spans(1), extra_events=extra)
        assert any(e["ph"] == "i" for e in doc["traceEvents"])

    def test_write_creates_parent_dirs_and_loads_back(self, tmp_path):
        spans = _make_spans()
        path = tmp_path / "nested" / "run.trace.json"
        obs.write_chrome_trace(path, spans)
        doc = json.loads(path.read_text())
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 3


class TestJsonl:
    def test_round_trip(self, tmp_path):
        spans = _make_spans()
        path = tmp_path / "spans.jsonl"
        obs.write_jsonl(path, spans)
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert [o["name"] for o in lines] == [s.name for s in spans]
        assert lines[0]["attrs"] == {"i": 0}
        assert isinstance(lines[0]["span_id"], int)

    def test_empty_input_is_empty_output(self):
        assert obs.spans_to_jsonl([]) == ""
