"""ResultCache: LRU behaviour, disk promotion, and stats accounting."""

from __future__ import annotations

import pytest

from repro.service.cache import ResultCache
from repro.util.cache import SimCache


class TestResultCacheLRU:
    def test_round_trip_and_counters(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", {"v": 1})
        assert cache.get("a") == {"v": 1}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # refresh a; b is now the LRU entry
        cache.put("c", {"v": 3})
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}
        assert len(cache) == 2

    def test_overwrite_does_not_grow(self):
        cache = ResultCache(capacity=3)
        cache.put("a", {"v": 1})
        cache.put("a", {"v": 2})
        assert len(cache) == 1
        assert cache.get("a") == {"v": 2}

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_snapshot_shape(self):
        cache = ResultCache(capacity=8)
        cache.put("a", {"v": 1})
        cache.get("a")
        cache.get("b")
        snap = cache.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["puts"] == 1
        assert snap["size"] == 1
        assert snap["capacity"] == 8
        assert "disk" not in snap


class TestResultCacheDiskLayer:
    def test_disk_hit_promotes_to_memory(self, tmp_path):
        disk = SimCache(tmp_path)
        warm = ResultCache(capacity=4, disk=disk)
        warm.put("k", {"v": 42})

        # a fresh process with an empty memory layer finds it on disk
        cold = ResultCache(capacity=4, disk=SimCache(tmp_path))
        assert cold.get("k") == {"v": 42}
        assert cold.stats.hits == 1
        # promoted: second lookup hits memory even with disk gone
        cold.disk = None
        assert cold.get("k") == {"v": 42}

    def test_snapshot_includes_disk_stats(self, tmp_path):
        cache = ResultCache(capacity=4, disk=SimCache(tmp_path))
        cache.put("k", {"v": 1})
        snap = cache.snapshot()
        assert snap["disk"]["puts"] == 1

    def test_memory_eviction_falls_back_to_disk(self, tmp_path):
        cache = ResultCache(capacity=1, disk=SimCache(tmp_path))
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})  # evicts a from memory, not from disk
        assert cache.get("a") == {"v": 1}
