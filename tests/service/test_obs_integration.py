"""Service <-> repro.obs integration.

The acceptance bar: one service request produces a trace with at least
four nested spans (request -> queue_wait -> solve, plus request ->
serialize) exportable to a Perfetto-loadable Chrome trace JSON, while
``/metrics`` keeps its original field names.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.service import AsyncServiceClient, PartitionService, ServiceConfig
from repro.service.metrics import EndpointStats

APC = [0.004, 0.007, 0.002]
API = [0.03, 0.04, 0.01]


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs.reset()
    obs.configure(enabled=True, sample=1.0)
    yield
    obs.reset()


def run_with_service(coro_factory, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("max_wait_ms", 1.0)

    async def main():
        service = PartitionService(ServiceConfig(**config_kwargs))
        await service.start()
        try:
            async with AsyncServiceClient(port=service.port) as client:
                return await coro_factory(service, client)
        finally:
            await service.stop()

    return asyncio.run(main())


# ----------------------------------------------------------------------
# the acceptance criterion: one request, >= 4 nested spans
# ----------------------------------------------------------------------
def test_single_request_traces_four_nested_spans(tmp_path):
    async def scenario(service, client):
        return await client.partition(APC, 0.01, api=API)

    run_with_service(scenario)
    spans = obs.tracer().spans()
    by = {}
    for s in spans:
        by.setdefault(s.name, s)

    request = by["service.request"]
    queue_wait = by["service.queue_wait"]
    solve = by["service.solve"]
    serialize = by["service.serialize"]

    # request -> queue_wait -> solve; request -> serialize
    assert request.parent_id is None
    assert queue_wait.parent_id == request.span_id
    assert solve.parent_id == queue_wait.span_id
    assert serialize.parent_id == request.span_id
    assert solve.attrs["batched"] is True

    # ...and the chain exports to a loadable Chrome trace file
    path = tmp_path / "service.trace.json"
    obs.write_chrome_trace(path, spans)
    doc = json.loads(path.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {
        "service.request",
        "service.queue_wait",
        "service.solve",
        "service.serialize",
    } <= names


def test_unbatched_solve_nests_directly_under_request():
    async def scenario(service, client):
        return await client.partition(APC, 0.01, api=API)

    run_with_service(scenario, batching=False)
    by = {s.name: s for s in obs.tracer().spans()}
    assert "service.queue_wait" not in by
    assert by["service.solve"].parent_id == by["service.request"].span_id
    assert by["service.solve"].attrs["batched"] is False


# ----------------------------------------------------------------------
# /metrics stays backward compatible and gains the registry view
# ----------------------------------------------------------------------
def test_metrics_keeps_field_names_and_adds_obs_section():
    async def scenario(service, client):
        await client.partition(APC, 0.01, api=API)
        return await client.metrics()

    body = run_with_service(scenario)
    # original shape untouched
    endpoint = body["endpoints"]["/v1/partition"]
    assert endpoint["requests"] == 1
    for key in ("p50", "p90", "p99", "mean", "max", "window"):
        assert key in endpoint["latency_ms"]
    assert set(body["cache"]) >= {"hits", "misses", "puts"}
    assert "batches" in body["batching"]
    # additive registry snapshot
    reqs = body["obs"]["service.requests"]
    assert reqs["kind"] == "counter"
    assert reqs["series"][0]["labels"] == {"path": "/v1/partition"}
    assert reqs["series"][0]["value"] == 1.0


def test_registry_mirrors_service_counters():
    async def scenario(service, client):
        await client.partition(APC, 0.01, api=API)
        await client.partition(APC, 0.01, api=API)
        return None

    run_with_service(scenario)
    reg = obs.registry()
    assert reg.get_value("service.requests", path="/v1/partition") == 2.0
    assert reg.get_value("cache.hits", cache="service") == 1.0
    assert reg.get_value("cache.misses", cache="service") == 1.0


def test_path_labels_bucket_as_other_past_cap():
    metrics_registry = obs.MetricsRegistry()
    from repro.service.metrics import ServiceMetrics

    m = ServiceMetrics(registry=metrics_registry)
    for i in range(40):
        m.observe_request(f"/p{i}", 1.0)
    # exact per-path stats keep every path ...
    assert len(m.endpoints) == 40
    # ... the registry label space stays bounded
    labels = {
        labels_["path"]
        for name, _, labels_, _ in metrics_registry.series()
        if name == "service.requests"
    }
    assert "other" in labels
    assert metrics_registry.get_value("service.requests", path="other") == 24.0


# ----------------------------------------------------------------------
# satellite: timeout implies an error exactly once
# ----------------------------------------------------------------------
class TestEndpointStatsTimeout:
    def test_timeout_alone_counts_one_error(self):
        stats = EndpointStats()
        stats.observe(5.0, timeout=True)
        assert stats.timeouts == 1
        assert stats.errors == 1

    def test_timeout_plus_error_flag_still_counts_once(self):
        stats = EndpointStats()
        stats.observe(5.0, error=True, timeout=True)
        assert stats.timeouts == 1
        assert stats.errors == 1

    def test_plain_error_does_not_count_a_timeout(self):
        stats = EndpointStats()
        stats.observe(5.0, error=True)
        assert stats.timeouts == 0
        assert stats.errors == 1

    def test_success_counts_neither(self):
        stats = EndpointStats()
        stats.observe(5.0)
        assert stats.requests == 1
        assert stats.errors == 0
        assert stats.timeouts == 0
