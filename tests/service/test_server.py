"""End-to-end service tests over real sockets (ephemeral ports)."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core import AppProfile, Workload, scheme_by_name
from repro.service import (
    AsyncServiceClient,
    PartitionService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)

APC = [0.004, 0.007, 0.002]
API = [0.03, 0.04, 0.01]


def run_with_service(coro_factory, **config_kwargs):
    """Start a service on a free port, run the coroutine, tear down."""
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("max_wait_ms", 1.0)

    async def main():
        service = PartitionService(ServiceConfig(**config_kwargs))
        await service.start()
        try:
            async with AsyncServiceClient(port=service.port) as client:
                return await coro_factory(service, client)
        finally:
            await service.stop()

    return asyncio.run(main())


# ----------------------------------------------------------------------
# plumbing endpoints
# ----------------------------------------------------------------------
def test_healthz_reports_ok():
    async def scenario(service, client):
        return await client.healthz()

    body = run_with_service(scenario)
    assert body["status"] == "ok"
    assert body["uptime_s"] >= 0
    assert body["batching"] is True


def test_metrics_schema_and_counters():
    async def scenario(service, client):
        await client.partition(APC, 0.01, api=API)
        await client.partition(APC, 0.01, api=API)  # cache hit
        with pytest.raises(ServiceError):
            await client.partition(APC, -1.0)
        return await client.metrics()

    body = run_with_service(scenario)
    endpoint = body["endpoints"]["/v1/partition"]
    assert endpoint["requests"] == 3
    assert endpoint["errors"] == 1
    for key in ("p50", "p90", "p99", "mean", "max", "window"):
        assert key in endpoint["latency_ms"]
    # invalid request fails validation before the cache is consulted,
    # so only the two good requests touch it: one miss+put, one hit
    assert body["cache"]["hits"] == 1
    assert body["cache"]["misses"] == 1
    assert body["cache"]["puts"] == 1
    assert body["batching"]["batches"] >= 1


# ----------------------------------------------------------------------
# partition endpoint
# ----------------------------------------------------------------------
def test_partition_matches_scalar_solver_exactly():
    async def scenario(service, client):
        return await client.partition(APC, 0.01, scheme="sqrt", api=API)

    body = run_with_service(scenario)
    workload = Workload.of(
        "w", [AppProfile(f"a{i}", api=API[i], apc_alone=APC[i]) for i in range(3)]
    )
    expected = scheme_by_name("sqrt").allocate(workload, 0.01)
    assert body["apc_shared"] == expected.tolist()
    assert body["metrics"].keys() == {"hsp", "minf", "wsp", "ipcsum"}
    assert body["utilized_bandwidth"] == pytest.approx(0.01)


def test_batched_and_unbatched_modes_agree_exactly():
    async def scenario(service, client):
        outs = await asyncio.gather(
            *[
                client.partition(APC, 0.005 + 0.001 * i, api=API, scheme=scheme)
                for i in range(4)
                for scheme in ("sqrt", "prop", "prio_apc", "prio_api")
            ]
        )
        return outs

    batched = run_with_service(scenario, batching=True, cache=False)
    unbatched = run_with_service(scenario, batching=False, cache=False)
    for a, b in zip(batched, unbatched):
        assert a["apc_shared"] == b["apc_shared"]
        assert a["metrics"] == b["metrics"]


def test_concurrent_requests_coalesce():
    async def scenario(service, client):
        clients = [AsyncServiceClient(port=service.port) for _ in range(8)]
        try:
            outs = await asyncio.gather(
                *[
                    c.partition([0.004 + 0.0001 * i, 0.007, 0.002], 0.01)
                    for i, c in enumerate(clients)
                ]
            )
        finally:
            for c in clients:
                await c.aclose()
        return outs, await client.metrics()

    outs, metrics = run_with_service(scenario, max_wait_ms=50.0)
    assert max(o["batch_size"] for o in outs) >= 2
    assert metrics["batching"]["max_batch_size"] >= 2


def test_cache_hit_marks_response_and_skips_solve():
    async def scenario(service, client):
        first = await client.partition(APC, 0.01, api=API)
        second = await client.partition(APC, 0.01, api=API)
        return first, second

    first, second = run_with_service(scenario)
    assert first["cached"] is False
    assert second["cached"] is True
    assert second["apc_shared"] == first["apc_shared"]
    assert second["metrics"] == first["metrics"]


def test_batch_endpoint_mixed_schemes_and_caching():
    requests = [
        {"scheme": s, "apc_alone": APC, "api": API, "bandwidth": 0.01}
        for s in ("sqrt", "prop", "prio_apc", "sqrt")
    ]

    async def scenario(service, client):
        results = await client.partition_batch(requests)
        again = await client.partition_batch(requests)
        return results, again

    results, again = run_with_service(scenario)
    assert len(results) == 4
    assert results[0]["apc_shared"] == results[3]["apc_shared"]
    # identical requests in one call: first solved, duplicate served
    # from cache (the solve populates it before the duplicate is seen)
    # -- either way the values agree and the second call is all-cached
    assert all(r["cached"] for r in again)
    workload = Workload.of(
        "w", [AppProfile(f"a{i}", api=API[i], apc_alone=APC[i]) for i in range(3)]
    )
    for scheme, result in zip(("sqrt", "prop", "prio_apc"), results):
        expected = scheme_by_name(scheme).allocate(workload, 0.01)
        assert result["apc_shared"] == expected.tolist()


def test_batch_endpoint_respects_request_cap():
    async def scenario(service, client):
        with pytest.raises(ServiceError) as exc_info:
            await client.partition_batch(
                [{"apc_alone": APC, "bandwidth": 0.01}] * 5
            )
        return exc_info.value

    error = run_with_service(scenario, max_requests_per_call=4)
    assert error.status == 400


# ----------------------------------------------------------------------
# qos endpoint
# ----------------------------------------------------------------------
def test_qos_endpoint_plans_and_rejects_infeasible():
    async def scenario(service, client):
        plan = await client.qos(APC, API, 0.01, [(0, 0.1)])
        with pytest.raises(ServiceError) as exc_info:
            await client.qos(APC, API, 0.001, [(0, 0.13)])
        return plan, exc_info.value

    plan, error = run_with_service(scenario)
    assert plan["qos_apps"] == [0]
    assert plan["b_qos"] == pytest.approx(0.1 * API[0])
    assert plan["b_best_effort"] == pytest.approx(0.01 - 0.1 * API[0])
    assert sum(plan["apc_shared"]) == pytest.approx(0.01)
    assert error.status == 422
    assert error.error_type == "InfeasibleError"


# ----------------------------------------------------------------------
# transport-level behaviour
# ----------------------------------------------------------------------
def test_unknown_route_and_wrong_method():
    async def scenario(service, client):
        try:
            await client._request("GET", "/nope")
        except ServiceError as exc:
            not_found = exc
        try:
            await client._request("GET", "/v1/partition")
        except ServiceError as exc:
            wrong_method = exc
        return not_found, wrong_method

    not_found, wrong_method = run_with_service(scenario)
    assert not_found.status == 404
    assert wrong_method.status == 405


def test_malformed_json_is_400():
    async def scenario(service, client):
        status, payload = await service.handle(
            "POST", "/v1/partition", b"{not json"
        )
        return status, payload

    status, payload = run_with_service(scenario)
    assert status == 400
    assert payload["error"]["type"] == "ConfigurationError"


def test_oversized_body_is_413():
    async def scenario(service, client):
        huge = [0.001] * 100000  # serializes way past max_body_bytes
        with pytest.raises((ServiceError, ConnectionError, asyncio.IncompleteReadError)):
            await client.partition(huge, 0.01)
        return True

    assert run_with_service(scenario, max_body_bytes=2048)


def test_request_timeout_maps_to_504():
    async def scenario(service, client):
        async def stall(method, path, body):
            await asyncio.sleep(5.0)
            return 200, {}

        service.handle = stall
        try:
            await client._request("GET", "/healthz")
        except ServiceError as exc:
            return exc

    error = run_with_service(scenario, request_timeout_s=0.1)
    assert error.status == 504
    assert error.error_type == "Timeout"


def test_sync_client_roundtrip():
    async def scenario(service, client):
        port = service.port
        result = {}

        def blocking():
            with ServiceClient(port=port) as sync_client:
                result["partition"] = sync_client.partition(APC, 0.01, api=API)
                result["health"] = sync_client.healthz()
                result["batch"] = sync_client.partition_batch(
                    [{"apc_alone": APC, "bandwidth": 0.01}]
                )
                result["qos"] = sync_client.qos(APC, API, 0.01, [(1, 0.05)])

        await asyncio.get_running_loop().run_in_executor(None, blocking)
        return result

    result = run_with_service(scenario)
    assert result["health"]["status"] == "ok"
    assert len(result["partition"]["apc_shared"]) == 3
    assert len(result["batch"]) == 1
    assert result["qos"]["qos_apps"] == [1]


def test_graceful_stop_then_connection_refused():
    async def main():
        service = PartitionService(ServiceConfig(port=0))
        await service.start()
        port = service.port
        async with AsyncServiceClient(port=port) as client:
            await client.healthz()
        await service.stop()
        with pytest.raises((ConnectionError, OSError)):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.close()
        return True

    assert asyncio.run(main())


def test_responses_are_json_floats_roundtrippable():
    """Shares survive a JSON round trip losslessly (repr-exact floats)."""

    async def scenario(service, client):
        return await client.partition(APC, 0.01, api=API)

    body = run_with_service(scenario)
    assert json.loads(json.dumps(body)) == body
    assert all(isinstance(x, float) for x in body["apc_shared"])
    assert np.isfinite(body["apc_shared"]).all()
