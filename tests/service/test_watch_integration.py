"""End-to-end watch layer: SLOs, drift drill, debug surface, repro-top.

The drill at the heart of this file is ISSUE 8's acceptance scenario:
serve a *perturbed* surrogate artifact (passing card, wrong
coefficients) under shadow-sampled load, watch the online MAPE breach
the gate, and verify the service flips ``degraded`` and auto-routes
surrogate solves to the sim path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import PartitionService, ServiceConfig, ServiceError
from repro.service.metrics import EndpointStats, ServiceMetrics
from repro.surrogate.artifact import SurrogateModel, save_model
from repro.surrogate.fit import DEFAULT_TERMS, QualityThresholds, SchemeFit

from tests.service.test_server import run_with_service
from tests.surrogate.conftest import FAKE_DIGEST, make_model

APC = [0.004, 0.007, 0.002]
API = [0.03, 0.04, 0.01]


def make_drifted_model(schemes: tuple[str, ...] = ("sqrt",)) -> SurrogateModel:
    """A loadable artifact that predicts *half* the true surface.

    The stored card still claims fit-time quality (r2=0.999, mape=0.01)
    -- artifact gating trusts the card, which is exactly the blind spot
    the online shadow monitor exists to close.
    """
    coef = tuple(0.5 if term == "min_xg" else 0.0 for term in DEFAULT_TERMS)
    fits = {
        s: SchemeFit(
            scheme=s, terms=DEFAULT_TERMS, coef=coef, r2=0.999, mape=0.01,
            n_train=96, n_test=24, ridge=False,
        )
        for s in schemes
    }
    return SurrogateModel(
        sweep_digest=FAKE_DIGEST,
        fits=fits,
        thresholds=QualityThresholds(),
        defaults={"row_locality": 0.6, "bank_frac": 0.9},
        settings={"preset": "test"},
    )


# ----------------------------------------------------------------------
# satellite: shed accounting counts each flag exactly once
# ----------------------------------------------------------------------
class TestShedAccounting:
    def test_shed_alone(self):
        stats = EndpointStats()
        stats.observe(1.0, shed=True)
        assert (stats.requests, stats.sheds, stats.errors) == (1, 1, 1)
        assert stats.timeouts == 0

    def test_all_flags_count_once_each(self):
        stats = EndpointStats()
        stats.observe(1.0, error=True, timeout=True, shed=True)
        assert stats.requests == 1
        assert stats.errors == 1  # regression: never double-counted
        assert stats.timeouts == 1
        assert stats.sheds == 1
        assert stats.snapshot()["sheds"] == 1

    def test_registry_mirrors_sheds_once(self):
        from repro import obs

        m = ServiceMetrics(registry=obs.MetricsRegistry())
        m.observe_request("/v1/stream/open", 1.0, shed=True)
        reg = m.registry
        assert reg.get_value("service.sheds", path="/v1/stream/open") == 1.0
        assert reg.get_value("service.errors", path="/v1/stream/open") == 1.0
        assert reg.get_value("service.requests", path="/v1/stream/open") == 1.0


# ----------------------------------------------------------------------
# satellite: process / build info on /metrics
# ----------------------------------------------------------------------
def test_metrics_exposes_process_and_build_info():
    async def scenario(service, client):
        return await client.metrics()

    body = run_with_service(scenario)
    process = body["process"]
    assert process["pid"] > 0
    assert process["start_time_unix"] > 0
    assert process["uptime_s"] >= 0
    assert process["version"]  # from repro.__version__
    assert "revision" in process
    assert len(process["config_digest"]) == 16


def test_build_info_is_a_prometheus_info_gauge():
    from repro import obs

    m = ServiceMetrics(registry=obs.MetricsRegistry())
    m.set_build_info(version="1.2.3", revision="abc", config_digest="d1")
    text = obs.prometheus_text(m.registry)
    assert 'process_build_info{config_digest="d1",revision="abc",version="1.2.3"} 1.0' in text
    assert "process_start_time_unix" in text


# ----------------------------------------------------------------------
# /metrics watch sections + debug surface
# ----------------------------------------------------------------------
def test_metrics_gains_watch_sections():
    async def scenario(service, client):
        await client.partition(APC, 0.01, api=API)
        return await client.metrics()

    body = run_with_service(scenario)
    assert body["alerts"] == {"paging": 0, "warning": 0, "page": [], "warn": []}
    names = {s["name"] for s in body["slo"]}
    assert "partition.availability" in names
    assert body["drift"]["degraded"] is False
    assert body["drift"]["shadow"]["rate"] == 0.05
    assert body["controller"]["sessions"] == 0


def test_debug_recent_records_slow_requests():
    async def scenario(service, client):
        await client.partition(APC, 0.01, api=API)
        full = await client.debug("recent")
        limited = await client.debug("recent", limit=1, kind="slow")
        return full, limited

    # a sub-microsecond threshold flags every request as slow
    full, limited = run_with_service(scenario, slow_request_ms=1e-6)
    assert full["counts"]["slow"] >= 1
    rec = full["records"][0]
    assert rec["kind"] == "slow"
    assert rec["path"] == "/v1/partition"
    assert rec["detail"]["threshold_ms"] == 1e-6
    assert len(limited["records"]) == 1


def test_debug_recent_records_errors():
    async def scenario(service, client):
        with pytest.raises(ServiceError):
            await client._request("POST", "/v1/stream/nope/counters",
                                  {"window_cycles": 1.0, "accesses": [1]})
        return await client.debug("recent")

    body = run_with_service(scenario)
    # 404 on an expired session is client error, not an anomaly record;
    # the ring stays quiet unless something is actually wrong
    assert body["counts"]["error"] == 0


def test_debug_slo_and_drift_sections():
    async def scenario(service, client):
        await client.partition(APC, 0.01, api=API)
        return await client.debug("slo"), await client.debug("drift")

    slo, drift = run_with_service(scenario)
    assert set(slo) == {"alerts", "slo"}
    assert drift["shadow"]["calls"] == 0  # analytic solves never shadow
    assert drift["auto_fallback"] is True


def test_debug_unknown_section_is_404():
    async def scenario(service, client):
        with pytest.raises(ServiceError) as err:
            await client.debug("mystery")
        return err.value.status

    assert run_with_service(scenario) == 404


def test_debug_bad_limit_is_400():
    async def scenario(service, client):
        with pytest.raises(ServiceError) as err:
            await client.debug("recent", limit="soon")
        return err.value.status

    assert run_with_service(scenario) == 400


def test_debug_is_get_only():
    async def scenario(service, client):
        with pytest.raises(ServiceError) as err:
            await client._request("POST", "/v1/debug/recent", {})
        return err.value.status

    assert run_with_service(scenario) == 405


# ----------------------------------------------------------------------
# the drift drill
# ----------------------------------------------------------------------
def _drill_requests(client, n=8):
    """Contended surrogate solves (sim is within ~2.5% of min(x, g))."""
    rng = np.random.default_rng(5)

    async def run():
        first = None
        for _ in range(n):
            apc = (np.array(APC) * rng.uniform(0.9, 1.1, size=3)).tolist()
            body = await client.partition(
                apc, 0.01, scheme="sqrt", profile="surrogate"
            )
            if first is None:
                first = body
        return first

    return run()


def test_drift_drill_perturbed_artifact_degrades_and_falls_back(tmp_path):
    save_model(make_drifted_model(("sqrt",)), tmp_path)

    async def scenario(service, client):
        before = await _drill_requests(client)
        await service.drain_shadows()
        drift = await client.debug("drift")
        after = await client.partition(
            APC, 0.01, scheme="sqrt", profile="surrogate"
        )
        metrics = await client.metrics()
        recent = await client.debug("recent", kind="fallback")
        return before, metrics, drift, after, recent

    before, metrics, drift, after, recent = run_with_service(
        scenario,
        surrogate_dir=str(tmp_path),
        cache=False,
        shadow_rate=1.0,
        shadow_max_inflight=8,
        drift_min_samples=6,
    )
    # the perturbed artifact served (its card passes the load gate) ...
    assert before["source"] == "surrogate"
    # ... but shadow sampling caught the ~50% MAPE
    assert metrics["drift"]["degraded"] is True
    assert drift["schemes"]["sqrt"]["breached"] is True
    assert drift["schemes"]["sqrt"]["mape"] > 0.3
    # each completed shadow feeds one (sim, surrogate) pair per app, and
    # once degraded the remaining drill requests ride the sim (never
    # shadowed) -- so assert on the scheme's window, not the sampler
    assert drift["schemes"]["sqrt"]["n"] >= 6
    # degraded + auto_fallback: the next surrogate request rides the sim
    assert after["source"] == "sim"
    assert "drift" in metrics["surrogate"]["last_fallback_reason"]
    # ... and the auto-fallback leaves a flight-recorder trail
    assert recent["records"], "auto-fallback must leave a flight record"
    assert "drift" in str(recent["records"][0]["detail"])


def test_healthy_artifact_stays_healthy_under_shadowing(tmp_path):
    save_model(make_model(("sqrt",)), tmp_path)

    async def scenario(service, client):
        await _drill_requests(client)
        await service.drain_shadows()
        metrics = await client.metrics()
        again = await client.partition(
            APC, 0.01, scheme="sqrt", profile="surrogate"
        )
        return metrics, again

    metrics, again = run_with_service(
        scenario,
        surrogate_dir=str(tmp_path),
        cache=False,
        shadow_rate=1.0,
        shadow_max_inflight=8,
        drift_min_samples=6,
    )
    drift = metrics["drift"]
    assert drift["shadow"]["sampled"] >= 6
    assert drift["degraded"] is False
    assert drift["schemes"]["sqrt"]["mape"] < 0.05
    assert again["source"] == "surrogate"  # no fallback


def test_auto_fallback_can_be_disabled(tmp_path):
    save_model(make_drifted_model(("sqrt",)), tmp_path)

    async def scenario(service, client):
        await _drill_requests(client)
        await service.drain_shadows()
        metrics = await client.metrics()
        after = await client.partition(
            APC, 0.01, scheme="sqrt", profile="surrogate"
        )
        return metrics, after

    metrics, after = run_with_service(
        scenario,
        surrogate_dir=str(tmp_path),
        cache=False,
        shadow_rate=1.0,
        shadow_max_inflight=8,
        drift_min_samples=6,
        drift_auto_fallback=False,
    )
    assert metrics["drift"]["degraded"] is True  # still detected ...
    assert after["source"] == "surrogate"  # ... but routing untouched


def test_shadow_rate_zero_disables_sampling(tmp_path):
    save_model(make_model(("sqrt",)), tmp_path)

    async def scenario(service, client):
        await _drill_requests(client)
        await service.drain_shadows()
        return await client.metrics()

    metrics = run_with_service(
        scenario, surrogate_dir=str(tmp_path), cache=False, shadow_rate=0.0
    )
    assert metrics["drift"]["shadow"]["sampled"] == 0


# ----------------------------------------------------------------------
# stream sessions feed the controller pane
# ----------------------------------------------------------------------
def test_stream_epochs_populate_controller_health():
    async def scenario(service, client):
        opened = await client.stream_open(API, 0.01, apc_alone=APC)
        sid = opened["session"]
        for k in range(3):
            accesses = [4000 + 500 * k, 7000, 2000]
            await client.stream_push(sid, 1_000_000.0, accesses)
        metrics = await client.metrics()
        info = await client.stream_info(sid)
        return metrics, info

    metrics, info = run_with_service(scenario)
    ctl = metrics["controller"]
    assert ctl["sessions"] == 1
    assert ctl["epochs"] == 3
    assert ctl["resolve_ms_max"] >= 0.0
    assert info["health"]["epochs"] == 3


# ----------------------------------------------------------------------
# config knobs and CLI flags
# ----------------------------------------------------------------------
class TestConfigPlumbing:
    def test_shadow_rate_env_fallback(self, monkeypatch):
        from repro.service.watch import resolve_shadow_rate

        monkeypatch.delenv("REPRO_SHADOW_RATE", raising=False)
        assert resolve_shadow_rate(None) == 0.05
        assert resolve_shadow_rate(0.25) == 0.25
        monkeypatch.setenv("REPRO_SHADOW_RATE", "0.5")
        assert resolve_shadow_rate(None) == 0.5
        assert resolve_shadow_rate(0.25) == 0.25  # config beats env
        monkeypatch.setenv("REPRO_SHADOW_RATE", "7")
        assert resolve_shadow_rate(None) == 1.0  # clamped
        monkeypatch.setenv("REPRO_SHADOW_RATE", "nope")
        assert resolve_shadow_rate(None) == 0.05  # unparseable -> default

    def test_config_validates_watch_knobs(self):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ServiceConfig(shadow_rate=1.5)
        with pytest.raises(ConfigurationError):
            ServiceConfig(drift_max_mape=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(recent_capacity=0)

    def test_cli_flags_reach_the_config(self):
        from repro.service.__main__ import build_parser, config_from_args

        args = build_parser().parse_args(
            ["--shadow-rate", "0.2", "--slo", "/tmp/slo.json",
             "--no-auto-fallback"]
        )
        config = config_from_args(args)
        assert config.shadow_rate == 0.2
        assert config.slo_path == "/tmp/slo.json"
        assert config.drift_auto_fallback is False

    def test_slo_path_config_loads_custom_objectives(self, tmp_path):
        import json

        slo_file = tmp_path / "slo.json"
        slo_file.write_text(json.dumps(
            [{"name": "only.one", "signal": "availability",
              "selector": "/v1/partition"}]
        ))

        async def scenario(service, client):
            return await client.metrics()

        body = run_with_service(scenario, slo_path=str(slo_file))
        assert [s["name"] for s in body["slo"]] == ["only.one"]


# ----------------------------------------------------------------------
# repro-top rendering
# ----------------------------------------------------------------------
def test_repro_top_renders_a_live_snapshot():
    from repro.watch.top import render_lines

    async def scenario(service, client):
        await client.partition(APC, 0.01, api=API)
        return await client.metrics(), await client.debug("recent")

    metrics, recent = run_with_service(scenario)
    lines = render_lines({"metrics": metrics, "recent": recent})
    text = "\n".join(lines)
    assert text.startswith("repro-top |")
    assert "alerts: 0 paging, 0 warning" in text
    assert "/v1/partition" in text
    assert "partition.availability" in text
    assert "DRIFT [healthy]" in text
    assert "CONTROLLER  sessions 0" in text
