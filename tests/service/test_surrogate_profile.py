"""The surrogate serving profile: routing, fallback, reload, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import PartitionService, ServiceConfig, ServiceError
from repro.service.batching import solve_partition_rows
from repro.service.protocol import parse_partition_request
from repro.surrogate.artifact import save_model
from repro.surrogate.grants import normalized_grants
from repro.util.errors import ConfigurationError

from tests.service.test_server import run_with_service
from tests.surrogate.conftest import FAKE_DIGEST, make_model

APC = [0.004, 0.007, 0.002]


@pytest.fixture
def artifact_dir(tmp_path):
    save_model(make_model(("sqrt", "prop")), tmp_path)
    return str(tmp_path)


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------
def test_unknown_profile_is_rejected():
    with pytest.raises(ConfigurationError, match="profile"):
        parse_partition_request(
            {"scheme": "sqrt", "apc_alone": APC, "bandwidth": 0.01,
             "profile": "oracle"}
        )


@pytest.mark.parametrize("profile", ["surrogate", "sim"])
def test_non_analytic_profiles_are_work_conserving_only(profile):
    with pytest.raises(ConfigurationError, match="work-conserving"):
        parse_partition_request(
            {"scheme": "sqrt", "apc_alone": APC, "bandwidth": 0.01,
             "profile": profile, "work_conserving": False}
        )


# ----------------------------------------------------------------------
# serving from a loaded artifact
# ----------------------------------------------------------------------
def test_surrogate_profile_serves_the_fitted_surface(artifact_dir):
    async def scenario(service, client):
        body = await client.partition(
            APC, 0.01, scheme="sqrt", profile="surrogate"
        )
        return body, await client.metrics()

    body, metrics = run_with_service(scenario, surrogate_dir=artifact_dir)
    assert body["profile"] == "surrogate"
    assert body["source"] == "surrogate"
    # the fabricated surface is exactly min(x, g) (see conftest)
    grants = normalized_grants(
        "sqrt", np.array([APC]), np.array([0.01])
    )
    want = np.minimum(grants.x, grants.g)[0] * 0.01
    assert body["apc_shared"] == pytest.approx(want.tolist(), rel=1e-12)
    surr = metrics["surrogate"]
    assert surr["loaded"] is True
    assert surr["digest"] == FAKE_DIGEST
    assert surr["requests"] == 1
    assert surr["hits"] == 1
    assert surr["fallbacks"] == 0
    assert "surrogate" in metrics["solvers"]


def test_surrogate_responses_are_cacheable_per_profile(artifact_dir):
    """Same workload, different profile: distinct cache entries."""

    async def scenario(service, client):
        analytic = await client.partition(APC, 0.01, scheme="sqrt")
        surrogate = await client.partition(
            APC, 0.01, scheme="sqrt", profile="surrogate"
        )
        again = await client.partition(
            APC, 0.01, scheme="sqrt", profile="surrogate"
        )
        return analytic, surrogate, again, await client.metrics()

    analytic, surrogate, again, metrics = run_with_service(
        scenario, surrogate_dir=artifact_dir
    )
    assert analytic["source"] == "analytic"
    assert surrogate["apc_shared"] != analytic["apc_shared"]
    assert again["apc_shared"] == surrogate["apc_shared"]
    assert again["cached"] is True
    assert metrics["cache"]["hits"] == 1


def test_batch_endpoint_mixes_profiles(artifact_dir):
    async def scenario(service, client):
        return await client.partition_batch(
            [
                {"scheme": "sqrt", "apc_alone": APC, "bandwidth": 0.01},
                {"scheme": "sqrt", "apc_alone": APC, "bandwidth": 0.01,
                 "profile": "surrogate"},
                {"scheme": "prop", "apc_alone": APC, "bandwidth": 0.01,
                 "profile": "surrogate"},
            ]
        )

    rows = run_with_service(scenario, surrogate_dir=artifact_dir)
    assert [r["source"] for r in rows] == ["analytic", "surrogate", "surrogate"]


# ----------------------------------------------------------------------
# fallback: the request is answered by the simulator, never errored
# ----------------------------------------------------------------------
def _fallback_scenario(**config_kwargs):
    async def scenario(service, client):
        body = await client.partition(
            [0.004, 0.002], 0.004, scheme="sqrt", profile="surrogate"
        )
        return body, await client.metrics()

    return run_with_service(scenario, **config_kwargs)


def test_fallback_when_no_artifact_exists(tmp_path):
    body, metrics = _fallback_scenario(surrogate_dir=str(tmp_path / "empty"))
    assert body["profile"] == "surrogate"
    assert body["source"] == "sim"
    surr = metrics["surrogate"]
    assert surr["loaded"] is False
    assert surr["fallbacks"] == 1
    assert "no surrogate artifact" in surr["last_fallback_reason"]
    assert "sim" in metrics["solvers"]


def test_fallback_on_stale_digest(artifact_dir):
    body, metrics = _fallback_scenario(
        surrogate_dir=artifact_dir, surrogate_digest="cd" * 32
    )
    assert body["source"] == "sim"
    assert "stale" in metrics["surrogate"]["last_fallback_reason"]


def test_fallback_on_below_gate_artifact(tmp_path):
    import json

    path = save_model(make_model(("sqrt",)), tmp_path)
    data = json.loads(path.read_text())
    data["schemes"]["sqrt"]["r2"] = 0.4  # hand-edited below the gate
    path.write_text(json.dumps(data))
    body, metrics = _fallback_scenario(surrogate_dir=str(tmp_path))
    assert body["source"] == "sim"
    assert "quality gate" in metrics["surrogate"]["last_fallback_reason"]


def test_fallback_on_unfitted_scheme(artifact_dir):
    async def scenario(service, client):
        body = await client.partition(
            [0.004, 0.002], 0.004, scheme="prio_apc",
            api=[0.03, 0.01], profile="surrogate",
        )
        return body, await client.metrics()

    body, metrics = run_with_service(scenario, surrogate_dir=artifact_dir)
    assert body["source"] == "sim"
    surr = metrics["surrogate"]
    assert surr["loaded"] is True  # artifact fine, scheme missing
    assert surr["hits"] == 0
    assert "no fit for scheme" in surr["last_fallback_reason"]


def test_reload_picks_up_a_new_artifact(tmp_path):
    async def scenario(service, client):
        first = await client.partition(
            [0.004, 0.002], 0.004, scheme="sqrt", profile="surrogate"
        )
        save_model(make_model(("sqrt",)), tmp_path)
        reloaded = await client._request("POST", "/v1/surrogate/reload")
        second = await client.partition(
            [0.004, 0.003], 0.004, scheme="sqrt", profile="surrogate"
        )
        return first, reloaded, second

    first, reloaded, second = run_with_service(
        scenario, surrogate_dir=str(tmp_path)
    )
    assert first["source"] == "sim"  # nothing to load yet
    assert reloaded["loaded"] is True
    assert second["source"] == "surrogate"


# ----------------------------------------------------------------------
# solver plumbing
# ----------------------------------------------------------------------
def test_surrogate_group_requires_a_model():
    request = parse_partition_request(
        {"scheme": "sqrt", "apc_alone": APC, "bandwidth": 0.01,
         "profile": "surrogate"}
    )
    with pytest.raises(ConfigurationError, match="without a loaded model"):
        solve_partition_rows([request])


def test_surrogate_rows_match_a_direct_predict(artifact_dir):
    from repro.surrogate.artifact import load_model

    model = load_model(artifact_dir)
    requests = [
        parse_partition_request(
            {"scheme": "sqrt", "apc_alone": list(np.array(APC) * s),
             "bandwidth": 0.01, "profile": "surrogate"}
        )
        for s in (0.8, 1.0, 1.3)
    ]
    rows = solve_partition_rows(requests, surrogate=model)
    want = model.predict(
        "sqrt",
        np.array([r.apc_alone for r in requests]),
        np.array([r.bandwidth for r in requests]),
    )
    for row, expected in zip(rows, want):
        np.testing.assert_array_equal(row, expected)
