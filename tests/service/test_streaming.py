"""Streaming session tests: manager semantics, routes, soak, sockets."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.service import (
    AsyncServiceClient,
    PartitionService,
    ServiceConfig,
    ServiceError,
    SessionLimitError,
    SessionManager,
)
from repro.util.errors import ConfigurationError

API = [0.03, 0.04]
BANDWIDTH = 0.01
WINDOW = 100_000.0


def call(service, method, path, payload=None):
    """Drive the transport-free router directly."""
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    return asyncio.run(service.handle(method, path, body))


def open_stream(service, **overrides):
    payload = {"scheme": "prop", "api": API, "bandwidth": BANDWIDTH}
    payload.update(overrides)
    status, body = call(service, "POST", "/v1/stream/open", payload)
    assert status == 200, body
    return body["session"]


def push(service, session, accesses, *, window=WINDOW, interference=None):
    payload = {"window_cycles": window, "accesses": accesses}
    if interference is not None:
        payload["interference_cycles"] = interference
    return call(service, "POST", f"/v1/stream/{session}/counters", payload)


# ----------------------------------------------------------------------
# session manager (unit, fake clock)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


def make_manager(clock, **kwargs):
    kwargs.setdefault("max_sessions", 4)
    kwargs.setdefault("idle_timeout_s", 60.0)
    kwargs.setdefault("history_limit", 8)
    return SessionManager(clock=clock, **kwargs)


def open_session(manager, **overrides):
    kwargs = dict(
        scheme="prop",
        api=tuple(API),
        bandwidth=BANDWIDTH,
        metrics=("hsp",),
        work_conserving=True,
        profile="analytic",
        prior=None,
    )
    kwargs.update(overrides)
    return manager.open(**kwargs)


class TestSessionManager:
    def test_open_get_close_roundtrip(self):
        clock = FakeClock()
        manager = make_manager(clock)
        session = open_session(manager)
        assert manager.get(session.session_id) is session
        assert manager.active == 1
        assert manager.close(session.session_id) is session
        assert manager.get(session.session_id) is None
        assert manager.opened == 1 and manager.closed == 1

    def test_capacity_cap_raises_session_limit(self):
        manager = make_manager(FakeClock(), max_sessions=2)
        open_session(manager)
        open_session(manager)
        with pytest.raises(SessionLimitError):
            open_session(manager)

    def test_idle_sessions_are_evicted(self):
        clock = FakeClock()
        manager = make_manager(clock, idle_timeout_s=60.0)
        stale = open_session(manager)
        clock.now += 30.0
        fresh = open_session(manager)
        clock.now += 45.0  # stale idle 75s, fresh idle 45s
        assert manager.get(stale.session_id) is None
        assert manager.get(fresh.session_id) is fresh
        assert manager.evicted == 1

    def test_touch_resets_the_idle_clock(self):
        clock = FakeClock()
        manager = make_manager(clock, idle_timeout_s=60.0)
        session = open_session(manager)
        for _ in range(3):
            clock.now += 45.0
            assert manager.get(session.session_id) is session

    def test_eviction_frees_capacity_for_open(self):
        clock = FakeClock()
        manager = make_manager(clock, max_sessions=1)
        open_session(manager)
        clock.now += 120.0
        open_session(manager)  # would raise without the lazy sweep
        assert manager.active == 1 and manager.evicted == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_manager(FakeClock(), max_sessions=0)
        with pytest.raises(ConfigurationError):
            make_manager(FakeClock(), idle_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            make_manager(FakeClock(), history_limit=0)


class TestStreamSessionCounters:
    def test_estimate_applies_the_paper_formula(self):
        session = open_session(make_manager(FakeClock()))
        update = session.push_counters(
            WINDOW, (600.0, 200.0), (20_000.0, 0.0)
        )
        # N / (T - T_interference): 600/80k, 200/100k
        assert update.raw == pytest.approx((0.0075, 0.002))
        assert update.estimate == update.raw  # first push seeds the filter
        assert not update.degenerate

    def test_estimate_clamps_to_the_bus_peak(self):
        session = open_session(make_manager(FakeClock()))
        update = session.push_counters(WINDOW, (1e9, 100.0), (0.0, 0.0))
        assert update.raw[0] == BANDWIDTH

    def test_degenerate_epochs_keep_the_previous_estimate(self):
        session = open_session(make_manager(FakeClock()))
        session.push_counters(WINDOW, (600.0, 200.0), (0.0, 0.0))
        for window, accesses in ((0.0, (1.0, 1.0)), (WINDOW, (0.0, 0.0))):
            update = session.push_counters(window, accesses, (0.0, 0.0))
            assert update.degenerate
            assert update.estimate == pytest.approx((0.006, 0.002))
        assert session.degenerate_epochs == 2

    def test_idle_app_falls_back_to_the_prior(self):
        session = open_session(
            make_manager(FakeClock()), prior=(0.004, 0.003)
        )
        session.push_counters(WINDOW, (600.0, 0.0), (0.0, 0.0))
        estimate = session.current_estimate()
        assert estimate == pytest.approx([0.006, 0.003])

    def test_history_is_bounded(self):
        session = open_session(make_manager(FakeClock(), history_limit=8))
        for _ in range(50):
            session.push_counters(WINDOW, (600.0, 200.0), (0.0, 0.0))
        assert len(session.history) == 8
        assert session.epochs == 50
        assert session.history[-1].epoch == 50


# ----------------------------------------------------------------------
# routes (transport-free)
# ----------------------------------------------------------------------
class TestStreamRoutes:
    def test_open_push_close_lifecycle(self):
        service = PartitionService(ServiceConfig(port=0))
        session = open_stream(service)
        status, body = push(service, session, [600, 200])
        assert status == 200
        assert body["session"] == session
        assert body["epoch"] == 1
        assert body["apc_alone_estimate"] == pytest.approx([0.006, 0.002])
        # prop shares track the measured estimate
        assert body["beta"] == pytest.approx([0.75, 0.25])
        assert body["source"] == "analytic"
        assert "metrics" in body
        status, body = call(service, "DELETE", f"/v1/stream/{session}")
        assert status == 200 and body["closed"] and body["epochs"] == 1

    def test_warmup_without_prior_returns_no_shares(self):
        service = PartitionService(ServiceConfig(port=0))
        session = open_stream(service)
        status, body = push(service, session, [600, 0])
        assert status == 200
        assert body["beta"] is None
        assert body["apc_alone_estimate"][1] is None
        # the moment every app is covered, shares appear
        status, body = push(service, session, [600, 200])
        assert status == 200 and body["beta"] is not None

    def test_change_point_is_reported(self):
        service = PartitionService(ServiceConfig(port=0))
        session = open_stream(service)
        for _ in range(3):
            status, body = push(service, session, [600, 200])
            assert not body["changed"]
        status, body = push(service, session, [50, 200])
        assert status == 200 and body["changed"]

    def test_unknown_session_is_404(self):
        service = PartitionService(ServiceConfig(port=0))
        for method, path, payload in (
            ("POST", "/v1/stream/nope/counters",
             {"window_cycles": WINDOW, "accesses": [1, 1]}),
            ("GET", "/v1/stream/nope", None),
            ("DELETE", "/v1/stream/nope", None),
        ):
            status, body = call(service, method, path, payload)
            assert status == 404, (method, path)
            assert body["error"]["type"] == "NotFound"

    def test_capacity_overflow_is_429(self):
        service = PartitionService(ServiceConfig(port=0, max_sessions=1))
        open_stream(service)
        status, body = call(
            service,
            "POST",
            "/v1/stream/open",
            {"scheme": "prop", "api": API, "bandwidth": BANDWIDTH},
        )
        assert status == 429
        assert body["error"]["type"] == "SessionLimit"

    def test_malformed_push_is_400(self):
        service = PartitionService(ServiceConfig(port=0))
        session = open_stream(service)
        for payload in (
            {"accesses": [1, 1]},  # missing window
            {"window_cycles": WINDOW, "accesses": [1]},  # wrong length
            {"window_cycles": WINDOW, "accesses": [1, 1],
             "interference_cycles": [WINDOW + 1, 0]},  # exceeds window
            {"window_cycles": WINDOW, "accesses": [1, 1], "bogus": 1},
        ):
            status, body = call(
                service, "POST", f"/v1/stream/{session}/counters", payload
            )
            assert status == 400, payload

    def test_method_discipline(self):
        service = PartitionService(ServiceConfig(port=0))
        session = open_stream(service)
        assert call(service, "GET", "/v1/stream/open")[0] == 405
        assert call(service, "PUT", f"/v1/stream/{session}")[0] == 405
        assert call(service, "GET", f"/v1/stream/{session}/counters")[0] == 405

    def test_info_reports_session_state(self):
        service = PartitionService(ServiceConfig(port=0))
        session = open_stream(service)
        push(service, session, [600, 200])
        status, info = call(service, "GET", f"/v1/stream/{session}")
        assert status == 200
        assert info["epochs"] == 1
        assert info["scheme"] == "prop" and info["n_apps"] == 2

    def test_stream_push_matches_oneshot_partition(self):
        """A push solves exactly what /v1/partition would at the estimate."""
        # batching=False: the un-started batcher cannot serve the
        # one-shot endpoint when driving handle() without a transport
        service = PartitionService(ServiceConfig(port=0, batching=False))
        session = open_stream(service)
        _, streamed = push(service, session, [600, 200])
        _, direct = call(
            service,
            "POST",
            "/v1/partition",
            {
                "scheme": "prop",
                "apc_alone": streamed["apc_alone_estimate"],
                "api": API,
                "bandwidth": BANDWIDTH,
            },
        )
        assert streamed["apc_shared"] == pytest.approx(direct["apc_shared"])
        assert streamed["beta"] == pytest.approx(direct["beta"])


class TestStreamOpenValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"bogus": 1},
            {"smoothing": "kalman"},
            {"apc_alone": [0.004]},  # length != len(api)
            {"profile": "surrogate", "work_conserving": False},
            {"cooldown": -1},
            {"change_threshold": 0.0},
            {"scheme": "nope"},
        ],
    )
    def test_bad_open_is_400(self, overrides):
        service = PartitionService(ServiceConfig(port=0))
        payload = {"scheme": "prop", "api": API, "bandwidth": BANDWIDTH}
        payload.update(overrides)
        status, body = call(service, "POST", "/v1/stream/open", payload)
        assert status == 400, overrides
        assert body["error"]["type"] == "ConfigurationError"


# ----------------------------------------------------------------------
# soak: bounded memory over >= 1000 posts, visible in /metrics
# ----------------------------------------------------------------------
def test_thousand_posts_bounded_memory_and_metrics():
    config = ServiceConfig(port=0, session_history=16)
    service = PartitionService(config)

    async def scenario():
        _, opened = await service.handle(
            "POST",
            "/v1/stream/open",
            json.dumps(
                {"scheme": "prop", "api": API, "bandwidth": BANDWIDTH}
            ).encode(),
        )
        sid = opened["session"]
        rng = np.random.default_rng(7)
        for i in range(1000):
            accesses = [600 + int(rng.integers(0, 50)), 200 + int(rng.integers(0, 20))]
            status, body = await service.handle(
                "POST",
                f"/v1/stream/{sid}/counters",
                json.dumps(
                    {"window_cycles": WINDOW, "accesses": accesses}
                ).encode(),
            )
            assert status == 200 and body["beta"] is not None
        _, metrics = await service.handle("GET", "/metrics", b"")
        return sid, metrics

    sid, metrics = asyncio.run(scenario())
    session = service.sessions.get(sid)
    assert session is not None and session.epochs == 1000
    # the only per-epoch state is the bounded history ring
    assert len(session.history) == config.session_history
    sessions = metrics["sessions"]
    assert sessions["active"] == 1
    assert sessions["opened"] == 1
    assert sessions["epochs"] == 1000
    assert sessions["sessions"][0]["session"] == sid
    # the obs registry is process-global, so earlier tests in this
    # module contribute too: lower-bound the mirrored push counter
    pushes = [
        series["value"]
        for series in metrics["obs"]["service.stream_events"]["series"]
        if series["labels"] == {"event": "push"}
    ]
    assert pushes and pushes[0] >= 1000


# ----------------------------------------------------------------------
# end-to-end over real sockets with the client helpers
# ----------------------------------------------------------------------
def test_streaming_over_sockets_with_client():
    async def main():
        service = PartitionService(ServiceConfig(port=0, max_sessions=1))
        await service.start()
        try:
            async with AsyncServiceClient(port=service.port) as client:
                opened = await client.stream_open(
                    API, BANDWIDTH, scheme="prop", smoothing="ema",
                    smoothing_param=0.5,
                )
                sid = opened["session"]
                body = await client.stream_push(sid, WINDOW, [600, 200])
                assert body["beta"] == pytest.approx([0.75, 0.25])
                info = await client.stream_info(sid)
                assert info["epochs"] == 1
                with pytest.raises(ServiceError) as exc_info:
                    await client.stream_open(API, BANDWIDTH)
                assert exc_info.value.status == 429
                closed = await client.stream_close(sid)
                assert closed["closed"] is True
                metrics = await client.metrics()
                assert metrics["sessions"]["closed"] == 1
        finally:
            await service.stop()

    asyncio.run(main())
