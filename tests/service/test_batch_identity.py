"""The service's core guarantee: micro-batched solves are bit-identical
to single-request solves.

Every batch kernel in :mod:`repro.core.batch` performs, per row, the
same floating-point op sequence as the scalar solver it replaces, so
these tests assert *exact* equality (``np.array_equal``), not
``allclose`` -- any reassociation of the arithmetic is a regression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AppProfile, Workload, scheme_by_name, solve_fractional_knapsack
from repro.core.batch import (
    BATCH_SCHEMES,
    batch_allocate,
    batch_hsp_proportional,
    batch_hsp_square_root,
    batch_qos_plan,
    batch_solve_fractional_knapsack,
    batch_wsp_square_root,
)
from repro.core.closed_form import (
    hsp_proportional,
    hsp_square_root,
    wsp_square_root,
)
from repro.core.metrics import metric_by_name
from repro.core.qos import QoSPartitioner, QoSTarget
from repro.util.errors import ConfigurationError


def random_problem(rng, k, n):
    return (
        rng.uniform(1e-4, 0.02, size=(k, n)),  # apc_alone
        rng.uniform(1e-3, 0.08, size=(k, n)),  # api
        rng.uniform(1e-3, 0.05, size=k),  # bandwidth
    )


def workload_of_row(apc_alone_row, api_row):
    return Workload.of(
        "row",
        [
            AppProfile(f"a{j}", api=api_row[j], apc_alone=apc_alone_row[j])
            for j in range(len(apc_alone_row))
        ],
    )


@pytest.mark.parametrize("scheme", BATCH_SCHEMES)
@pytest.mark.parametrize("k,n", [(1, 4), (7, 3), (64, 16)])
def test_batch_allocation_bit_identical_to_scalar(scheme, k, n):
    apc, api, bandwidth = random_problem(np.random.default_rng(k * 100 + n), k, n)
    stacked = batch_allocate(scheme, apc, bandwidth, api=api)
    solver = scheme_by_name(scheme)
    for i in range(k):
        alone = solver.allocate(workload_of_row(apc[i], api[i]), float(bandwidth[i]))
        assert np.array_equal(stacked[i], alone), f"row {i} diverged"


@pytest.mark.parametrize("scheme", ["prio_apc", "prio_api", "sqrt", "prop"])
def test_batch_allocation_identical_under_priority_ties(scheme):
    """All-equal APC_alone (and API) -- ties must break identically."""
    rng = np.random.default_rng(5)
    k, n = 16, 6
    apc = np.tile(rng.uniform(1e-3, 0.01, size=(k, 1)), (1, n))
    api = np.tile(rng.uniform(1e-2, 0.05, size=(k, 1)), (1, n))
    bandwidth = rng.uniform(1e-3, 0.03, size=k)
    stacked = batch_allocate(scheme, apc, bandwidth, api=api)
    solver = scheme_by_name(scheme)
    for i in range(k):
        alone = solver.allocate(workload_of_row(apc[i], api[i]), float(bandwidth[i]))
        assert np.array_equal(stacked[i], alone)


def test_batch_knapsack_bit_identical_quantities():
    rng = np.random.default_rng(9)
    k, n = 40, 8
    values = rng.uniform(0.1, 10.0, size=(k, n))
    caps = rng.uniform(0.0, 0.02, size=(k, n))
    budgets = rng.uniform(0.0, 0.1, size=k)
    sol = batch_solve_fractional_knapsack(values, caps, budgets)
    for i in range(k):
        ref = solve_fractional_knapsack(values[i], caps[i], float(budgets[i]))
        assert np.array_equal(sol.quantities[i], ref.quantities)
        assert np.array_equal(sol.fill_order[i], ref.fill_order)
        assert sol.split_item[i] == ref.split_item
        assert sol.objective[i] == pytest.approx(ref.objective, rel=1e-12)


def test_batch_closed_forms_bit_identical():
    rng = np.random.default_rng(11)
    k, n = 50, 5
    apc, api, bandwidth = random_problem(rng, k, n)
    hsp_sqrt = batch_hsp_square_root(apc, bandwidth)
    wsp_sqrt = batch_wsp_square_root(apc, bandwidth)
    hsp_prop = batch_hsp_proportional(apc, bandwidth)
    for i in range(k):
        workload = workload_of_row(apc[i], api[i])
        assert hsp_sqrt[i] == hsp_square_root(workload, float(bandwidth[i]))
        assert wsp_sqrt[i] == wsp_square_root(workload, float(bandwidth[i]))
        assert hsp_prop[i] == hsp_proportional(workload, float(bandwidth[i]))


def test_batch_metric_values_match_scalar_path():
    """End-to-end: metrics computed on batch rows equal the scalar ones."""
    rng = np.random.default_rng(13)
    k, n = 12, 4
    apc, api, bandwidth = random_problem(rng, k, n)
    for scheme in ("sqrt", "prio_apc"):
        stacked = batch_allocate(scheme, apc, bandwidth, api=api)
        solver = scheme_by_name(scheme)
        for i in range(k):
            workload = workload_of_row(apc[i], api[i])
            alone = solver.allocate(workload, float(bandwidth[i]))
            for name in ("hsp", "wsp", "ipcsum", "minf"):
                metric = metric_by_name(name)
                assert metric(stacked[i] / api[i], workload.ipc_alone) == metric(
                    alone / api[i], workload.ipc_alone
                )


@pytest.mark.parametrize("objective", ["hsp", "minf", "wsp", "ipcsum"])
def test_batch_qos_matches_scalar_partitioner(objective):
    """QoS rows agree with QoSPartitioner to ~ulp (see batch.py docstring)."""
    rng = np.random.default_rng(17)
    k, n = 10, 5
    apc, api, bandwidth = random_problem(rng, k, n)
    bandwidth = bandwidth + 0.01  # leave room for reservations
    targets_matrix = np.full((k, n), np.nan)
    for i in range(k):
        picked = rng.choice(n, size=int(rng.integers(1, n)), replace=False)
        # keep total reservations under half the bandwidth so every row
        # stays feasible: B_QoS,j = ipc_target * api <= share
        share = 0.5 * bandwidth[i] / len(picked)
        for j in picked:
            ipc_cap = 0.9 * apc[i, j] / api[i, j]
            targets_matrix[i, j] = min(ipc_cap, share / api[i, j])
    plan = batch_qos_plan(apc, api, targets_matrix, bandwidth, objective=objective)
    from repro.core.metrics import (
        HarmonicWeightedSpeedup,
        MinFairness,
        SumOfIPCs,
        WeightedSpeedup,
    )

    metric = {
        "hsp": HarmonicWeightedSpeedup,
        "minf": MinFairness,
        "wsp": WeightedSpeedup,
        "ipcsum": SumOfIPCs,
    }[objective]()
    for i in range(k):
        workload = workload_of_row(apc[i], api[i])
        targets = [
            QoSTarget(f"a{j}", targets_matrix[i, j])
            for j in range(n)
            if not np.isnan(targets_matrix[i, j])
        ]
        ref = QoSPartitioner(metric).plan(workload, float(bandwidth[i]), targets)
        assert plan["feasible"][i]
        np.testing.assert_allclose(
            plan["apc_shared"][i], ref.apc_shared, rtol=1e-10, atol=1e-14
        )
        assert plan["b_qos"][i] == pytest.approx(ref.b_qos, rel=1e-12)


def test_batch_qos_flags_infeasible_rows_without_poisoning_batch():
    apc = np.array([[0.004, 0.002], [0.004, 0.002]])
    api = np.array([[0.04, 0.02], [0.04, 0.02]])
    # row 0 feasible; row 1 demands more than its standalone IPC
    targets = np.array([[0.05, np.nan], [1.0, np.nan]])
    plan = batch_qos_plan(apc, api, targets, 0.005)
    assert plan["feasible"].tolist() == [True, False]
    assert np.all(plan["apc_shared"][1] == 0.0)
    assert plan["apc_shared"][0][0] == pytest.approx(0.05 * 0.04)


def test_batch_allocate_rejects_unknown_scheme_and_bad_shapes():
    with pytest.raises(ConfigurationError):
        batch_allocate("nope", np.ones((2, 2)), 1.0)
    with pytest.raises(ConfigurationError):
        batch_allocate("sqrt", np.ones((2, 2)), np.ones(3))
    with pytest.raises(ConfigurationError):
        batch_allocate("sqrt", np.full((2, 2), np.nan), 1.0)
    with pytest.raises(ConfigurationError):
        batch_allocate("prio_api", np.ones((2, 2)), 1.0)  # api missing
