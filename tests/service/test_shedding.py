"""Deadline propagation and admission-control shedding."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    AdmissionController,
    AsyncServiceClient,
    Deadline,
    DeadlineExceeded,
    PartitionService,
    ServiceConfig,
    ServiceError,
)

APC = [0.004, 0.007, 0.002]
API = [0.03, 0.04, 0.01]


# ----------------------------------------------------------------------
# Deadline (unit)
# ----------------------------------------------------------------------
def test_deadline_parses_header():
    d = Deadline.from_headers({"x-deadline-ms": "250"})
    assert d is not None
    assert d.budget_ms == 250
    assert 0 < d.remaining_s() <= 0.25
    assert not d.expired()


@pytest.mark.parametrize("raw", ["", "nan", "inf", "-5", "0", "soon"])
def test_malformed_deadline_is_advisory_not_an_error(raw):
    assert Deadline.from_headers({"x-deadline-ms": raw}) is None


def test_deadline_check_raises_once_spent():
    d = Deadline(5.0, now=0.0)
    d.expires_at = 0.0  # force expiry without sleeping
    assert d.expired()
    with pytest.raises(DeadlineExceeded):
        d.check("the solve started")


# ----------------------------------------------------------------------
# AdmissionController (unit)
# ----------------------------------------------------------------------
def test_admission_budget_and_release():
    adm = AdmissionController(2)
    assert adm.try_admit() and adm.try_admit()
    assert not adm.try_admit()  # budget spent
    assert adm.rejected == 1
    adm.release(0.01)
    assert adm.try_admit()  # freed slot re-admits


def test_retry_hint_tracks_latency_and_is_clamped():
    adm = AdmissionController(4)
    assert 0.05 <= adm.retry_after_s() <= 5.0
    for _ in range(50):
        adm.try_admit()
        adm.release(2.0)  # slow requests push the hint up
    slow_hint = adm.retry_after_s()
    assert slow_hint > 0.5
    assert int(adm.retry_after_header()) >= 1  # RFC 9110: whole seconds


def test_admission_controller_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        AdmissionController(0)


# ----------------------------------------------------------------------
# end-to-end over sockets
# ----------------------------------------------------------------------
def run_with_service(coro_factory, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("max_wait_ms", 1.0)

    async def main():
        service = PartitionService(ServiceConfig(**config_kwargs))
        await service.start()
        try:
            async with AsyncServiceClient(port=service.port) as client:
                return await coro_factory(service, client)
        finally:
            await service.stop()

    return asyncio.run(main())


def test_expired_deadline_sheds_with_504():
    async def scenario(service, client):
        with pytest.raises(ServiceError) as err:
            await client.partition(APC, 0.01, api=API, deadline_ms=0.0001)
        return err.value, await client.metrics()

    exc, metrics = run_with_service(scenario)
    assert exc.status == 504
    assert exc.error_type == "DeadlineExceeded"
    stats = metrics["endpoints"]["/v1/partition"]
    assert stats["sheds"] == 1
    assert stats["errors"] == 1


def test_generous_deadline_is_harmless():
    async def scenario(service, client):
        return await client.partition(APC, 0.01, api=API, deadline_ms=30_000)

    body = run_with_service(scenario)
    assert body["scheme"] == "sqrt"
    assert len(body["beta"]) == 3


def test_overload_sheds_429_with_retry_after():
    async def scenario(service, client):
        async def stall(method, path, body, **kwargs):
            await asyncio.sleep(0.4)
            return 200, {"stalled": True}

        original = service.handle
        service.handle = stall  # every admitted request now parks
        fast = AsyncServiceClient(port=service.port)
        shed_error = None
        try:
            blocker = asyncio.create_task(client.healthz())
            await asyncio.sleep(0.05)  # let it occupy the only slot
            try:
                await fast.healthz()
            except ServiceError as exc:
                shed_error = exc
            await blocker
        finally:
            service.handle = original
            await fast.aclose()
        return shed_error, await client.metrics()

    exc, metrics = run_with_service(scenario, max_inflight=1)
    assert exc is not None and exc.status == 429
    assert exc.error_type == "Overloaded"
    assert exc.retry_after_s is not None and exc.retry_after_s > 0
    assert metrics["admission"]["rejected"] >= 1
    assert metrics["admission"]["max_inflight"] == 1


def test_shed_lands_in_flight_recorder():
    async def scenario(service, client):
        with pytest.raises(ServiceError):
            await client.partition(APC, 0.01, api=API, deadline_ms=0.0001)
        return await client.debug("recent", kind="shed")

    body = run_with_service(scenario)
    assert body["counts"]["shed"] >= 1
    assert any(e["kind"] == "shed" for e in body["records"])


def test_zero_max_inflight_disables_admission():
    async def scenario(service, client):
        assert service.admission is None
        body = await client.partition(APC, 0.01, api=API)
        metrics = await client.metrics()
        return body, metrics

    body, metrics = run_with_service(scenario, max_inflight=0)
    assert body["beta"]
    assert "admission" not in metrics
