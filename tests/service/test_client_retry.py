"""Client-side retry/backoff contract and keep-alive reuse."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    AsyncServiceClient,
    PartitionService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.client import _backoff_s

APC = [0.004, 0.007, 0.002]
API = [0.03, 0.04, 0.01]


# ----------------------------------------------------------------------
# ServiceError parsing
# ----------------------------------------------------------------------
def test_retry_after_prefers_float_body_over_rounded_header():
    err = ServiceError.from_response(
        429,
        {"error": {"type": "Overloaded", "message": "busy"},
         "retry_after_s": 0.25},
        retry_after="1",
    )
    assert err.retry_after_s == 0.25
    assert err.retryable


def test_retry_after_header_fallback():
    err = ServiceError.from_response(
        429, {"error": {"type": "Overloaded", "message": "busy"}},
        retry_after="2",
    )
    assert err.retry_after_s == 2.0


def test_non_429_is_not_retryable():
    err = ServiceError.from_response(
        400, {"error": {"type": "ConfigurationError", "message": "bad"}}
    )
    assert err.retry_after_s is None
    assert not err.retryable


# ----------------------------------------------------------------------
# backoff shape
# ----------------------------------------------------------------------
def test_backoff_uses_server_hint_with_jitter():
    lo = _backoff_s(0, 1.0, base_s=0.05, max_s=5.0, rand=lambda: 0.0)
    hi = _backoff_s(0, 1.0, base_s=0.05, max_s=5.0, rand=lambda: 1.0)
    assert lo == pytest.approx(0.5)
    assert hi == pytest.approx(1.0)


def test_backoff_without_hint_is_exponential_and_capped():
    delays = [
        _backoff_s(a, None, base_s=0.1, max_s=1.0, rand=lambda: 1.0)
        for a in range(6)
    ]
    assert delays[:3] == pytest.approx([0.1, 0.2, 0.4])
    assert max(delays) == pytest.approx(1.0)  # capped, never unbounded


# ----------------------------------------------------------------------
# sync retry loop (no sockets: _request stubbed)
# ----------------------------------------------------------------------
def shed_error(retry_after_s: float) -> ServiceError:
    return ServiceError(
        429, "Overloaded", "busy", retry_after_s=retry_after_s
    )


def test_request_with_retry_sleeps_out_the_hint_then_succeeds():
    client = ServiceClient(port=1)
    outcomes = [shed_error(0.5), shed_error(0.5), {"ok": True}]
    calls = []

    def fake_request(method, path, payload=None, *, deadline_ms=None):
        calls.append((method, path, deadline_ms))
        outcome = outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._request = fake_request
    slept = []
    body = client.request_with_retry(
        "POST", "/v1/partition", {"x": 1},
        deadline_ms=200.0,
        rand=lambda: 1.0,  # jitter factor pinned to 1.0
        sleep=slept.append,
    )
    assert body == {"ok": True}
    assert len(calls) == 3
    assert all(d == 200.0 for _, _, d in calls)  # deadline re-sent each try
    assert slept == pytest.approx([0.5, 0.5])  # server hint, not the ladder


def test_request_with_retry_gives_up_after_max_attempts():
    client = ServiceClient(port=1)
    client._request = lambda *a, **k: (_ for _ in ()).throw(shed_error(0.01))
    with pytest.raises(ServiceError) as err:
        client.request_with_retry(
            "POST", "/v1/partition", {}, max_attempts=3, sleep=lambda s: None
        )
    assert err.value.status == 429


def test_request_with_retry_raises_non_retryable_immediately():
    client = ServiceClient(port=1)
    attempts = []

    def fake_request(method, path, payload=None, *, deadline_ms=None):
        attempts.append(1)
        raise ServiceError(400, "ConfigurationError", "bad request")

    client._request = fake_request
    with pytest.raises(ServiceError):
        client.request_with_retry("POST", "/v1/partition", {})
    assert len(attempts) == 1


def test_request_with_retry_retries_dropped_connections():
    client = ServiceClient(port=1)
    outcomes = [ConnectionResetError("gone"), {"ok": True}]

    def fake_request(method, path, payload=None, *, deadline_ms=None):
        outcome = outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._request = fake_request
    slept = []
    assert client.request_with_retry(
        "POST", "/v1/partition", {}, sleep=slept.append
    ) == {"ok": True}
    assert len(slept) == 1


# ----------------------------------------------------------------------
# against a live server
# ----------------------------------------------------------------------
def run_with_service(coro_factory, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("max_wait_ms", 1.0)

    async def main():
        service = PartitionService(ServiceConfig(**config_kwargs))
        await service.start()
        try:
            return await coro_factory(service)
        finally:
            await service.stop()

    return asyncio.run(main())


def test_sync_client_reuses_one_connection():
    """The keep-alive contract: serial requests share one TCP conn."""

    async def scenario(service):
        def calls():
            with ServiceClient(port=service.port) as client:
                client.healthz()
                conn = client._conn
                client.partition(APC, 0.01, api=API)
                client.metrics()
                assert client._conn is conn  # never reconnected

        await asyncio.to_thread(calls)
        return service.transport.open_connections

    # from the server side too: at most the one connection was open
    assert run_with_service(scenario) <= 1


def test_async_retry_rides_out_a_shed_window():
    async def scenario(service):
        async def stall(method, path, body, **kwargs):
            await asyncio.sleep(0.3)
            return 200, {"stalled": True}

        original = service.handle
        service.handle = stall
        async with AsyncServiceClient(port=service.port) as blocker_client:
            blocker = asyncio.create_task(blocker_client.healthz())
            await asyncio.sleep(0.05)  # occupy the single admission slot
            service.handle = original
            async with AsyncServiceClient(port=service.port) as client:
                # first attempt sheds (429), the retry lands after drain
                body = await client.request_with_retry(
                    "GET", "/healthz", max_attempts=8
                )
            await blocker
        return body

    body = run_with_service(scenario, max_inflight=1)
    assert body["status"] == "ok"
