"""Request validation: malformed payloads become typed errors, never NaNs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.protocol import (
    error_body,
    parse_partition_request,
    parse_qos_request,
)
from repro.util.errors import ConfigurationError

GOOD = {
    "scheme": "sqrt",
    "apc_alone": [0.004, 0.007, 0.002],
    "api": [0.03, 0.04, 0.01],
    "bandwidth": 0.01,
}


class TestPartitionParsing:
    def test_good_request_roundtrip(self):
        req = parse_partition_request(GOOD)
        assert req.scheme == "sqrt"
        assert req.n_apps == 3
        assert req.metrics == ("hsp", "minf", "wsp", "ipcsum")
        assert req.work_conserving

    def test_scheme_defaults_to_sqrt(self):
        req = parse_partition_request({"apc_alone": [0.01], "bandwidth": 0.005})
        assert req.scheme == "sqrt"

    def test_metrics_default_empty_without_api(self):
        req = parse_partition_request({"apc_alone": [0.01], "bandwidth": 0.005})
        assert req.metrics == ()

    @pytest.mark.parametrize(
        "mutation",
        [
            {"scheme": "bogus"},
            {"apc_alone": []},
            {"apc_alone": "nope"},
            {"apc_alone": [0.1, "x"]},
            {"apc_alone": [0.1, -0.2]},
            {"apc_alone": [0.1, float("nan")]},
            {"api": [0.1]},  # length mismatch
            {"bandwidth": 0},
            {"bandwidth": -1},
            {"bandwidth": "much"},
            {"metrics": ["hsp", "nope"]},
            {"metrics": "hsp"},
            {"work_conserving": "yes"},
            {"surprise": 1},
        ],
    )
    def test_bad_requests_raise_configuration_error(self, mutation):
        payload = dict(GOOD, **mutation)
        with pytest.raises(ConfigurationError):
            parse_partition_request(payload)

    def test_non_dict_body_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_partition_request([1, 2, 3])

    def test_metrics_without_api_rejected(self):
        with pytest.raises(ConfigurationError, match="api"):
            parse_partition_request(
                {"apc_alone": [0.01], "bandwidth": 0.005, "metrics": ["hsp"]}
            )

    def test_prio_api_requires_api(self):
        with pytest.raises(ConfigurationError, match="prio_api"):
            parse_partition_request(
                {"scheme": "prio_api", "apc_alone": [0.01], "bandwidth": 0.005}
            )

    def test_cache_key_semantic_equality(self):
        a = parse_partition_request(GOOD)
        b = parse_partition_request(
            {  # same meaning, different field order / explicit defaults
                "bandwidth": 0.01,
                "api": [0.03, 0.04, 0.01],
                "apc_alone": [0.004, 0.007, 0.002],
                "scheme": "sqrt",
                "work_conserving": True,
            }
        )
        assert a.cache_key() == b.cache_key()
        c = parse_partition_request(dict(GOOD, bandwidth=0.02))
        assert a.cache_key() != c.cache_key()


QOS_GOOD = {
    "apc_alone": [0.004, 0.007, 0.002],
    "api": [0.03, 0.04, 0.01],
    "bandwidth": 0.01,
    "targets": [{"app": 0, "ipc_target": 0.05}],
}


class TestQoSParsing:
    def test_good_request_roundtrip(self):
        req = parse_qos_request(QOS_GOOD)
        assert req.objective == "wsp"
        assert np.isnan(req.ipc_targets[1])
        assert req.ipc_targets[0] == 0.05

    @pytest.mark.parametrize(
        "mutation",
        [
            {"api": None},
            {"targets": []},
            {"targets": [{"app": 3, "ipc_target": 0.1}]},  # out of range
            {"targets": [{"app": 0}]},
            {"targets": [{"app": "zero", "ipc_target": 0.1}]},
            {"targets": [{"app": True, "ipc_target": 0.1}]},
            {"targets": [{"app": 0, "ipc_target": -0.1}]},
            {
                "targets": [
                    {"app": 0, "ipc_target": 0.1},
                    {"app": 0, "ipc_target": 0.2},
                ]
            },
            {"objective": "speed"},
            {"extra": 1},
        ],
    )
    def test_bad_requests_raise_configuration_error(self, mutation):
        payload = dict(QOS_GOOD, **mutation)
        with pytest.raises(ConfigurationError):
            parse_qos_request(payload)

    def test_cache_key_ignores_target_order(self):
        two = dict(
            QOS_GOOD,
            targets=[
                {"app": 0, "ipc_target": 0.05},
                {"app": 2, "ipc_target": 0.1},
            ],
        )
        swapped = dict(
            QOS_GOOD,
            targets=[
                {"app": 2, "ipc_target": 0.1},
                {"app": 0, "ipc_target": 0.05},
            ],
        )
        assert parse_qos_request(two).cache_key() == parse_qos_request(swapped).cache_key()


def test_error_body_shape():
    body = error_body("ConfigurationError", "boom")
    assert body == {"error": {"type": "ConfigurationError", "message": "boom"}}
