"""Pre-fork supervisor: spawn, drain, crash-restart, fleet metrics.

These tests fork real worker processes and talk to them over real
sockets -- they are the scale-out acceptance tests, kept small (2
workers, short backoffs) so the whole module stays in CI-smoke budget.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.service import ServiceClient, ServiceConfig
from repro.service.supervisor import Supervisor, reuse_port_supported

APC = [0.004, 0.007, 0.002]
API = [0.03, 0.04, 0.01]


def make_supervisor(**overrides) -> Supervisor:
    overrides.setdefault("workers", 2)
    overrides.setdefault("port", 0)
    overrides.setdefault("max_wait_ms", 1.0)
    overrides.setdefault("shutdown_grace_s", 1.0)
    overrides.setdefault("restart_backoff_s", 0.05)
    return Supervisor(ServiceConfig(**overrides))


def wait_until(predicate, timeout_s: float = 15.0, interval_s: float = 0.1):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError(f"condition not met within {timeout_s}s")


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def test_supervisor_requires_multiple_workers():
    with pytest.raises(ValueError):
        Supervisor(ServiceConfig(workers=1))


def test_two_workers_serve_one_port():
    sup = make_supervisor()
    sup.start()
    try:
        assert len(sup.worker_pids()) == 2
        with ServiceClient(port=sup.port) as client:
            body = client.healthz()
            assert body["status"] == "ok"
            assert body["workers"] == 2
            assert body["worker_id"] in (0, 1)
            answer = client.partition(APC, 0.01, api=API)
            assert len(answer["beta"]) == 3
    finally:
        sup.stop()


def test_sigterm_drains_in_flight_request_and_sessions():
    """Workers TERMed mid-request finish it, close streams, exit 0."""
    sup = make_supervisor()
    sup.start()
    procs = list(sup._procs.values())
    client = ServiceClient(port=sup.port)
    opened = client.stream_open(API, 0.01, apc_alone=APC)
    assert opened["session"]
    # park a request on the wire, then stop the fleet before reading
    # the response: the drain must complete the solve, not cut it
    import http.client as http_client

    conn = http_client.HTTPConnection("127.0.0.1", sup.port, timeout=30)
    conn.request(
        "POST",
        "/v1/partition",
        body=__import__("json").dumps(
            {"scheme": "sqrt", "apc_alone": APC, "api": API,
             "bandwidth": 0.01, "profile": "sim"}
        ),
        headers={"Content-Type": "application/json"},
    )
    started = time.monotonic()
    sup.stop()
    elapsed = time.monotonic() - started
    response = conn.getresponse()
    assert response.status == 200
    assert b"beta" in response.read()
    conn.close()
    client.close()
    # drain deadline: shutdown_grace_s (1s) + supervisor margin (5s)
    assert elapsed < 10.0
    # exit 0 everywhere = every worker drained cleanly (stream close
    # included); a kill would show as -SIGKILL
    assert [p.exitcode for p in procs] == [0, 0]


def test_killed_worker_is_restarted_and_no_request_is_lost():
    sup = make_supervisor()
    sup.start()
    try:
        before = sup.worker_pids()
        victim_slot, victim_pid = next(iter(before.items()))
        os.kill(victim_pid, signal.SIGKILL)

        # traffic straight through the crash window: every request must
        # be answered exactly once -- request_with_retry re-sends only
        # requests whose connection died without a response
        answers = []
        with ServiceClient(port=sup.port, timeout=10.0) as client:
            for i in range(40):
                body = client.request_with_retry(
                    "POST",
                    "/v1/partition",
                    {"scheme": "sqrt", "apc_alone": APC, "api": API,
                     "bandwidth": 0.01},
                    max_attempts=6,
                )
                answers.append(body["beta"])
                time.sleep(0.01)
        assert len(answers) == 40
        assert all(a == answers[0] for a in answers)  # deterministic solve

        def respawned():
            pids = sup.worker_pids()
            pid = pids.get(victim_slot)
            return pid is not None and pid != victim_pid and len(pids) == 2

        wait_until(respawned)
        # the fleet is whole again and the new worker serves
        with ServiceClient(port=sup.port) as client:
            wait_until(lambda: client.healthz()["status"] == "ok")
    finally:
        sup.stop()


# ----------------------------------------------------------------------
# cross-worker behaviour
# ----------------------------------------------------------------------
def test_shared_cache_hits_across_workers():
    sup = make_supervisor()
    sup.start()
    try:
        # same key from many fresh connections: REUSEPORT spreads them
        # over both workers, so unless one worker saw every single
        # connection (p ~ 2^-29) the second worker's first sight of the
        # key must come out of the shared segment
        for _ in range(30):
            with ServiceClient(port=sup.port) as client:
                body = client.partition(APC, 0.01, api=API)
                assert len(body["beta"]) == 3

        def shared_hits():
            with ServiceClient(port=sup.port) as client:
                metrics = client.metrics()
            return metrics["cluster"]["cache"]["shared_hits"] or None

        assert wait_until(shared_hits, timeout_s=10.0) >= 1
    finally:
        sup.stop()


def test_metrics_are_aggregated_across_workers():
    sup = make_supervisor(metrics_sync_s=0.2)
    sup.start()
    try:
        n_requests = 12
        for _ in range(n_requests):
            with ServiceClient(port=sup.port) as client:
                client.partition(APC, 0.01, api=API)

        def fleet_converged():
            with ServiceClient(port=sup.port) as client:
                m = client.metrics()
            seen = m["endpoints"].get("/v1/partition", {}).get("requests", 0)
            return m if (m.get("aggregated") and seen >= n_requests) else None

        merged = wait_until(fleet_converged, timeout_s=10.0)
        assert merged["n_workers"] == 2
        workers = merged["workers"]
        assert len(workers) == 2
        pids = {w["pid"] for w in workers.values()}
        assert len(pids) == 2  # genuinely distinct processes
        for w in workers.values():
            assert w["age_s"] < 30.0
        # merged latency window spans the fleet
        stats = merged["endpoints"]["/v1/partition"]
        assert stats["latency_ms"]["p50"] > 0
    finally:
        sup.stop()


@pytest.mark.skipif(not reuse_port_supported(), reason="needs SO_REUSEPORT")
def test_handoff_mode_serves_too():
    sup = make_supervisor(reuse_port=False)
    sup.start()
    try:
        assert sup.mode == "handoff"
        with ServiceClient(port=sup.port) as client:
            assert client.healthz()["status"] == "ok"
            assert len(client.partition(APC, 0.01, api=API)["beta"]) == 3
    finally:
        sup.stop()
