"""MicroBatcher behaviour: coalescing, windows, error propagation."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.service.batching import MicroBatcher
from repro.service.protocol import parse_partition_request

REQ = {"apc_alone": [0.004, 0.007, 0.002], "bandwidth": 0.01}


def make_request(bandwidth=0.01, scheme="sqrt", n=3):
    return parse_partition_request(
        {"scheme": scheme, "apc_alone": [0.004 + 0.001 * i for i in range(n)], "bandwidth": bandwidth}
    )


def run(coro):
    return asyncio.run(coro)


def test_concurrent_submissions_coalesce_into_one_batch():
    sizes = []

    async def main():
        batcher = MicroBatcher(max_batch_size=64, max_wait_ms=20.0, on_batch=sizes.append)
        await batcher.start()
        try:
            outs = await asyncio.gather(
                *[batcher.submit(make_request(bandwidth=0.01 + 0.001 * i)) for i in range(10)]
            )
        finally:
            await batcher.stop()
        return outs

    outs = run(main())
    assert sizes == [10]
    assert all(size == 10 for _, size in outs)
    assert all(isinstance(row, np.ndarray) and row.shape == (3,) for row, _ in outs)


def test_batch_size_cap_splits_bursts():
    sizes = []

    async def main():
        batcher = MicroBatcher(max_batch_size=4, max_wait_ms=50.0, on_batch=sizes.append)
        await batcher.start()
        try:
            await asyncio.gather(*[batcher.submit(make_request(0.01 + 0.001 * i)) for i in range(10)])
        finally:
            await batcher.stop()

    run(main())
    assert sum(sizes) == 10
    assert max(sizes) <= 4


def test_mixed_groups_solved_separately_one_window():
    """Different schemes share a window but are stacked separately."""
    sizes = []

    async def main():
        batcher = MicroBatcher(max_batch_size=64, max_wait_ms=20.0, on_batch=sizes.append)
        await batcher.start()
        try:
            outs = await asyncio.gather(
                batcher.submit(make_request(scheme="sqrt", bandwidth=0.01)),
                batcher.submit(make_request(scheme="sqrt", bandwidth=0.02)),
                batcher.submit(make_request(scheme="prop")),
                batcher.submit(make_request(scheme="sqrt", n=4)),
            )
        finally:
            await batcher.stop()
        return outs

    outs = run(main())
    assert sizes == [4]  # one collection window...
    # ...but only the two (sqrt, 3 apps) requests stacked together; the
    # prop request and the 4-app request each solved in their own group
    assert sorted(size for _, size in outs) == [1, 1, 2, 2]


def test_solo_request_latency_is_bounded_by_window():
    async def main():
        batcher = MicroBatcher(max_batch_size=64, max_wait_ms=100.0)
        await batcher.start()
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            await asyncio.wait_for(batcher.submit(make_request()), timeout=10.0)
        finally:
            await batcher.stop()
        return loop.time() - start

    # a lone request pays (at most) the collection window, never more
    elapsed = run(main())
    assert elapsed < 2.0


def test_same_group_requests_solved_together():
    sizes = []

    async def main():
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=20.0, on_batch=sizes.append)
        await batcher.start()
        try:
            outs = await asyncio.gather(
                *[batcher.submit(make_request(0.005 * (i + 1))) for i in range(4)]
            )
        finally:
            await batcher.stop()
        return outs

    outs = run(main())
    assert [size for _, size in outs] == [4, 4, 4, 4]


def test_solver_error_propagates_to_every_waiter():
    async def main():
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=20.0)
        await batcher.start()
        # bypass parse-time validation: the kernel itself must reject a
        # non-finite matrix and fail only the waiters of that group
        from repro.service.protocol import PartitionRequest

        good = make_request()
        bad = PartitionRequest(
            scheme="sqrt",
            apc_alone=(float("inf"), 1.0),
            api=None,
            bandwidth=0.01,
            metrics=(),
        )
        results = await asyncio.gather(
            batcher.submit(bad), batcher.submit(bad), return_exceptions=True
        )
        good_row, _ = await batcher.submit(good)
        await batcher.stop()
        return results, good_row

    results, good_row = run(main())
    assert all(isinstance(r, Exception) for r in results)
    assert np.all(np.isfinite(good_row))  # batcher kept serving


def test_submit_after_stop_raises():
    async def main():
        batcher = MicroBatcher()
        await batcher.start()
        await batcher.stop()
        with pytest.raises(RuntimeError):
            await batcher.submit(make_request())

    run(main())


def test_stop_fails_queued_requests():
    async def main():
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=10.0)
        # enqueue without the collector running: start then immediately
        # freeze by not yielding control until stop
        await batcher.start()
        future = asyncio.ensure_future(batcher.submit(make_request()))
        await asyncio.sleep(0.05)  # let it resolve normally
        assert future.done()
        await batcher.stop()

    run(main())
