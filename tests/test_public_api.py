"""Public-API surface tests: every documented export exists and matches
``__all__`` (guards against accidental export regressions)."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.sim",
    "repro.sim.dram",
    "repro.sim.mc",
    "repro.workloads",
    "repro.experiments",
    "repro.util",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), package
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_entries_unique(package):
    mod = importlib.import_module(package)
    assert len(set(mod.__all__)) == len(mod.__all__)


def test_top_level_quickstart_surface():
    """The README quickstart imports exactly these names."""
    import repro

    for name in ("AnalyticalModel", "AppProfile", "Workload",
                 "QoSPartitioner", "QoSTarget", "OperatingPoint"):
        assert hasattr(repro, name)


def test_version_is_pep440ish():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(p.isdigit() for p in parts)


def test_readme_mentions_every_example():
    import pathlib

    root = pathlib.Path(__file__).parent.parent
    readme = (root / "README.md").read_text()
    for example in (root / "examples").glob("*.py"):
        assert example.name in readme, f"README missing {example.name}"


def test_design_md_lists_every_core_module():
    import pathlib

    root = pathlib.Path(__file__).parent.parent
    design = (root / "DESIGN.md").read_text()
    core = root / "src" / "repro" / "core"
    for module in core.glob("*.py"):
        if module.name == "__init__.py":
            continue
        assert module.name in design, f"DESIGN.md missing core/{module.name}"
