"""End-to-end integration tests crossing every package boundary.

Each test walks a complete user journey: profile -> plan -> enforce ->
measure -> evaluate, combining the analytical core, the workloads layer
and the cycle-level simulator the way the examples (and the paper) do.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    AnalyticalModel,
    AppProfile,
    HarmonicWeightedSpeedup,
    QoSPartitioner,
    QoSTarget,
    SquareRootPartitioning,
    Workload,
)
from repro.core.qos import admit_targets
from repro.sim import (
    FCFSScheduler,
    SimConfig,
    StartTimeFairScheduler,
    run_alone,
    simulate,
)
from repro.workloads.mixes import mix_core_specs

CFG = SimConfig(warmup_cycles=100_000, measure_cycles=400_000, seed=7)


@pytest.fixture(scope="module")
def profiled():
    """(specs, profiles, ipc_alone) for hetero-6, measured once."""
    specs = mix_core_specs("hetero-6")
    alone = [run_alone(s, CFG) for s in specs]
    profiles = Workload.of(
        "hetero-6",
        [AppProfile(s.name, api=s.api, apc_alone=a.apc)
         for s, a in zip(specs, alone)],
    )
    ipc_alone = np.array([a.ipc for a in alone])
    return specs, profiles, ipc_alone


class TestModelPredictsSimulator:
    def test_square_root_end_to_end(self, profiled):
        """Plan with the model, enforce with STF, measure, compare."""
        specs, profiles, ipc_alone = profiled
        scheme = SquareRootPartitioning()
        beta = scheme.beta(profiles)
        sim = simulate(specs, lambda n: StartTimeFairScheduler(n, beta), CFG)

        model = AnalyticalModel(profiles, sim.total_apc)
        predicted = model.operating_point(scheme)
        np.testing.assert_allclose(
            sim.apc_shared, predicted.apc_shared, rtol=0.08
        )
        hsp = HarmonicWeightedSpeedup()
        assert hsp(sim.ipc_shared, ipc_alone) == pytest.approx(
            hsp(predicted.ipc_shared, profiles.ipc_alone), rel=0.08
        )

    def test_model_ranks_schemes_like_simulator(self, profiled):
        """The model's scheme ordering on Hsp matches the simulator's for
        every *well-separated* pair (>3% apart analytically) -- the 'use
        the model instead of simulating' value proposition.  Near-ties
        (Equal vs Proportional differ by <1% here, as in the paper) can
        legitimately flip under measurement noise."""
        from repro.core import default_schemes

        specs, profiles, ipc_alone = profiled
        hsp = HarmonicWeightedSpeedup()
        sim_vals, model_vals = {}, {}
        share_schemes = {
            k: v for k, v in default_schemes().items()
            if k in ("equal", "prop", "sqrt", "twothirds")
        }
        for name, scheme in share_schemes.items():
            beta = scheme.beta(profiles)
            sim = simulate(
                specs, lambda n, b=beta: StartTimeFairScheduler(n, b), CFG
            )
            sim_vals[name] = hsp(sim.ipc_shared, ipc_alone)
            model = AnalyticalModel(profiles, sim.total_apc)
            model_vals[name] = model.evaluate(hsp, scheme)
        names = list(share_schemes)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if abs(model_vals[a] - model_vals[b]) < 0.03 * model_vals[a]:
                    continue  # analytic near-tie: no ordering claim
                model_order = model_vals[a] > model_vals[b]
                sim_order = sim_vals[a] > sim_vals[b]
                assert model_order == sim_order, (a, b, model_vals, sim_vals)
        # and the model's top pick is the simulator's top pick
        assert max(sim_vals, key=sim_vals.get) == max(
            model_vals, key=model_vals.get
        )


class TestQoSAdmissionOnSimulator:
    def test_admitted_plan_holds_on_simulator(self, profiled):
        """Admission control's plan, enforced via STF, actually delivers
        every admitted IPC target in the cycle-level simulator."""
        specs, profiles, _ = profiled
        light_apps = sorted(
            profiles, key=lambda a: a.apc_alone
        )[:2]
        targets = [
            QoSTarget(a.name, a.ipc_alone * 0.7) for a in light_apps
        ]
        result = admit_targets(
            profiles, 0.0094, targets, best_effort_floor=0.001
        )
        assert result.n_admitted >= 1
        sim = simulate(
            specs,
            lambda n, b=result.plan.beta: StartTimeFairScheduler(n, b),
            CFG,
        )
        for t in result.admitted:
            i = profiles.index_of(t.app_name)
            assert sim.ipc_shared[i] >= t.ipc_target * 0.88, t

    def test_planner_matches_partitioner(self, profiled):
        _, profiles, _ = profiled
        app = min(profiles, key=lambda a: a.apc_alone)
        target = QoSTarget(app.name, app.ipc_alone * 0.5)
        direct = QoSPartitioner().plan(profiles, 0.0094, [target])
        admitted = admit_targets(profiles, 0.0094, [target])
        np.testing.assert_allclose(
            direct.apc_shared, admitted.plan.apc_shared
        )


class TestFrontierOnSimulator:
    def test_analytic_frontier_peak_holds_in_simulation(self, profiled):
        """Three family members (alpha = 0.25/0.5/1.0): the analytically
        best alpha for Hsp (0.5, Square_root) also measures best in the
        simulator (the tail orderings are near-ties; see the ranking test)."""
        from repro.core import PowerPartitioning, power_family_frontier

        specs, profiles, ipc_alone = profiled
        alphas = [0.25, 0.5, 1.0]
        hsp = HarmonicWeightedSpeedup()
        measured = []
        for alpha in alphas:
            beta = PowerPartitioning(alpha).beta(profiles)
            sim = simulate(
                specs, lambda n, b=beta: StartTimeFairScheduler(n, b), CFG
            )
            measured.append(hsp(sim.ipc_shared, ipc_alone))
        points = power_family_frontier(
            profiles, 0.0094, alphas=np.array(alphas)
        )
        analytic = [p["hsp"] for p in points]
        assert int(np.argmax(analytic)) == 1  # alpha = 0.5
        # measured: alpha=0.5 is at (or within noise of) the top, and
        # clearly beats the fairness-optimal end of the family
        assert measured[1] >= max(measured) * 0.98
        assert measured[1] > measured[2] * 1.02


class TestBandwidthConservationAcrossStack:
    def test_total_apc_invariant_across_schemes(self, profiled):
        """Eq. (2): utilized bandwidth is (nearly) scheme-invariant for a
        saturating workload -- the model's central assumption, end to end."""
        specs, profiles, _ = profiled
        totals = []
        for beta in (
            np.full(4, 0.25),
            SquareRootPartitioning().beta(profiles),
        ):
            sim = simulate(
                specs, lambda n, b=beta: StartTimeFairScheduler(n, b), CFG
            )
            totals.append(sim.total_apc)
        fcfs = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        totals.append(fcfs.total_apc)
        assert max(totals) / min(totals) < 1.06, totals
