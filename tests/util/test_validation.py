"""Unit tests for validation helpers and the error hierarchy."""

import numpy as np
import pytest

from repro.util.errors import (
    ConfigurationError,
    InfeasibleError,
    ReproError,
    SimulationError,
)
from repro.util.validation import (
    as_float_array,
    check_finite,
    check_nonnegative,
    check_positive,
    check_probability,
    check_same_length,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, InfeasibleError, SimulationError):
            assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise InfeasibleError("x")


class TestCheckers:
    def test_check_positive_passthrough(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", bad)

    def test_check_nonnegative(self):
        assert check_nonnegative("x", 0.0) == 0.0
        with pytest.raises(ConfigurationError):
            check_nonnegative("x", -0.1)

    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_check_probability_accepts(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan")])
    def test_check_probability_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability("p", bad)

    def test_check_finite(self):
        assert check_finite("x", 3.0) == 3.0
        with pytest.raises(ConfigurationError):
            check_finite("x", float("inf"))

    def test_check_same_length(self):
        check_same_length("a", [1, 2], "b", [3, 4])
        with pytest.raises(ConfigurationError):
            check_same_length("a", [1], "b", [3, 4])


class TestAsFloatArray:
    def test_converts_list(self):
        arr = as_float_array("v", [1, 2, 3])
        assert arr.dtype == float
        np.testing.assert_allclose(arr, [1.0, 2.0, 3.0])

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            as_float_array("v", np.ones((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            as_float_array("v", [1.0, float("nan")])
