"""Unit tests for the persistent profiling cache (repro.util.cache)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.sim.cpu import CoreSpec
from repro.sim.dram.config import DRAMConfig
from repro.sim.engine import SimConfig
from repro.util.cache import (
    CacheStats,
    SimCache,
    atomic_write_json,
    config_digest,
)


def _hammer_same_key(directory: str, writer_id: int, n_writes: int) -> None:
    """Worker: repeatedly overwrite one shared cache entry."""
    cache = SimCache(directory)
    for i in range(n_writes):
        cache.put(
            "shared-key",
            {"apc_alone": float(writer_id), "ipc_alone": float(i), "n": 64},
        )


class TestConfigDigest:
    def test_deterministic_for_equal_configs(self):
        a = config_digest("alone-point", SimConfig(seed=3))
        b = config_digest("alone-point", SimConfig(seed=3))
        assert a == b and len(a) == 64

    def test_seed_changes_key(self):
        assert config_digest(SimConfig(seed=3)) != config_digest(SimConfig(seed=4))

    def test_same_name_different_timing_distinct(self):
        """The bug the digest fixes: two DRAM configs sharing a name but
        differing in a timing parameter must not share a cache entry."""
        fast = DRAMConfig(name="ddr", trcd_cycles=10.0)
        slow = DRAMConfig(name="ddr", trcd_cycles=20.0)
        assert config_digest(fast) != config_digest(slow)

    def test_nested_dataclass_fields_reach_the_key(self):
        base = CoreSpec(name="x", api=0.01, ipc_peak=1.0, mlp=8)
        tweaked = dataclasses.replace(
            base, stream=dataclasses.replace(base.stream, row_locality=0.9)
        )
        assert config_digest(base) != config_digest(tweaked)

    def test_purpose_tag_distinguishes_uses(self):
        cfg = SimConfig()
        assert config_digest("alone-point", cfg) != config_digest("other", cfg)

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            config_digest(object())


class TestSimCache:
    def test_round_trip(self, tmp_path):
        cache = SimCache(tmp_path)
        cache.put("k1", {"apc_alone": 0.004, "ipc_alone": 0.5})
        assert cache.get("k1") == {"apc_alone": 0.004, "ipc_alone": 0.5}

    def test_missing_key_is_none(self, tmp_path):
        assert SimCache(tmp_path).get("nope") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SimCache(tmp_path)
        cache.put("k", {"v": 1})
        cache.path_for("k").write_text("{ not json")
        assert cache.get("k") is None

    def test_non_dict_payload_is_a_miss(self, tmp_path):
        cache = SimCache(tmp_path)
        cache.path_for("k").parent.mkdir(parents=True, exist_ok=True)
        cache.path_for("k").write_text(json.dumps([1, 2]))
        assert cache.get("k") is None

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = SimCache(tmp_path)
        for i in range(5):
            cache.put(f"k{i}", {"v": i})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".json"]
        assert leftovers == []

    def test_overwrite_is_atomic_replace(self, tmp_path):
        cache = SimCache(tmp_path)
        cache.put("k", {"v": 1})
        cache.put("k", {"v": 2})
        assert cache.get("k") == {"v": 2}
        assert len(list(tmp_path.iterdir())) == 1

    def test_env_opt_out_disables_io(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = SimCache(tmp_path / "never")
        assert not cache.enabled
        cache.put("k", {"v": 1})
        assert cache.get("k") is None
        assert not (tmp_path / "never").exists()

    def test_env_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "diverted"))
        cache = SimCache()
        assert cache.directory == tmp_path / "diverted"

    def test_clear_removes_entries(self, tmp_path):
        cache = SimCache(tmp_path)
        for i in range(3):
            cache.put(f"k{i}", {"v": i})
        assert cache.clear() == 3
        assert cache.get("k0") is None
        assert cache.clear() == 0


class TestCacheStats:
    def test_fresh_stats_are_zero(self):
        stats = CacheStats()
        assert (stats.hits, stats.misses, stats.puts) == (0, 0, 0)
        assert stats.lookups == 0
        assert stats.hit_rate == 0.0

    def test_hit_miss_put_counting(self, tmp_path):
        cache = SimCache(tmp_path)
        assert cache.get("k") is None  # miss
        cache.put("k", {"v": 1})  # put
        assert cache.get("k") == {"v": 1}  # hit
        assert cache.get("k") == {"v": 1}  # hit
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert cache.stats.hits == 2
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = SimCache(tmp_path)
        cache.put("k", {"v": 1})
        cache.path_for("k").write_text("{ not json")
        assert cache.get("k") is None
        assert cache.stats.misses == 1

    def test_disabled_cache_counts_misses(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = SimCache(tmp_path)
        cache.put("k", {"v": 1})
        assert cache.get("k") is None
        assert cache.stats.puts == 0
        assert cache.stats.misses == 1

    def test_cache_stats_helper_shape(self, tmp_path):
        cache = SimCache(tmp_path)
        cache.get("nope")
        cache.put("k", {"v": 1})
        cache.get("k")
        assert cache.cache_stats() == {
            "hits": 1,
            "misses": 1,
            "puts": 1,
            "lookups": 2,
            "hit_rate": 0.5,
        }


class TestAtomicWriteJson:
    def test_returns_true_and_writes(self, tmp_path):
        path = tmp_path / "deep" / "value.json"
        assert atomic_write_json(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}

    def test_failure_reports_false(self, tmp_path):
        target = tmp_path / "file-not-dir" / "x.json"
        (tmp_path / "file-not-dir").write_text("occupied")
        assert not atomic_write_json(target, {"a": 1})

    def test_no_temp_residue(self, tmp_path):
        for i in range(20):
            atomic_write_json(tmp_path / "v.json", {"i": i})
        assert [p.name for p in tmp_path.iterdir()] == ["v.json"]


class TestConcurrentWriters:
    """Two invocations profiling the same benchmark race on one entry
    file; readers must never observe a torn entry (the regression the
    atomic temp-file + rename in SimCache.put exists to prevent)."""

    def test_same_key_hammering_never_tears(self, tmp_path):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        n_writers, n_writes = 3, 40
        procs = [
            ctx.Process(
                target=_hammer_same_key, args=(str(tmp_path), w, n_writes)
            )
            for w in range(n_writers)
        ]
        for p in procs:
            p.start()
        reader = SimCache(tmp_path)
        observed = 0
        while any(p.is_alive() for p in procs):
            value = reader.get("shared-key")
            if value is not None:
                # a torn write would json-decode-fail (-> None) or lose
                # keys; every observed value must be complete
                assert set(value) == {"apc_alone", "ipc_alone", "n"}
                assert value["n"] == 64
                observed += 1
        for p in procs:
            p.join()
            assert p.exitcode == 0
        assert observed > 0  # the reader really raced the writers
        # the losing writers' temp files were cleaned up or renamed
        assert [p.name for p in tmp_path.iterdir()] == ["shared-key.json"]
        final = SimCache(tmp_path).get("shared-key")
        assert final is not None and final["ipc_alone"] == float(n_writes - 1)
