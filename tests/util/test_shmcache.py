"""SharedResultCache: seqlock correctness, eviction, multi-process use."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.util.shmcache import SharedResultCache


@pytest.fixture()
def cache():
    c = SharedResultCache.create(slots=16, value_bytes=256)
    yield c
    c.destroy()


# ----------------------------------------------------------------------
# single-process semantics
# ----------------------------------------------------------------------
def test_roundtrip(cache):
    value = {"beta": [0.5, 0.5], "source": "analytic"}
    assert cache.put("key-a", value) is True
    assert cache.get("key-a") == value
    assert cache.stats.hits == 1


def test_miss_returns_none(cache):
    assert cache.get("never-stored") is None
    assert cache.stats.misses == 1


def test_overwrite_same_key(cache):
    cache.put("k", {"v": 1})
    cache.put("k", {"v": 2})
    assert cache.get("k") == {"v": 2}
    assert len(cache) == 1


def test_oversized_value_is_rejected_not_stored(cache):
    big = {"blob": "x" * 4096}
    assert cache.put("big", big) is False
    assert cache.get("big") is None
    assert cache.stats.rejects == 1


def test_eviction_prefers_empty_then_oldest(cache):
    # 16 slots, probe window 4: overfilling must never raise, and
    # recently-written keys must survive a same-bucket eviction
    for i in range(100):
        assert cache.put(f"key-{i}", {"i": i}) is True
    assert cache.get("key-99") == {"i": 99}
    assert 0 < len(cache) <= 16


def test_len_and_snapshot(cache):
    cache.put("a", {"x": 1})
    snap = cache.snapshot()
    assert snap["slots"] == 16
    assert snap["used"] == len(cache) == 1
    assert snap["segment"] == cache.name


def test_attach_sees_creators_writes(cache):
    other = SharedResultCache.attach(cache.name)
    try:
        cache.put("shared-key", {"answer": 42})
        assert other.get("shared-key") == {"answer": 42}
        other.put("reverse", {"ok": True})
        assert cache.get("reverse") == {"ok": True}
    finally:
        other.close()


def test_close_then_destroy_is_idempotent():
    c = SharedResultCache.create(slots=4, value_bytes=128)
    c.destroy()
    c.destroy()  # second destroy must be a no-op, not an OSError


def test_torn_slot_is_a_miss_not_garbage(cache):
    cache.put("k", {"v": 1})
    # simulate a writer dying mid-write: force the version word odd
    slot = next(
        s for s in range(cache.slots)
        if cache._read_version(cache._slot_offset(s)) % 2 == 0
        and cache._read_version(cache._slot_offset(s)) > 0
    )
    offset = cache._slot_offset(slot)
    cache._write_version(offset, cache._read_version(offset) + 1)
    assert cache.get("k") is None  # detectably torn, never wrong data
    # the next put to that key heals the slot
    cache.put("k", {"v": 2})
    assert cache.get("k") == {"v": 2}


def test_corrupt_payload_fails_crc(cache):
    cache.put("k", {"v": 1})
    # flip payload bytes without touching the version word: the CRC
    # must catch what the seqlock cannot
    slot = next(
        s for s in range(cache.slots)
        if cache._read_version(cache._slot_offset(s)) > 0
    )
    start = cache._slot_offset(slot) + 32
    cache._shm.buf[start] = cache._shm.buf[start] ^ 0xFF
    assert cache.get("k") is None
    assert cache.stats.races >= 1


# ----------------------------------------------------------------------
# cross-process
# ----------------------------------------------------------------------
def _child_put(name, key, value):
    c = SharedResultCache.attach(name)
    try:
        c.put(key, value)
    finally:
        c.close()


def _child_get(name, key, queue):
    c = SharedResultCache.attach(name)
    try:
        queue.put(c.get(key))
    finally:
        c.close()


def test_cross_process_put_then_get(cache):
    ctx = multiprocessing.get_context("fork")
    put = ctx.Process(target=_child_put, args=(cache.name, "xp", {"from": "child"}))
    put.start()
    put.join(timeout=30)
    assert put.exitcode == 0
    assert cache.get("xp") == {"from": "child"}

    cache.put("xp2", {"from": "parent"})
    queue = ctx.Queue()
    get = ctx.Process(target=_child_get, args=(cache.name, "xp2", queue))
    get.start()
    value = queue.get(timeout=30)
    get.join(timeout=30)
    assert value == {"from": "parent"}


def test_child_exit_does_not_unlink_segment(cache):
    # the attach must opt out of the resource tracker: a child exiting
    # (the common case: worker restart) must not destroy the segment
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_child_put, args=(cache.name, "still", {"here": 1}))
    proc.start()
    proc.join(timeout=30)
    assert proc.exitcode == 0
    reattached = SharedResultCache.attach(cache.name)
    try:
        assert reattached.get("still") == {"here": 1}
    finally:
        reattached.close()
