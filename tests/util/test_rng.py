"""Unit tests for deterministic RNG streams (repro.util.rng)."""

import numpy as np
import pytest

from repro.util.rng import RngStream, derive_seed, spawn_streams


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64bit_range(self):
        for name in ("x", "core.0", "stream.15.povray"):
            s = derive_seed(123456789, name)
            assert 0 <= s < 2**64

    def test_no_hash_salt_dependence(self):
        """The derivation must be stable across processes: a specific
        known value pins it down."""
        # regression anchor -- if this changes, all baked calibration
        # numbers silently shift
        assert derive_seed(2013, "core.0.lbm") == derive_seed(2013, "core.0.lbm")
        a = derive_seed(2013, "core.0.lbm")
        b = derive_seed(2013, "core.0.lbm"[:])  # distinct str object
        assert a == b


class TestRngStream:
    def test_same_seed_same_draws(self):
        a, b = RngStream(7, "s"), RngStream(7, "s")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_independent(self):
        a, b = RngStream(7, "s1"), RngStream(7, "s2")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_exponential_mean(self):
        s = RngStream(3, "e")
        draws = s.exponential_batch(10.0, 20_000)
        assert float(np.mean(draws)) == pytest.approx(10.0, rel=0.05)

    def test_integers_range(self):
        s = RngStream(3, "i")
        draws = [s.integers(0, 8) for _ in range(500)]
        assert min(draws) >= 0 and max(draws) < 8
        assert len(set(draws)) == 8

    def test_uniform_range(self):
        s = RngStream(3, "u")
        draws = [s.uniform(2.0, 3.0) for _ in range(100)]
        assert all(2.0 <= d < 3.0 for d in draws)

    def test_geometric_positive(self):
        s = RngStream(3, "g")
        assert all(s.geometric(0.3) >= 1 for _ in range(100))

    def test_choice_with_probabilities(self):
        s = RngStream(3, "c")
        p = np.array([0.0, 1.0, 0.0])
        assert all(s.choice(3, p) == 1 for _ in range(20))

    def test_spawn_streams(self):
        streams = spawn_streams(9, ["a", "b"])
        assert set(streams) == {"a", "b"}
        assert streams["a"].seed != streams["b"].seed
