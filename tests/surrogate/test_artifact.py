"""Artifact round-trip, digest pinning, and the serialization gate."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.surrogate.artifact import (
    MODEL_FILENAME,
    load_model,
    save_model,
    try_load_model,
)
from repro.surrogate.fit import QualityThresholds
from repro.surrogate.grants import normalized_grants
from repro.util.errors import ConfigurationError, SurrogateQualityError

from tests.surrogate.conftest import FAKE_DIGEST, make_model


def test_round_trip_is_bit_identical(tmp_path, rng):
    """Coefficients and every stored number survive JSON unchanged."""
    model = make_model(("sqrt", "prop"))
    # perturb the coefficients with full-precision random floats: the
    # round-trip must preserve them exactly (shortest-roundtrip repr)
    fits = {
        name: type(fit)(
            **{
                **fit.as_dict(),
                "coef": tuple(rng.uniform(-1, 1, size=len(fit.coef)).tolist()),
                "terms": fit.terms,
            }
        )
        for name, fit in model.fits.items()
    }
    model = type(model)(
        sweep_digest=model.sweep_digest,
        fits=fits,
        thresholds=model.thresholds,
        defaults=model.defaults,
        settings=model.settings,
    )
    path = save_model(model, tmp_path)
    assert path == tmp_path / MODEL_FILENAME
    loaded = load_model(tmp_path)
    for name, fit in model.fits.items():
        assert loaded.fits[name].coef == fit.coef  # exact, not approx
        assert loaded.fits[name].terms == fit.terms
        assert loaded.fits[name].r2 == fit.r2
        assert loaded.fits[name].mape == fit.mape
    assert loaded.sweep_digest == model.sweep_digest
    assert loaded.defaults == model.defaults
    assert loaded.thresholds == model.thresholds
    # the content-addressed copy is byte-identical to the serving name
    addressed = tmp_path / f"{model.sweep_digest}.json"
    assert addressed.read_bytes() == path.read_bytes()


def test_save_refuses_below_gate(tmp_path):
    bad = make_model(r2=0.5)
    with pytest.raises(SurrogateQualityError):
        save_model(bad, tmp_path)
    assert not (tmp_path / MODEL_FILENAME).exists()


def test_load_rejects_stale_digest(tmp_path):
    save_model(make_model(), tmp_path)
    with pytest.raises(ConfigurationError, match="stale"):
        load_model(tmp_path, expected_digest="cd" * 32)
    # matching digest loads fine
    assert load_model(tmp_path, expected_digest=FAKE_DIGEST).schemes == ("sqrt",)


def test_load_rejects_missing_corrupt_and_foreign_files(tmp_path):
    with pytest.raises(ConfigurationError, match="no surrogate artifact"):
        load_model(tmp_path / "nope")
    bad = tmp_path / MODEL_FILENAME
    bad.write_text("{not json")
    with pytest.raises(ConfigurationError, match="corrupt"):
        load_model(tmp_path)
    bad.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(ConfigurationError, match="not a surrogate model"):
        load_model(tmp_path)


def test_load_rejects_unknown_schema_version(tmp_path):
    path = save_model(make_model(), tmp_path)
    data = json.loads(path.read_text())
    data["schema_version"] = 999
    path.write_text(json.dumps(data))
    with pytest.raises(ConfigurationError, match="schema"):
        load_model(tmp_path)


def test_load_rechecks_the_stored_report_card(tmp_path):
    """A hand-edited below-gate artifact cannot reach the serving path."""
    path = save_model(make_model(), tmp_path)
    data = json.loads(path.read_text())
    data["schemes"]["sqrt"]["r2"] = 0.4
    path.write_text(json.dumps(data))
    with pytest.raises(SurrogateQualityError):
        load_model(tmp_path)
    model, reason = try_load_model(tmp_path)
    assert model is None
    assert "quality gate" in reason


def test_load_honors_caller_thresholds_over_stored_ones(tmp_path):
    """An artifact claiming laxer thresholds does not get to serve."""
    path = save_model(make_model(), tmp_path)
    data = json.loads(path.read_text())
    data["schemes"]["sqrt"]["mape"] = 0.2  # 20% error...
    data["thresholds"]["max_mape"] = 0.5  # ...self-certified as fine
    path.write_text(json.dumps(data))
    with pytest.raises(SurrogateQualityError):
        load_model(tmp_path)  # code-level gate wins
    lax = load_model(tmp_path, thresholds=QualityThresholds(max_mape=0.5))
    assert lax.fits["sqrt"].mape == 0.2


def test_fabricated_min_xg_model_predicts_the_roofline(tmp_path, rng):
    """coef = 1 on min(x, g): predictions equal the clipped roofline."""
    model = load_model(save_model(make_model(), tmp_path))
    apc = rng.uniform(5e-4, 8e-3, size=(6, 4))
    band = rng.uniform(3e-3, 2e-2, size=6)
    got = model.predict("sqrt", apc, band)
    grants = normalized_grants("sqrt", apc, band)
    want = np.minimum(grants.x, grants.g) * band[:, None]
    np.testing.assert_allclose(got, want, rtol=1e-12, atol=0)


def test_predict_unknown_scheme_raises(model):
    with pytest.raises(ConfigurationError, match="no fit for scheme"):
        model.predict("prio_apc", np.full((1, 2), 0.004), np.array([0.01]))
