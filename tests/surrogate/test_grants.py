"""The lean grant kernel: agreement with repro.core, batch invariance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import batch_allocate
from repro.surrogate.grants import normalized_grants
from repro.util.errors import ConfigurationError

ALL_SCHEMES = ("equal", "sqrt", "twothirds", "prop", "prio_apc", "prio_api")


def _random_problem(rng, k=12, n=5):
    apc = rng.uniform(5e-4, 8e-3, size=(k, n))
    band = rng.uniform(3e-3, 2e-2, size=k)
    api = rng.uniform(1e-3, 0.08, size=(k, n))
    return apc, band, api


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_agrees_with_core_solver(scheme, rng):
    """Same math as batch_allocate, leaner op order: ~1 ulp agreement."""
    apc, band, api = _random_problem(rng)
    grants = normalized_grants(scheme, apc, band, api=api)
    want = batch_allocate(scheme, apc, band, api=api) / band[:, None]
    np.testing.assert_allclose(grants.g, want, rtol=1e-10, atol=1e-18)
    np.testing.assert_array_equal(grants.x, apc / band[:, None])


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_batch_invariance_is_exact(scheme, rng):
    """A row's grants are bit-identical solo and inside any stack."""
    apc, band, api = _random_problem(rng, k=16)
    stacked = normalized_grants(scheme, apc, band, api=api)
    for i in range(apc.shape[0]):
        solo = normalized_grants(
            scheme, apc[i : i + 1], band[i : i + 1], api=api[i : i + 1]
        )
        np.testing.assert_array_equal(solo.g[0], stacked.g[i])
        np.testing.assert_array_equal(solo.rank[0], stacked.rank[i])


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_grants_respect_demand_and_budget(scheme, rng):
    apc, band, api = _random_problem(rng, k=20)
    g = normalized_grants(scheme, apc, band, api=api).g
    x = apc / band[:, None]
    assert np.all(g <= x + 1e-12)
    assert np.all(g >= 0)
    assert np.all(g.sum(axis=1) <= 1.0 + 1e-9)


def test_uncontended_rows_get_their_full_demand(rng):
    # total demand below the budget: everyone is capped at demand
    apc = rng.uniform(1e-4, 3e-4, size=(4, 3))
    band = np.full(4, 0.05)
    g = normalized_grants("sqrt", apc, band).g
    np.testing.assert_array_equal(g, apc / band[:, None])


def test_priority_rank_orders_by_the_sort_key(rng):
    apc = np.array([[0.004, 0.001, 0.006]])
    band = np.array([0.005])
    grants = normalized_grants("prio_apc", apc, band)
    # argsort(apc) puts the smallest demand first -> rank 0
    assert grants.rank[0].tolist() == [0.5, 0.0, 1.0]
    api = np.array([[0.06, 0.02, 0.04]])
    grants = normalized_grants("prio_api", apc, band, api=api)
    assert grants.rank[0].tolist() == [1.0, 0.0, 0.5]


def test_share_schemes_have_neutral_rank(rng):
    apc, band, _ = _random_problem(rng, k=3, n=4)
    assert np.all(normalized_grants("prop", apc, band).rank == 0.5)


def test_non_work_conserving_strands_the_leftover(rng):
    apc = np.array([[0.001, 0.008]])
    band = np.array([0.008])
    strict = normalized_grants("equal", apc, band, work_conserving=False)
    # app 0 cannot use its half-share; the slack is NOT redistributed
    np.testing.assert_allclose(strict.g[0], [0.125, 0.5], rtol=1e-12)
    wc = normalized_grants("equal", apc, band, work_conserving=True)
    assert wc.g[0, 1] > strict.g[0, 1]


def test_unknown_scheme_and_missing_api_raise(rng):
    apc, band, _ = _random_problem(rng, k=1, n=2)
    with pytest.raises(ConfigurationError):
        normalized_grants("nope", apc, band)
    with pytest.raises(ConfigurationError):
        normalized_grants("prio_api", apc, band)  # api missing
