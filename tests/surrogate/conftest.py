"""Shared fixtures: fabricated surrogate models (no sweep required)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.surrogate.artifact import SurrogateModel
from repro.surrogate.fit import DEFAULT_TERMS, QualityThresholds, SchemeFit

#: a syntactically valid sweep digest (content addressing is by string)
FAKE_DIGEST = "ab" * 32


def make_fit(scheme: str, *, r2: float = 0.999, mape: float = 0.01) -> SchemeFit:
    """A hand-made fit whose surface is exactly ``min(x, g)``.

    ``min_xg`` is the roofline ideal-response term, so coefficient 1.0
    on it (and 0 elsewhere) yields physically sane predictions --
    every app gets its demand or its grant, whichever binds -- which
    makes end-to-end assertions exact and cheap.
    """
    coef = tuple(
        1.0 if term == "min_xg" else 0.0 for term in DEFAULT_TERMS
    )
    return SchemeFit(
        scheme=scheme,
        terms=DEFAULT_TERMS,
        coef=coef,
        r2=r2,
        mape=mape,
        n_train=96,
        n_test=24,
        ridge=False,
    )


def make_model(
    schemes: tuple[str, ...] = ("sqrt",),
    *,
    digest: str = FAKE_DIGEST,
    r2: float = 0.999,
    mape: float = 0.01,
) -> SurrogateModel:
    return SurrogateModel(
        sweep_digest=digest,
        fits={s: make_fit(s, r2=r2, mape=mape) for s in schemes},
        thresholds=QualityThresholds(),
        defaults={"row_locality": 0.6, "bank_frac": 0.9},
        settings={"preset": "test"},
    )


@pytest.fixture
def model() -> SurrogateModel:
    return make_model()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(13)
