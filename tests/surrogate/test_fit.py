"""Fit recipe on synthetic data: recovery, gating, evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.surrogate.fit import (
    DEFAULT_TERMS,
    PRIORITY_TERMS,
    QualityThresholds,
    compute_features,
    design_matrix,
    evaluate_fit,
    fit_scheme,
    fit_surface,
    predict_norm,
    terms_for_scheme,
)
from repro.surrogate.sweep import RunSample
from repro.util.errors import ConfigurationError


def synthetic_runs(rng, scheme="sqrt", n_runs=30, n_apps=4, noise=0.0):
    """Runs whose shared APC is a known linear surface over the basis.

    The target is ``0.9 * min(x, g) + 0.05 * x_sat`` (in normalized
    units) -- inside the model family, so the fit must recover it to
    numerical precision when ``noise`` is 0.
    """
    runs = []
    for _ in range(n_runs):
        apc = rng.uniform(5e-4, 8e-3, size=n_apps)
        peak = float(rng.uniform(4e-3, 1.2e-2))
        api = rng.uniform(1e-3, 0.08, size=n_apps)
        feats = compute_features(
            scheme, apc[None, :], np.array([peak]), api=api[None, :]
        )
        y = (
            0.9 * np.minimum(feats.x, feats.g)
            + 0.05 * feats.x / (1.0 + feats.load)
        ).ravel()
        y = y * (1.0 + noise * rng.standard_normal(n_apps))
        runs.append(
            RunSample(
                scheme=scheme,
                peak_apc=peak,
                api=api,
                apc_alone=apc,
                row_locality=np.full(n_apps, 0.6),
                bank_frac=np.full(n_apps, 0.9),
                apc_shared=y * peak,
            )
        )
    return runs


def test_fit_recovers_an_in_family_surface(rng):
    runs = synthetic_runs(rng)
    fit = fit_scheme("sqrt", runs)
    assert fit.r2 > 0.9999
    assert fit.mape < 1e-6
    assert fit.passes(QualityThresholds())


def test_fit_flags_a_noisy_surface(rng):
    runs = synthetic_runs(rng, noise=0.4)
    fit = fit_scheme("sqrt", runs)
    assert not fit.passes(QualityThresholds())


def test_evaluate_fit_scores_the_stored_coefficients(rng):
    runs = synthetic_runs(rng)
    fit = fit_scheme("sqrt", runs)
    r2, mape = evaluate_fit(fit, runs)
    # scoring the training runs with the final coefficients: at least
    # as good as the cross-validated report card
    assert r2 >= fit.r2 - 1e-9
    assert mape <= fit.mape + 1e-9


def test_fit_surface_groups_by_scheme(rng):
    dataset = {
        "sqrt": synthetic_runs(rng, "sqrt"),
        "prop": synthetic_runs(rng, "prop"),
    }
    report = fit_surface(dataset)
    assert set(report.fits) == {"sqrt", "prop"}
    assert report.passing
    # dataset-level serving defaults are the training means
    assert report.defaults["row_locality"] == pytest.approx(0.6)
    assert report.defaults["bank_frac"] == pytest.approx(0.9)


def test_terms_for_scheme():
    assert terms_for_scheme("sqrt") == DEFAULT_TERMS
    assert terms_for_scheme("prio_apc") == PRIORITY_TERMS
    assert set(DEFAULT_TERMS) < set(PRIORITY_TERMS)


def test_design_matrix_rejects_unknown_terms(rng):
    feats = compute_features(
        "sqrt", np.full((1, 2), 0.004), np.array([0.01])
    )
    with pytest.raises(ConfigurationError, match="unknown basis terms"):
        design_matrix(("one", "bogus"), feats)
    a = design_matrix(DEFAULT_TERMS, feats)
    assert a.shape == (2, len(DEFAULT_TERMS))


def test_predict_norm_clips_to_the_physical_envelope(rng):
    feats = compute_features(
        "sqrt", np.full((1, 3), 0.004), np.array([0.01])
    )
    huge = np.full(len(DEFAULT_TERMS), 100.0)
    assert np.all(predict_norm(DEFAULT_TERMS, huge, feats) <= feats.x)
    negative = np.full(len(DEFAULT_TERMS), -100.0)
    assert np.all(predict_norm(DEFAULT_TERMS, negative, feats) == 0.0)
