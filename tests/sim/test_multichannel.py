"""Multi-channel controller tests (engine + schedulers with channels)."""

import dataclasses

import numpy as np
import pytest

from repro.sim import (
    CoreSpec,
    DRAMConfig,
    FCFSScheduler,
    SimConfig,
    StartTimeFairScheduler,
    simulate,
)
from repro.sim.mc.fcfs import FCFSScheduler as FCFS
from repro.sim.request import Request


def two_channel_config(**kw) -> DRAMConfig:
    base = dict(n_channels=2, n_ranks=2, n_banks=8)
    base.update(kw)
    return DRAMConfig(**base)


def heavy(name="heavy") -> CoreSpec:
    return CoreSpec(name=name, api=0.05, ipc_peak=1.2, mlp=32, write_fraction=0.1)


CFG2 = SimConfig(
    dram=two_channel_config(),
    warmup_cycles=50_000,
    measure_cycles=300_000,
    seed=6,
)


class TestSchedulerChannelFilter:
    def _req(self, app: int, channel: int) -> Request:
        r = Request(app_id=app, line_addr=0, is_write=False, created=0.0)
        r.channel = channel
        return r

    def test_select_respects_channel(self):
        s = FCFS(2)
        s.enqueue(self._req(0, channel=0), 0.0)
        s.enqueue(self._req(1, channel=1), 1.0)
        picked = s.select(2.0, channel=1)
        assert picked.app_id == 1
        picked = s.select(2.0, channel=1)
        assert picked is None  # channel 1 drained
        assert s.select(2.0, channel=0).app_id == 0

    def test_has_pending_per_channel(self):
        s = FCFS(1)
        s.enqueue(self._req(0, channel=1), 0.0)
        assert s.has_pending()
        assert s.has_pending(1)
        assert not s.has_pending(0)

    def test_pending_apps_per_channel(self):
        s = FCFS(3)
        s.enqueue(self._req(0, channel=0), 0.0)
        s.enqueue(self._req(2, channel=1), 0.0)
        assert list(s.pending_apps(0)) == [0]
        assert list(s.pending_apps(1)) == [2]

    def test_stf_channel_filter_keeps_global_tags(self):
        s = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        for _ in range(4):
            s.enqueue(self._req(0, channel=0), 0.0)
            s.enqueue(self._req(1, channel=0), 0.0)
        # drain channel 0 alternately; tags advance globally
        order = [s.select(0.0, channel=0).app_id for _ in range(8)]
        assert order.count(0) == 4 and order.count(1) == 4


class TestTwoChannelEngine:
    def test_peak_bandwidth_doubles(self):
        """Two channels at the same bus rate sustain ~2x the APC."""
        specs = [heavy(f"h{i}") for i in range(4)]
        cfg1 = dataclasses.replace(
            CFG2, dram=DRAMConfig(n_channels=1, n_ranks=4, n_banks=8)
        )
        one = simulate(specs, lambda n: FCFSScheduler(n), cfg1)
        two = simulate(specs, lambda n: FCFSScheduler(n), CFG2)
        assert two.total_apc == pytest.approx(2 * one.total_apc, rel=0.08)

    def test_requests_split_across_channels(self):
        specs = [heavy(f"h{i}") for i in range(2)]
        from repro.sim.engine import Engine

        engine = Engine(specs, FCFSScheduler(2), CFG2)
        engine.run()
        served = [ch.n_served for ch in engine.dram.channels]
        assert all(s > 0 for s in served)
        # the paper's channel-MSB mapping is uniform for random streams
        assert abs(served[0] - served[1]) < 0.2 * sum(served)

    def test_share_enforcement_across_channels(self):
        """STF shares hold globally even with two independent buses."""
        specs = [heavy("a"), heavy("b")]
        beta = np.array([0.75, 0.25])
        res = simulate(specs, lambda n: StartTimeFairScheduler(n, beta), CFG2)
        ratio = res.apps[0].apc / res.apps[1].apc
        assert ratio == pytest.approx(3.0, rel=0.15)

    def test_utilization_normalized_per_channel(self):
        specs = [heavy(f"h{i}") for i in range(4)]
        res = simulate(specs, lambda n: FCFSScheduler(n), CFG2)
        assert 0.5 < res.bus_utilization <= 1.0

    def test_determinism(self):
        specs = [heavy(f"h{i}") for i in range(2)]
        r1 = simulate(specs, lambda n: FCFSScheduler(n), CFG2)
        r2 = simulate(specs, lambda n: FCFSScheduler(n), CFG2)
        np.testing.assert_array_equal(r1.apc_shared, r2.apc_shared)
