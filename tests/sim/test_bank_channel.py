"""Unit tests for bank/channel timing (repro.sim.dram.bank/channel)."""

import pytest

from repro.sim.dram.bank import Bank
from repro.sim.dram.channel import Channel
from repro.sim.dram.config import DRAMConfig, ddr2_400
from repro.sim.request import Request


def make_request(bank=0, row=0, write=False, app=0, t=0.0) -> Request:
    req = Request(app_id=app, line_addr=0, is_write=write, created=t)
    req.bank = bank
    req.row = row
    return req


def no_refresh(**kw) -> DRAMConfig:
    base = dict(trefi_cycles=0.0, trfc_cycles=0.0)
    base.update(kw)
    return DRAMConfig(**base)


class TestClosePageTiming:
    def test_first_access_pays_activate(self):
        ch = Channel(no_refresh())
        r = ch.issue(make_request(), now=0.0)
        # tRCD + CL before data, then the burst
        assert r.data_start == pytest.approx(62.5 + 62.5)
        assert r.data_end == pytest.approx(125.0 + 100.0)

    def test_close_page_repays_activate_every_time(self):
        """Close page policy: no row hits ever, even same-row accesses."""
        ch = Channel(no_refresh())
        r1 = ch.issue(make_request(bank=0, row=5), now=0.0)
        assert not r1.row_hit
        r2 = ch.issue(make_request(bank=0, row=5), now=r1.data_end)
        assert not r2.row_hit
        # second access waits for auto-precharge (tRP) then re-activates
        expected = r1.bank_ready + 62.5 + 62.5
        assert r2.data_start == pytest.approx(expected)

    def test_bank_recovery_includes_trp(self):
        ch = Channel(no_refresh())
        r = ch.issue(make_request(), now=0.0)
        assert r.bank_ready == pytest.approx(r.data_end + 62.5)

    def test_write_recovery_adds_twr(self):
        ch = Channel(no_refresh())
        r = ch.issue(make_request(write=True), now=0.0)
        assert r.bank_ready == pytest.approx(r.data_end + 75.0 + 62.5)

    def test_different_banks_overlap_on_bus(self):
        """Bank-level parallelism: a second bank's burst starts right
        after the first burst ends (activates overlap)."""
        ch = Channel(no_refresh())
        r1 = ch.issue(make_request(bank=0), now=0.0)
        r2 = ch.issue(make_request(bank=1), now=0.0)
        assert r2.data_start == pytest.approx(r1.data_end)

    def test_bus_never_double_booked(self):
        ch = Channel(no_refresh())
        ends = []
        for i in range(20):
            r = ch.issue(make_request(bank=i % 8), now=0.0)
            ends.append((r.data_start, r.data_end))
        for (s1, e1), (s2, e2) in zip(ends, ends[1:]):
            assert s2 >= e1 - 1e-9


class TestOpenPageTiming:
    def test_row_hit_skips_activate(self):
        ch = Channel(no_refresh(page_policy="open"))
        r1 = ch.issue(make_request(bank=0, row=7), now=0.0)
        assert not r1.row_hit
        r2 = ch.issue(make_request(bank=0, row=7), now=r1.bank_ready)
        assert r2.row_hit
        # only CL before data on a row hit
        assert r2.data_start == pytest.approx(
            max(r1.bank_ready + 62.5, r1.data_end)
        )

    def test_row_conflict_pays_precharge(self):
        ch = Channel(no_refresh(page_policy="open"))
        r1 = ch.issue(make_request(bank=0, row=7), now=0.0)
        r2 = ch.issue(make_request(bank=0, row=8), now=r1.bank_ready)
        assert not r2.row_hit
        # precharge + activate + CAS
        assert r2.data_start == pytest.approx(r1.bank_ready + 62.5 + 62.5 + 62.5)

    def test_row_stays_open(self):
        ch = Channel(no_refresh(page_policy="open"))
        ch.issue(make_request(bank=3, row=9), now=0.0)
        assert ch.banks[3].open_row == 9

    def test_is_row_hit_probe(self):
        ch = Channel(no_refresh(page_policy="open"))
        ch.issue(make_request(bank=3, row=9), now=0.0)
        assert ch.is_row_hit(3, 9)
        assert not ch.is_row_hit(3, 10)
        assert not ch.is_row_hit(4, 9)


class TestTurnaround:
    def test_write_to_read_pays_twtr(self):
        ch = Channel(no_refresh())
        r1 = ch.issue(make_request(bank=0, write=True), now=0.0)
        r2 = ch.issue(make_request(bank=1, write=False), now=0.0)
        assert r2.data_start == pytest.approx(r1.data_end + 37.5)

    def test_read_to_write_pays_trtw(self):
        ch = Channel(no_refresh())
        r1 = ch.issue(make_request(bank=0, write=False), now=0.0)
        r2 = ch.issue(make_request(bank=1, write=True), now=0.0)
        assert r2.data_start == pytest.approx(r1.data_end + 10.0)

    def test_same_direction_no_penalty(self):
        ch = Channel(no_refresh())
        r1 = ch.issue(make_request(bank=0, write=True), now=0.0)
        r2 = ch.issue(make_request(bank=1, write=True), now=0.0)
        assert r2.data_start == pytest.approx(r1.data_end)

    def test_first_burst_has_no_penalty(self):
        ch = Channel(no_refresh())
        r = ch.issue(make_request(write=True), now=0.0)
        assert r.data_start == pytest.approx(125.0)


class TestRefresh:
    def test_burst_pushed_past_blackout(self):
        cfg = DRAMConfig(trefi_cycles=1000.0, trfc_cycles=300.0)
        ch = Channel(cfg)
        # a burst that would overlap the t=1000 refresh is delayed to 1300
        r = ch.issue(make_request(bank=0), now=900.0)
        # activate at 900 -> data would start at 1025, burst would end 1125 > 1000
        assert r.data_start == pytest.approx(1300.0)
        assert ch.n_refreshes == 1

    def test_quiet_channel_skips_refresh_lazily(self):
        cfg = DRAMConfig(trefi_cycles=1000.0, trfc_cycles=300.0)
        ch = Channel(cfg)
        # first traffic long after several refresh intervals
        r = ch.issue(make_request(bank=0), now=5600.0)
        # blackouts at 1000..1300, 2000..2300, ... are all in the past
        assert r.data_start == pytest.approx(5725.0)

    def test_refresh_disabled(self):
        ch = Channel(no_refresh())
        r = ch.issue(make_request(), now=1e9)
        assert ch.n_refreshes == 0
        assert r.data_start == pytest.approx(1e9 + 125.0)

    def test_saturated_throughput_loses_refresh_fraction(self):
        """Back-to-back reads on many banks: throughput = peak minus the
        tRFC/tREFI refresh overhead (within ~1%)."""
        cfg = no_refresh(trefi_cycles=10_000.0, trfc_cycles=500.0)
        ch = Channel(cfg)
        t = 0.0
        n = 600
        for i in range(n):
            r = ch.issue(make_request(bank=i % 32), now=t)
            t = max(t, r.data_end - 125.0)
        window = r.data_end
        measured = n / window
        expected = (1 / 100.0) * (1 - 500.0 / 10_000.0)
        assert measured == pytest.approx(expected, rel=0.02)


class TestBankBookkeeping:
    def test_bank_counters(self):
        ch = Channel(no_refresh(page_policy="open"))
        ch.issue(make_request(bank=0, row=1), now=0.0)
        ch.issue(make_request(bank=0, row=1), now=1000.0)
        b: Bank = ch.banks[0]
        assert b.n_accesses == 2
        assert b.n_activates == 1
        assert b.n_row_hits == 1
        assert b.row_hit_rate == pytest.approx(0.5)

    def test_utilization(self):
        ch = Channel(no_refresh())
        ch.issue(make_request(bank=0), now=0.0)
        ch.issue(make_request(bank=1), now=0.0)
        assert ch.utilization(1000.0) == pytest.approx(200.0 / 1000.0)
