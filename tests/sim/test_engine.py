"""Integration-grade tests for the simulation engine (repro.sim.engine)."""

import numpy as np
import pytest

from repro.sim.cpu import CoreSpec
from repro.sim.dram.config import ddr2_400, ddr2_800, DRAMConfig
from repro.sim.engine import Engine, SimConfig, run_alone, simulate
from repro.sim.mc.fcfs import FCFSScheduler
from repro.sim.mc.priority import PriorityScheduler
from repro.sim.mc.stf import StartTimeFairScheduler
from repro.sim.stream import StreamSpec
from repro.util.errors import ConfigurationError


def heavy(name="heavy") -> CoreSpec:
    return CoreSpec(name=name, api=0.05, ipc_peak=0.5, mlp=16, write_fraction=0.1)


def light(name="light") -> CoreSpec:
    return CoreSpec(name=name, api=0.004, ipc_peak=0.5, mlp=2)


CFG = SimConfig(warmup_cycles=50_000, measure_cycles=300_000, seed=5)


class TestSimConfig:
    def test_end_cycle(self):
        assert CFG.end_cycle == 350_000

    def test_invalid_windows(self):
        with pytest.raises(ConfigurationError):
            SimConfig(warmup_cycles=-1)
        with pytest.raises(ConfigurationError):
            SimConfig(measure_cycles=0)

    def test_invalid_interference_mode(self):
        with pytest.raises(ConfigurationError):
            SimConfig(interference_mode="sometimes")

    def test_scheduler_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            Engine([heavy(), light()], FCFSScheduler(1), CFG)


class TestConservation:
    def test_bandwidth_cap_respected(self):
        """Total measured APC can never exceed the channel peak."""
        specs = [heavy(f"h{i}") for i in range(4)]
        res = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        assert res.total_apc <= ddr2_400().peak_apc + 1e-9

    def test_ipc_apc_coupling(self):
        """Eq. (1): measured API (accesses/instructions) equals the spec
        API within sampling noise, under any scheduler."""
        specs = [heavy(), light()]
        res = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        for app, spec in zip(res.apps, specs):
            assert app.api_measured == pytest.approx(spec.api, rel=0.15)

    def test_alone_run_faster_than_shared(self):
        cfg = CFG
        alone = run_alone(heavy(), cfg)
        shared = simulate(
            [heavy(), heavy("heavy2")], lambda n: FCFSScheduler(n), cfg
        )
        assert shared.apps[0].ipc < alone.ipc

    def test_bus_utilization_saturated_by_heavies(self):
        specs = [heavy(f"h{i}") for i in range(4)]
        res = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        assert res.bus_utilization > 0.9

    def test_instructions_positive(self):
        res = simulate([heavy(), light()], lambda n: FCFSScheduler(n), CFG)
        assert all(a.instructions > 0 for a in res.apps)


class TestShareEnforcement:
    def test_stf_enforces_shares_for_backlogged_apps(self):
        """Two identical saturating apps at 0.75/0.25 shares must measure
        APCs in ratio ~3:1 (Sec. IV-B enforcement)."""
        specs = [heavy("a"), heavy("b")]
        beta = np.array([0.75, 0.25])
        res = simulate(specs, lambda n: StartTimeFairScheduler(n, beta), CFG)
        ratio = res.apps[0].apc / res.apps[1].apc
        assert ratio == pytest.approx(3.0, rel=0.1)

    def test_work_conservation_spillover(self):
        """A light app cannot use its 50% share; the heavy app absorbs
        the slack (capped water-filling behaviour)."""
        specs = [heavy(), light()]
        beta = np.array([0.5, 0.5])
        res = simulate(specs, lambda n: StartTimeFairScheduler(n, beta), CFG)
        light_demand = run_alone(light(), CFG).apc
        assert res.apps[1].apc == pytest.approx(light_demand, rel=0.15)
        assert res.apps[0].apc > 0.5 * res.total_apc

    def test_priority_starves_low_rank(self):
        specs = [heavy("hi"), heavy("lo")]
        res = simulate(specs, lambda n: PriorityScheduler(n, [0, 1]), CFG)
        assert res.apps[0].apc > 5 * res.apps[1].apc

    def test_equal_shares_protect_light_app(self):
        specs = [heavy(), light()]
        fcfs = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        equal = simulate(
            specs, lambda n: StartTimeFairScheduler(n, np.array([0.5, 0.5])), CFG
        )
        assert equal.apps[1].ipc > fcfs.apps[1].ipc


class TestDeterminism:
    def test_same_seed_identical_results(self):
        specs = [heavy(), light()]
        r1 = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        r2 = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        np.testing.assert_array_equal(r1.apc_shared, r2.apc_shared)
        np.testing.assert_array_equal(r1.ipc_shared, r2.ipc_shared)

    def test_different_seed_differs(self):
        import dataclasses

        specs = [heavy(), light()]
        r1 = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        r2 = simulate(
            specs, lambda n: FCFSScheduler(n),
            dataclasses.replace(CFG, seed=99),
        )
        assert not np.array_equal(r1.apc_shared, r2.apc_shared)


class TestBandwidthScaling:
    def test_double_bus_doubles_saturated_throughput(self):
        import dataclasses

        specs = [heavy(f"h{i}") for i in range(4)]
        r32 = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        cfg64 = dataclasses.replace(CFG, dram=ddr2_800())
        r64 = simulate(specs, lambda n: FCFSScheduler(n), cfg64)
        assert r64.total_apc == pytest.approx(2 * r32.total_apc, rel=0.05)


class TestProfilerIntegration:
    def test_alone_estimates_close_to_truth(self):
        """Sec. IV-C: estimated APC_alone within ~25% of the real alone
        run, under contention, for every app."""
        specs = [heavy(), light()]
        truth = np.array([run_alone(s, CFG).apc for s in specs])
        res = simulate(
            specs, lambda n: StartTimeFairScheduler(n, np.array([0.5, 0.5])), CFG
        )
        err = np.abs(res.apc_alone_est - truth) / truth
        assert np.all(err < 0.25), (res.apc_alone_est, truth)

    def test_estimates_capped_at_peak(self):
        specs = [heavy(f"h{i}") for i in range(4)]
        res = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        assert np.all(res.apc_alone_est <= ddr2_400().peak_apc + 1e-12)


class TestEpochHook:
    def test_repartition_hook_called(self):
        import dataclasses

        calls = []

        def hook(now, profiler, scheduler):
            calls.append(now)
            scheduler.update_shares(np.array([0.6, 0.4]))

        cfg = dataclasses.replace(CFG, epoch_cycles=100_000.0)
        specs = [heavy(), light()]
        simulate(
            specs,
            lambda n: StartTimeFairScheduler(n, np.array([0.5, 0.5])),
            cfg,
            repartition_hook=hook,
        )
        assert len(calls) == 3  # epochs at 100k, 200k, 300k (end 350k)

    def test_epoch_updates_profiler_estimates(self):
        import dataclasses

        seen = []

        def hook(now, profiler, scheduler):
            seen.append(profiler.estimates.copy())

        cfg = dataclasses.replace(CFG, epoch_cycles=100_000.0)
        simulate([heavy(), light()], lambda n: FCFSScheduler(n), cfg,
                 repartition_hook=hook)
        assert not np.any(np.isnan(seen[-1]))


class TestResultStructure:
    def test_names_and_shapes(self):
        specs = [heavy(), light()]
        res = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        assert res.names == ("heavy", "light")
        assert res.apc_shared.shape == (2,)
        assert res.window_cycles == CFG.measure_cycles

    def test_speedups_validation(self):
        res = simulate([heavy()], lambda n: FCFSScheduler(n), CFG)
        with pytest.raises(ConfigurationError):
            res.speedups(np.ones(3))

    def test_estimated_profiles_roundtrip(self):
        res = simulate([heavy(), light()], lambda n: FCFSScheduler(n), CFG)
        wl = res.estimated_profiles(api=np.array([0.05, 0.004]))
        assert wl.n == 2
        np.testing.assert_allclose(wl.apc_alone, res.apc_alone_est)
