"""End-to-end open-page / FR-FCFS tests (paper Sec. II-A1 background).

The paper's baseline is close-page; FR-FCFS + open-page is the classic
utilization-first scheduler it contrasts against.  These tests drive the
full engine in open-page mode and check the expected phenomena: row hits
appear, locality lowers latency, and FR-FCFS biases service toward
high-locality applications (the starvation concern of Sec. II-A2).
"""

import dataclasses

import numpy as np
import pytest

from repro.sim import CoreSpec, FCFSScheduler, FRFCFSScheduler, SimConfig, simulate
from repro.sim.dram.config import DRAMConfig
from repro.sim.engine import Engine
from repro.sim.stream import StreamSpec


def open_page_config(**kw) -> SimConfig:
    dram = DRAMConfig(page_policy="open", **kw)
    return SimConfig(
        dram=dram, warmup_cycles=50_000, measure_cycles=250_000, seed=17
    )


def streamy(name: str, locality: float) -> CoreSpec:
    return CoreSpec(
        name=name,
        api=0.05,
        ipc_peak=0.5,
        mlp=16,
        write_fraction=0.1,
        stream=StreamSpec(row_locality=locality, footprint_rows=1024),
    )


def frfcfs_factory(engine_holder: list):
    """Build FR-FCFS wired to the engine's row-hit probe."""

    def factory(n: int) -> FRFCFSScheduler:
        sched = FRFCFSScheduler(n)
        engine_holder.append(sched)
        return sched

    return factory


def simulate_frfcfs(specs, cfg):
    """Simulate with FR-FCFS properly wired to the DRAM row-hit state."""
    holder: list = []
    sched_box: list = []

    def factory(n):
        s = FRFCFSScheduler(n)
        sched_box.append(s)
        return s

    engine = Engine(specs, factory(len(specs)), cfg)
    sched_box[0].row_hit_probe = engine.dram.is_row_hit
    return engine.run()


class TestOpenPageEndToEnd:
    def test_row_hits_observed(self):
        cfg = open_page_config()
        specs = [streamy("hi", 0.8), streamy("lo", 0.0)]
        res = simulate_frfcfs(specs, cfg)
        assert res.row_hit_rate > 0.15

    def test_close_page_never_hits(self):
        cfg = SimConfig(warmup_cycles=50_000, measure_cycles=200_000, seed=17)
        specs = [streamy("hi", 0.8)]
        res = simulate(specs, lambda n: FCFSScheduler(n), cfg)
        assert res.row_hit_rate == 0.0

    def test_locality_raises_hit_rate(self):
        cfg = open_page_config()
        low = simulate_frfcfs([streamy("a", 0.1)], cfg)
        high = simulate_frfcfs([streamy("a", 0.9)], cfg)
        assert high.row_hit_rate > low.row_hit_rate + 0.2

    def test_frfcfs_favors_high_locality_app(self):
        """Sec. II-A2: biased scheduling -- the high-locality app captures
        more bandwidth under FR-FCFS than under locality-blind FCFS."""
        cfg = open_page_config()
        specs = [streamy("local", 0.9), streamy("random", 0.0)]
        fr = simulate_frfcfs(specs, cfg)
        fcfs = simulate(specs, lambda n: FCFSScheduler(n), cfg)
        fr_share = fr.apps[0].apc / fr.total_apc
        fcfs_share = fcfs.apps[0].apc / fcfs.total_apc
        assert fr_share > fcfs_share + 0.03

    def test_open_page_lowers_latency_for_local_streams(self):
        """Row hits skip the activate: a high-locality stream sees lower
        mean latency open-page than close-page."""
        spec = streamy("a", 0.9)
        open_res = simulate_frfcfs([spec], open_page_config())
        close_res = simulate(
            [spec],
            lambda n: FCFSScheduler(n),
            SimConfig(warmup_cycles=50_000, measure_cycles=250_000, seed=17),
        )
        assert open_res.apps[0].mean_latency < close_res.apps[0].mean_latency

    def test_bandwidth_conserved_open_page(self):
        cfg = open_page_config()
        specs = [streamy(f"s{i}", 0.5) for i in range(4)]
        res = simulate_frfcfs(specs, cfg)
        assert res.total_apc <= cfg.dram.peak_apc + 1e-9
        assert res.bus_utilization > 0.9
