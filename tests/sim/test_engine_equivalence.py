"""Bit-identity of the optimized engine against the pre-change golden.

``golden_simresults.json`` was generated from the engine *before* the
performance work (indexed scheduler queues, batched stream draws,
``__slots__`` records, inlined channel issue); every fast path must
reproduce each ``SimResult`` float-for-float.  The eleven cases span
schedulers (FCFS, STF, priority, FR-FCFS, PAR-BS, TCM), page policies,
channel counts, writes, phases, epochs and bank partitioning, so any
optimization that perturbs event order or RNG consumption fails here.
"""

from __future__ import annotations

import json

import pytest

from tests.sim.make_golden import GOLDEN_PATH, golden_cases, result_record

_GOLDEN = json.loads(GOLDEN_PATH.read_text())
_CASES = golden_cases()


def test_fixture_covers_all_cases():
    assert sorted(_GOLDEN) == sorted(_CASES)


@pytest.mark.parametrize("name", sorted(_CASES))
def test_bit_identical_to_pre_optimization_engine(name):
    record = result_record(_CASES[name]())
    golden = _GOLDEN[name]
    # compare field-by-field first for a readable diff on failure
    assert record.keys() == golden.keys()
    for key in record:
        assert record[key] == golden[key], f"{name}: {key} diverged"
