"""Unit tests for the functional cache hierarchy (repro.sim.cache)."""

import pytest

from repro.sim.cache import AccessOutcome, Cache, CacheConfig, CacheHierarchy
from repro.util.errors import ConfigurationError


class TestCacheConfig:
    def test_table2_l1_geometry(self):
        """Table II: 32KB 2-way, 64 B lines -> 256 sets."""
        cfg = CacheConfig(size_bytes=32 * 1024, ways=2)
        assert cfg.n_sets == 256

    def test_table2_l2_geometry(self):
        """Table II: 256KB 8-way -> 512 sets."""
        cfg = CacheConfig(size_bytes=256 * 1024, ways=8)
        assert cfg.n_sets == 512

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, ways=3)


class TestSingleCache:
    def test_cold_miss_then_hit(self):
        c = Cache(CacheConfig(size_bytes=1024, ways=2, line_bytes=64))
        hit, _ = c.access(5, False)
        assert not hit
        hit, _ = c.access(5, False)
        assert hit
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction_order(self):
        # 2-way, pick three lines mapping to the same set
        c = Cache(CacheConfig(size_bytes=256, ways=2, line_bytes=64))  # 2 sets
        a, b, d = 0, 2, 4  # all map to set 0
        c.access(a, False)
        c.access(b, False)
        c.access(a, False)  # a is now MRU
        c.access(d, False)  # evicts b (LRU)
        assert c.contains(a)
        assert not c.contains(b)
        assert c.contains(d)

    def test_dirty_eviction_reports_writeback(self):
        c = Cache(CacheConfig(size_bytes=256, ways=2, line_bytes=64))
        c.access(0, True)  # dirty
        c.access(2, False)
        _, victim = c.access(4, False)  # evicts line 0 (dirty)
        assert victim == 0
        assert c.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = Cache(CacheConfig(size_bytes=256, ways=2, line_bytes=64))
        c.access(0, False)
        c.access(2, False)
        _, victim = c.access(4, False)
        assert victim is None

    def test_write_hit_marks_dirty(self):
        c = Cache(CacheConfig(size_bytes=256, ways=2, line_bytes=64))
        c.access(0, False)
        c.access(0, True)  # hit, now dirty
        c.access(2, False)
        _, victim = c.access(4, False)
        assert victim == 0

    def test_miss_rate(self):
        c = Cache(CacheConfig(size_bytes=1024, ways=2))
        for addr in range(8):
            c.access(addr, False)
        for addr in range(8):
            c.access(addr, False)
        assert c.miss_rate == pytest.approx(0.5)


class TestHierarchy:
    def test_default_is_table2(self):
        h = CacheHierarchy()
        assert h.l1.config.size_bytes == 32 * 1024
        assert h.l2.config.size_bytes == 256 * 1024

    def test_l1_hit(self):
        h = CacheHierarchy()
        h.access(1)
        out = h.access(1)
        assert out.hit_level == "l1"
        assert not out.is_offchip

    def test_l2_hit_after_l1_eviction(self):
        h = CacheHierarchy(
            l1=CacheConfig(size_bytes=128, ways=1, line_bytes=64),  # 2 sets
            l2=CacheConfig(size_bytes=1024, ways=4, line_bytes=64),
        )
        h.access(0)
        h.access(2)  # evicts 0 from the 1-way L1 set; 0 still in L2
        out = h.access(0)
        assert out.hit_level == "l2"

    def test_memory_miss_counts_offchip(self):
        h = CacheHierarchy()
        out = h.access(123)
        assert out.hit_level == "memory"
        assert h.offchip_reads == 1

    def test_working_set_within_l2_generates_no_steady_traffic(self):
        h = CacheHierarchy()
        lines = list(range(1000))  # 64 KB: fits L2, not L1
        for addr in lines:
            h.access(addr)
        before = h.offchip_accesses
        for _ in range(5):
            for addr in lines:
                h.access(addr)
        assert h.offchip_accesses == before  # all hits in L1/L2

    def test_streaming_misses_every_line(self):
        h = CacheHierarchy()
        n = 50_000
        for addr in range(10_000_000, 10_000_000 + n):
            out = h.access(addr)
        # every access compulsory-misses (ignoring the tiny tail in-cache)
        assert h.offchip_reads == n

    def test_dirty_working_set_writebacks(self):
        h = CacheHierarchy(
            l1=CacheConfig(size_bytes=128, ways=1, line_bytes=64),
            l2=CacheConfig(size_bytes=256, ways=1, line_bytes=64),  # 4 sets
        )
        # write lines, then stream far past them to force dirty evictions
        for addr in range(8):
            h.access(addr, is_write=True)
        for addr in range(100, 140):
            h.access(addr, is_write=False)
        assert h.offchip_writes > 0

    def test_apki(self):
        h = CacheHierarchy()
        for addr in range(1_000_000, 1_000_100):
            h.access(addr)
        assert h.apki(instructions=10_000) == pytest.approx(10.0)

    def test_apki_rejects_nonpositive_instructions(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy().apki(0)

    def test_outcome_dataclass(self):
        out = AccessOutcome(hit_level="memory", writeback=True)
        assert out.is_offchip and out.writeback
