"""Regenerate the engine bit-identity fixture (``golden_simresults.json``).

The fixture pins the *exact* floating-point output of the event-driven
engine for a spread of configurations (schedulers, page policies,
channel counts, writes, phases, bank partitioning).  It was first
generated from the pre-optimization engine; the fast paths (indexed
scheduler queues, batched stream generation, ``__slots__`` records) are
required to reproduce every value bit-for-bit, which
``test_engine_equivalence.py`` asserts.

Run from the repo root to regenerate (only after an *intentional*
behaviour change)::

    PYTHONPATH=src python tests/sim/make_golden.py
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_simresults.json"


def golden_cases():
    """Name -> zero-argument callable returning a SimResult."""
    from repro.sim.cpu import CorePhase, CoreSpec
    from repro.sim.dram.config import DRAMConfig, ddr2_400
    from repro.sim.engine import SimConfig, simulate
    from repro.sim.mc.fcfs import FCFSScheduler
    from repro.sim.mc.frfcfs import FRFCFSScheduler
    from repro.sim.mc.parbs import PARBSScheduler
    from repro.sim.mc.priority import PriorityScheduler
    from repro.sim.mc.stf import StartTimeFairScheduler
    from repro.sim.mc.tcm import TCMScheduler
    from repro.sim.stream import StreamSpec
    from repro.workloads.mixes import mix_core_specs

    short = SimConfig(warmup_cycles=10_000.0, measure_cycles=100_000.0, seed=7)
    cases = {}

    specs4 = mix_core_specs("hetero-5")
    cases["fcfs_hetero5"] = lambda: simulate(
        specs4, lambda n: FCFSScheduler(n), short
    )

    specs16 = mix_core_specs("hetero-5", copies=4)
    beta16 = np.full(16, 1.0 / 16)
    cases["stf_16core"] = lambda: simulate(
        specs16, lambda n: StartTimeFairScheduler(n, beta16), short
    )

    heavy = CoreSpec(name="h", api=0.05, ipc_peak=0.5, mlp=24, write_fraction=0.1)
    cases["fcfs_saturated_writes"] = lambda: simulate(
        [heavy] * 4, lambda n: FCFSScheduler(n), short
    )

    cases["priority_hetero5"] = lambda: simulate(
        specs4, lambda n: PriorityScheduler(n, [2, 0, 3, 1]), short
    )

    open_page = SimConfig(
        dram=DRAMConfig(name="DDR2-400-open", page_policy="open"),
        warmup_cycles=10_000.0,
        measure_cycles=100_000.0,
        seed=11,
    )
    local = CoreSpec(
        name="loc",
        api=0.02,
        ipc_peak=1.0,
        mlp=8,
        stream=StreamSpec(row_locality=0.85, footprint_rows=64),
    )
    cases["frfcfs_open_page"] = lambda: simulate(
        [local] * 3, lambda n: FRFCFSScheduler(n), open_page
    )

    two_chan = SimConfig(
        dram=DRAMConfig(name="DDR2-400-2ch", n_channels=2),
        warmup_cycles=10_000.0,
        measure_cycles=100_000.0,
        seed=13,
    )
    cases["fcfs_two_channels"] = lambda: simulate(
        specs4, lambda n: FCFSScheduler(n), two_chan
    )
    beta4 = np.array([0.4, 0.3, 0.2, 0.1])
    cases["stf_two_channels"] = lambda: simulate(
        specs4, lambda n: StartTimeFairScheduler(n, beta4), two_chan
    )

    phased = CoreSpec(
        name="ph",
        api=0.005,
        ipc_peak=2.0,
        mlp=8,
        phases=(CorePhase(start_cycle=40_000.0, api=0.02, ipc_peak=1.0),),
    )
    epoch_cfg = SimConfig(
        warmup_cycles=10_000.0,
        measure_cycles=100_000.0,
        seed=17,
        epoch_cycles=20_000.0,
    )
    cases["stf_phased_epochs"] = lambda: simulate(
        [phased, heavy], lambda n: StartTimeFairScheduler(n, np.array([0.5, 0.5])),
        epoch_cfg,
    )

    banked = CoreSpec(
        name="bk",
        api=0.02,
        ipc_peak=1.0,
        mlp=8,
        stream=StreamSpec(bank_set=(0, 3, 8, 17)),
    )
    cases["fcfs_bank_partitioned"] = lambda: simulate(
        [banked, heavy], lambda n: FCFSScheduler(n), short
    )

    cases["parbs_hetero5"] = lambda: simulate(
        specs4, lambda n: PARBSScheduler(n, marking_cap=3), short
    )
    cases["tcm_hetero5"] = lambda: simulate(
        specs4, lambda n: TCMScheduler(n, epoch_requests=50), short
    )
    return cases


def result_record(result) -> dict:
    """Flatten a SimResult to JSON with full float precision (repr)."""
    return {
        "window_cycles": result.window_cycles,
        "bus_utilization": result.bus_utilization,
        "row_hit_rate": result.row_hit_rate,
        "scheduler_name": result.scheduler_name,
        "dram_name": result.dram_name,
        "seed": result.seed,
        "warmup_cycles": result.warmup_cycles,
        "apps": [
            {
                "name": a.name,
                "instructions": a.instructions,
                "accesses": a.accesses,
                "reads": a.reads,
                "writes": a.writes,
                "window_cycles": a.window_cycles,
                "mean_latency": a.mean_latency,
                "interference_cycles": a.interference_cycles,
                "apc_alone_est": a.apc_alone_est,
            }
            for a in result.apps
        ],
    }


def main() -> None:
    records = {name: result_record(fn()) for name, fn in golden_cases().items()}
    GOLDEN_PATH.write_text(json.dumps(records, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(records)} cases)")


if __name__ == "__main__":
    main()
