"""Engine edge-case tests: degenerate windows, extreme workloads."""

import dataclasses

import numpy as np
import pytest

from repro.sim import (
    CoreSpec,
    FCFSScheduler,
    SimConfig,
    StartTimeFairScheduler,
    run_alone,
    simulate,
)
from repro.util.errors import ConfigurationError


def spec(**kw) -> CoreSpec:
    base = dict(name="x", api=0.02, ipc_peak=0.5, mlp=4)
    base.update(kw)
    return CoreSpec(**base)


class TestDegenerateWindows:
    def test_zero_warmup(self):
        cfg = SimConfig(warmup_cycles=0, measure_cycles=100_000, seed=2)
        res = run_alone(spec(), cfg)
        assert res.accesses > 0
        assert res.ipc > 0

    def test_tiny_window_still_valid(self):
        cfg = SimConfig(warmup_cycles=0, measure_cycles=5_000, seed=2)
        res = run_alone(spec(), cfg)
        assert res.window_cycles == 5_000
        assert res.apc >= 0

    def test_epoch_equal_to_window(self):
        calls = []
        cfg = SimConfig(
            warmup_cycles=0, measure_cycles=100_000, seed=2,
            epoch_cycles=100_000.0,
        )
        simulate(
            [spec()], lambda n: FCFSScheduler(n), cfg,
            repartition_hook=lambda now, p, s: calls.append(now),
        )
        assert calls == [100_000.0]

    def test_epoch_longer_than_run_never_fires(self):
        calls = []
        cfg = SimConfig(
            warmup_cycles=0, measure_cycles=50_000, seed=2,
            epoch_cycles=200_000.0,
        )
        simulate(
            [spec()], lambda n: FCFSScheduler(n), cfg,
            repartition_hook=lambda now, p, s: calls.append(now),
        )
        assert calls == []


class TestExtremeWorkloads:
    def test_write_only_app(self):
        """write_fraction=1.0: the core is throttled purely by its posted
        write queue; everything still conserves."""
        s = spec(write_fraction=1.0, write_queue_cap=4)
        cfg = SimConfig(warmup_cycles=10_000, measure_cycles=150_000, seed=3)
        res = run_alone(s, cfg)
        assert res.writes > 0
        assert res.reads == 0
        assert res.apc > 0

    def test_mlp_one_serializes(self):
        """mlp=1: one outstanding miss; alone APC ~= 1/(latency + think)."""
        s = spec(mlp=1, api=0.05, ipc_peak=2.0)
        cfg = SimConfig(warmup_cycles=10_000, measure_cycles=200_000, seed=3)
        res = run_alone(s, cfg)
        # round trip ~ 275 cycles + tiny think -> APC in the 1/400..1/250 range
        assert 0.0022 < res.apc < 0.004, res.apc

    def test_extremely_light_app(self):
        s = spec(api=1e-4, ipc_peak=1.0)
        cfg = SimConfig(warmup_cycles=0, measure_cycles=400_000, seed=3)
        res = run_alone(s, cfg)
        assert res.ipc == pytest.approx(1.0, rel=0.05)

    def test_sixteen_identical_cores(self):
        specs = [spec(name=f"c{i}") for i in range(16)]
        cfg = SimConfig(warmup_cycles=20_000, measure_cycles=150_000, seed=3)
        res = simulate(
            specs,
            lambda n: StartTimeFairScheduler(n, np.full(n, 1 / n)),
            cfg,
        )
        assert res.n == 16
        assert res.total_apc <= 0.01 + 1e-9
        # equal shares + identical apps -> near-equal APCs
        assert res.apc_shared.std() / res.apc_shared.mean() < 0.1

    def test_single_app_zero_interference(self):
        cfg = SimConfig(warmup_cycles=10_000, measure_cycles=150_000, seed=3)
        res = run_alone(spec(), cfg)
        assert res.interference_cycles == 0.0

    def test_one_core_engine_requires_nonempty(self):
        from repro.sim.engine import Engine

        cfg = SimConfig()
        with pytest.raises(ConfigurationError):
            Engine([], FCFSScheduler(1), cfg)
