"""Engine / runner / event-log wiring into repro.obs."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.experiments.runner import Runner
from repro.sim.cpu import CoreSpec
from repro.sim.engine import SimConfig, simulate
from repro.sim.eventlog import EventLog
from repro.sim.mc.fcfs import FCFSScheduler
from repro.sim.request import Request


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs.reset()
    obs.configure(enabled=True, sample=1.0)
    yield
    obs.reset()


def _spec(name="app", api=0.02):
    return CoreSpec(name=name, api=api, ipc_peak=0.5, mlp=8)


CFG = SimConfig(warmup_cycles=10_000, measure_cycles=60_000, seed=3)


class TestEngineSpans:
    def test_run_span_wraps_warmup_and_measure(self):
        simulate([_spec()], lambda n: FCFSScheduler(n), CFG)
        by = {s.name: s for s in obs.tracer().spans()}
        run = by["engine.run"]
        assert run.attrs["scheduler"] == "fcfs"
        assert run.attrs["apps"] == 1
        assert run.attrs["seed"] == 3
        assert by["engine.warmup"].parent_id == run.span_id
        assert by["engine.measure"].parent_id == run.span_id
        # warmup strictly precedes measurement
        assert by["engine.warmup"].ts_us < by["engine.measure"].ts_us

    def test_no_warmup_span_when_warmup_zero(self):
        cfg = SimConfig(warmup_cycles=0, measure_cycles=60_000, seed=3)
        simulate([_spec()], lambda n: FCFSScheduler(n), cfg)
        names = [s.name for s in obs.tracer().spans()]
        assert "engine.warmup" not in names
        assert "engine.measure" in names

    def test_scheduler_round_spans_per_epoch(self):
        cfg = SimConfig(
            warmup_cycles=0, measure_cycles=60_000, seed=3,
            epoch_cycles=20_000,
        )
        simulate([_spec()], lambda n: FCFSScheduler(n), cfg)
        rounds = obs.tracer().find("engine.scheduler_round")
        assert len(rounds) >= 2
        by = {s.name: s for s in obs.tracer().spans()}
        for r in rounds:
            assert r.parent_id == by["engine.measure"].span_id

    def test_counters_flushed_once_per_run(self):
        simulate([_spec()], lambda n: FCFSScheduler(n), CFG)
        reg = obs.registry()
        assert reg.get_value("engine.runs") == 1.0
        assert reg.get_value("engine.events") > 100
        assert reg.get_value("engine.simulated_cycles") == 60_000
        simulate([_spec()], lambda n: FCFSScheduler(n), CFG)
        assert reg.get_value("engine.runs") == 2.0

    def test_disabled_tracing_still_counts(self):
        obs.configure(enabled=False)
        simulate([_spec()], lambda n: FCFSScheduler(n), CFG)
        assert len(obs.tracer()) == 0
        assert obs.registry().get_value("engine.runs") == 1.0


class TestEventLogTrace:
    def _log(self):
        log = EventLog()
        s = log.attach(FCFSScheduler(2))
        s.enqueue(Request(app_id=0, line_addr=0, is_write=False, created=0.0), 10.0)
        s.enqueue(Request(app_id=1, line_addr=1, is_write=True, created=0.0), 12.0)
        s.select(20.0)
        return log

    def test_events_become_instants_and_counters(self):
        events = self._log().to_obs_trace(pid=7)
        instants = [e for e in events if e["ph"] == "i"]
        counters = [e for e in events if e["ph"] == "C"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in instants} == {"enqueue", "grant"}
        assert all(e["pid"] == 7 for e in instants)
        # per-app tracks, queue depth as a counter series
        assert {e["tid"] for e in instants} == {0, 1}
        assert counters and "queue_depth" in counters[0]["name"]
        assert any("app" in m["args"]["name"] for m in metas)

    def test_cycle_to_us_mapping(self):
        events = self._log().to_obs_trace(origin_us=100.0, cycles_per_us=10.0)
        first = [e for e in events if e["ph"] == "i"][0]
        assert first["ts"] == pytest.approx(100.0 + 10.0 / 10.0)

    def test_merges_with_spans_into_one_chrome_file(self, tmp_path):
        simulate([_spec()], lambda n: FCFSScheduler(n), CFG)
        path = tmp_path / "run.trace.json"
        obs.write_chrome_trace(
            path, obs.tracer().spans(), extra_events=self._log().to_obs_trace()
        )
        doc = json.loads(path.read_text())
        phs = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "i", "C", "M"} <= phs


class TestRunnerWiring:
    def test_profile_cache_counters_and_span(self):
        runner = Runner(CFG)
        runner.alone_point(_spec("bench"))
        reg = obs.registry()
        assert reg.get_value("profile.cache_misses") == 1.0
        assert len(obs.tracer().find("runner.profile")) == 1
        # second call hits the in-memory layer
        runner.alone_point(_spec("bench"))
        assert reg.get_value("profile.cache_hits", layer="memory") == 1.0
        # a fresh runner sees the persistent layer instead
        runner2 = Runner(CFG)
        runner2.alone_point(_spec("bench"))
        assert reg.get_value("profile.cache_hits", layer="disk") == 1.0
        assert reg.get_value("profile.cache_misses") == 1.0

    def test_run_point_span_and_counter(self):
        runner = Runner(CFG)
        runner.run("homo-1", "nopart")
        assert obs.registry().get_value("runner.points") == 1.0
        (point,) = obs.tracer().find("runner.point")
        assert point.attrs == {"mix": "homo-1", "scheme": "nopart", "copies": 1}
        # profiling runs nest under the point that triggered them
        profiles = obs.tracer().find("runner.profile")
        assert profiles
        assert all(p.parent_id == point.span_id for p in profiles)
