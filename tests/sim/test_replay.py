"""Tests for trace capture and open-loop replay (repro.sim.replay)."""

import io

import numpy as np
import pytest

from repro.sim import CoreSpec, FCFSScheduler, SimConfig, simulate
from repro.sim.dram.config import DRAMConfig, ddr2_400
from repro.sim.mc.priority import PriorityScheduler
from repro.sim.mc.stf import StartTimeFairScheduler
from repro.sim.replay import (
    ReplayResult,
    TraceRecord,
    TraceRecorder,
    read_trace,
    replay_trace,
    write_trace,
)
from repro.util.errors import ConfigurationError


def make_trace(n_per_app=50, apps=2, gap=120.0) -> list[TraceRecord]:
    """Interleaved arrivals from ``apps`` applications."""
    records = []
    t = 0.0
    for i in range(n_per_app * apps):
        records.append(
            TraceRecord(
                cycle=t,
                line_addr=i * 7 + (i % apps) * 100_000,
                is_write=(i % 5 == 0),
                app_id=i % apps,
            )
        )
        t += gap
    return records


class TestTraceFormat:
    def test_roundtrip(self):
        records = make_trace(10)
        buf = io.StringIO()
        n = write_trace(records, buf)
        assert n == len(records)
        buf.seek(0)
        back = read_trace(buf)
        assert back == records

    def test_comments_and_blanks_ignored(self):
        buf = io.StringIO("# header\n\n10.0 42 r 0\n")
        records = read_trace(buf)
        assert len(records) == 1
        assert records[0].line_addr == 42

    def test_malformed_line_rejected(self):
        with pytest.raises(ConfigurationError):
            read_trace(io.StringIO("10.0 42 x 0\n"))
        with pytest.raises(ConfigurationError):
            read_trace(io.StringIO("10.0 42 r\n"))

    def test_unordered_trace_rejected(self):
        buf = io.StringIO("10.0 1 r 0\n5.0 2 r 0\n")
        with pytest.raises(ConfigurationError):
            read_trace(buf)

    def test_record_validation(self):
        with pytest.raises(ConfigurationError):
            TraceRecord(cycle=-1.0, line_addr=0, is_write=False, app_id=0)
        with pytest.raises(ConfigurationError):
            TraceRecord(cycle=0.0, line_addr=-1, is_write=False, app_id=0)


class TestRecorder:
    def test_captures_closed_loop_stream(self):
        spec = CoreSpec(name="h", api=0.02, ipc_peak=0.5, mlp=8)
        recorder = TraceRecorder()
        cfg = SimConfig(warmup_cycles=0, measure_cycles=100_000, seed=4)
        result = simulate(
            [spec, spec], lambda n: recorder.wrap(FCFSScheduler(n)), cfg
        )
        assert len(recorder.records) >= result.apps[0].accesses
        cycles = [r.cycle for r in recorder.records]
        assert cycles == sorted(cycles)
        assert {r.app_id for r in recorder.records} == {0, 1}

    def test_save_roundtrip(self):
        spec = CoreSpec(name="h", api=0.02, ipc_peak=0.5, mlp=4)
        recorder = TraceRecorder()
        cfg = SimConfig(warmup_cycles=0, measure_cycles=50_000, seed=4)
        simulate([spec], lambda n: recorder.wrap(FCFSScheduler(n)), cfg)
        buf = io.StringIO()
        recorder.save(buf)
        buf.seek(0)
        assert read_trace(buf) == recorder.records


class TestReplay:
    def test_all_requests_served(self):
        records = make_trace(50, apps=2)
        result = replay_trace(records, FCFSScheduler(2))
        assert result.total_served == len(records)
        assert result.served[0] == result.served[1]

    def test_latencies_positive(self):
        records = make_trace(20)
        result = replay_trace(records, FCFSScheduler(2))
        assert np.all(result.mean_latency > 0)

    def test_underloaded_trace_has_low_latency(self):
        """Arrivals slower than service: every request sees ~base latency."""
        records = make_trace(30, apps=1, gap=1000.0)
        result = replay_trace(records, FCFSScheduler(1))
        # base pipeline ~ tRCD + CL + burst + mc = 275
        assert result.mean_latency[0] < 400.0

    def test_overloaded_trace_queues(self):
        """Arrivals at 2x the bus rate: latency grows far beyond base."""
        records = make_trace(200, apps=1, gap=50.0)
        result = replay_trace(records, FCFSScheduler(1))
        assert result.mean_latency[0] > 1000.0
        # service rate pinned at ~the bus rate (0.01/cycle) minus overheads
        assert result.throughput_apc() == pytest.approx(0.01, rel=0.15)

    def test_priority_replay_reorders_service(self):
        """The same trace under priority scheduling skews latencies."""
        records = make_trace(200, apps=2, gap=40.0)  # overload
        fcfs = replay_trace(records, FCFSScheduler(2))
        prio = replay_trace(records, PriorityScheduler(2, [1, 0]))
        # app 1 (high priority) gets much lower latency than under FCFS
        assert prio.mean_latency[1] < fcfs.mean_latency[1]
        assert prio.mean_latency[0] > fcfs.mean_latency[0]

    def test_stf_replay_enforces_shares_under_overload(self):
        records = make_trace(400, apps=2, gap=25.0)  # heavy overload
        sched = StartTimeFairScheduler(2, np.array([0.75, 0.25]))
        result = replay_trace(records, sched, drain=False)
        # while both queues are backlogged, service shares follow beta;
        # only assert the direction strongly
        assert result.served[0] > 1.5 * result.served[1]

    def test_trace_app_out_of_range(self):
        records = [TraceRecord(0.0, 0, False, app_id=5)]
        with pytest.raises(ConfigurationError):
            replay_trace(records, FCFSScheduler(2))

    def test_multichannel_replay(self):
        cfg = DRAMConfig(n_channels=2, n_ranks=2, n_banks=8)
        records = make_trace(100, apps=2, gap=40.0)
        result = replay_trace(records, FCFSScheduler(2), cfg)
        assert result.total_served == len(records)

    def test_replayed_recording_matches_original_service(self):
        """Capture a closed-loop run, replay it open-loop under the same
        scheduler: per-app service counts match exactly (the stream is
        identical; only back-pressure differs, which cannot drop requests)."""
        spec_a = CoreSpec(name="a", api=0.03, ipc_peak=0.4, mlp=8)
        spec_b = CoreSpec(name="b", api=0.005, ipc_peak=0.6, mlp=2)
        recorder = TraceRecorder()
        cfg = SimConfig(warmup_cycles=0, measure_cycles=100_000, seed=12)
        simulate(
            [spec_a, spec_b], lambda n: recorder.wrap(FCFSScheduler(n)), cfg
        )
        replay = replay_trace(recorder.records, FCFSScheduler(2))
        counts = np.bincount(
            [r.app_id for r in recorder.records], minlength=2
        )
        np.testing.assert_array_equal(replay.served, counts)


class TestReplayResult:
    def test_service_shares(self):
        r = ReplayResult(
            n_apps=2,
            served=np.array([30, 10]),
            mean_latency=np.array([1.0, 2.0]),
            last_completion=100.0,
            bus_busy_cycles=50.0,
        )
        np.testing.assert_allclose(r.service_shares, [0.75, 0.25])
        assert r.throughput_apc() == pytest.approx(0.4)

    def test_zero_served(self):
        r = ReplayResult(
            n_apps=1,
            served=np.array([0]),
            mean_latency=np.array([0.0]),
            last_completion=0.0,
            bus_busy_cycles=0.0,
        )
        assert r.throughput_apc() == 0.0
        np.testing.assert_allclose(r.service_shares, [0.0])
