"""Unit tests for the online APC_alone profiler (repro.sim.profiler)."""

import numpy as np
import pytest

from repro.sim.profiler import OnlineProfiler
from repro.sim.stats import AppCounters
from repro.util.errors import ConfigurationError


def counters(n_acc=0, interference=0.0) -> AppCounters:
    c = AppCounters()
    c.reads_served = n_acc
    c.interference_cycles = interference
    return c


class TestEstimation:
    def test_eq12_13_basic(self):
        """est = N / (T - T_interference)."""
        p = OnlineProfiler(1, peak_apc=0.01)
        p.begin_epoch(0.0, [counters()])
        est = p.close_epoch(1000.0, [counters(n_acc=5, interference=0.0)])
        assert est[0] == pytest.approx(5 / 1000.0)

    def test_interference_removed(self):
        p = OnlineProfiler(1, peak_apc=0.01)
        p.begin_epoch(0.0, [counters()])
        est = p.close_epoch(1000.0, [counters(n_acc=5, interference=500.0)])
        assert est[0] == pytest.approx(5 / 500.0)

    def test_clamped_to_peak(self):
        p = OnlineProfiler(1, peak_apc=0.01)
        p.begin_epoch(0.0, [counters()])
        est = p.close_epoch(1000.0, [counters(n_acc=900, interference=990.0)])
        assert est[0] == pytest.approx(0.01)

    def test_interference_floor(self):
        """T_alone is floored at one cycle (no negative/zero division)."""
        p = OnlineProfiler(1, peak_apc=0.01)
        p.begin_epoch(0.0, [counters()])
        est = p.close_epoch(1000.0, [counters(n_acc=5, interference=2000.0)])
        assert np.isfinite(est[0])

    def test_idle_app_keeps_previous_estimate(self):
        p = OnlineProfiler(1, peak_apc=0.01)
        c = counters(n_acc=5)
        p.begin_epoch(0.0, [counters()])
        p.close_epoch(1000.0, [c])
        first = p.estimates[0]
        # next epoch with no new accesses
        p.close_epoch(2000.0, [c])
        assert p.estimates[0] == first

    def test_estimates_start_nan(self):
        p = OnlineProfiler(2, peak_apc=0.01)
        assert np.all(np.isnan(p.estimates))

    def test_writes_counted(self):
        p = OnlineProfiler(1, peak_apc=0.01)
        c = AppCounters()
        c.reads_served = 3
        c.writes_served = 2
        p.begin_epoch(0.0, [AppCounters()])
        est = p.close_epoch(1000.0, [c])
        assert est[0] == pytest.approx(5 / 1000.0)


class TestEpochManagement:
    def test_deltas_are_per_epoch(self):
        p = OnlineProfiler(1, peak_apc=1.0)
        c = AppCounters()
        c.reads_served = 10
        p.begin_epoch(0.0, [c])
        c.reads_served = 30
        est = p.close_epoch(100.0, [c])
        assert est[0] == pytest.approx(20 / 100.0)
        # a second epoch sees only the new delta
        c.reads_served = 40
        est = p.close_epoch(200.0, [c])
        assert est[0] == pytest.approx(10 / 100.0)

    def test_zero_length_epoch_is_a_guarded_noop(self):
        """A zero-length close keeps state finite and the epoch open."""
        p = OnlineProfiler(1, peak_apc=1.0)
        c = AppCounters()
        p.begin_epoch(5.0, [c])
        est = p.close_epoch(5.0, [c])
        assert np.isnan(est[0])  # no update, no division by zero
        # the epoch stays anchored at 5.0: counters accumulated before
        # the degenerate close still count toward the next real close
        c.reads_served = 10
        est = p.close_epoch(105.0, [c])
        assert est[0] == pytest.approx(10 / 100.0)

    def test_zero_length_epoch_returns_fallback(self):
        p = OnlineProfiler(1, peak_apc=1.0)
        p.begin_epoch(5.0, [AppCounters()])
        est = p.close_epoch(5.0, [AppCounters()], fallback=np.array([0.4]))
        assert est[0] == pytest.approx(0.4)
        # the stored estimate stays NaN so a real measurement wins later
        assert np.isnan(p.estimates[0])

    def test_all_zero_deltas_keep_previous_estimate(self):
        p = OnlineProfiler(2, peak_apc=1.0)
        c0, c1 = counters(n_acc=10), counters(n_acc=20)
        p.begin_epoch(0.0, [c0, c1])
        c0.reads_served, c1.reads_served = 30, 40
        first = p.close_epoch(100.0, [c0, c1]).copy()
        # an epoch in which nothing was served: estimates unchanged
        est = p.close_epoch(200.0, [c0, c1])
        np.testing.assert_allclose(est, first)
        assert np.all(np.isfinite(est))

    def test_close_epoch_fallback_fills_only_nans(self):
        p = OnlineProfiler(2, peak_apc=1.0)
        c0, c1 = counters(n_acc=10), counters(n_acc=0)
        p.begin_epoch(0.0, [counters(), counters()])
        est = p.close_epoch(100.0, [c0, c1], fallback=np.array([9.9, 0.7]))
        assert est[0] == pytest.approx(0.1)
        assert est[1] == pytest.approx(0.7)

    def test_needs_positive_apps(self):
        with pytest.raises(ConfigurationError):
            OnlineProfiler(0, peak_apc=1.0)


class TestFallback:
    def test_estimate_or_fills_nans(self):
        p = OnlineProfiler(2, peak_apc=1.0)
        fallback = np.array([0.5, 0.7])
        np.testing.assert_allclose(p.estimate_or(fallback), fallback)

    def test_estimate_or_keeps_real_estimates(self):
        p = OnlineProfiler(2, peak_apc=1.0)
        c0, c1 = counters(n_acc=10), counters(n_acc=0)
        p.begin_epoch(0.0, [counters(), counters()])
        p.close_epoch(100.0, [c0, c1])
        out = p.estimate_or(np.array([9.9, 0.7]))
        assert out[0] == pytest.approx(0.1)
        assert out[1] == pytest.approx(0.7)


class TestCounterArithmetic:
    def test_snapshot_independence(self):
        c = AppCounters()
        c.reads_served = 5
        snap = c.snapshot()
        c.reads_served = 9
        assert snap.reads_served == 5

    def test_minus(self):
        a, b = AppCounters(), AppCounters()
        a.reads_served, b.reads_served = 10, 4
        a.instructions, b.instructions = 100.0, 40.0
        d = a.minus(b)
        assert d.reads_served == 6
        assert d.instructions == pytest.approx(60.0)
