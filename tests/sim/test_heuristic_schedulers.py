"""Unit tests for the PAR-BS and TCM lite schedulers."""

import numpy as np
import pytest

from repro.sim import CoreSpec, SimConfig, simulate
from repro.sim.mc.fcfs import FCFSScheduler
from repro.sim.mc.parbs import PARBSScheduler
from repro.sim.mc.tcm import TCMScheduler
from repro.sim.request import Request
from repro.util.errors import ConfigurationError


def req(app: int, t: float = 0.0) -> Request:
    return Request(app_id=app, line_addr=0, is_write=False, created=t)


def heavy(name="heavy") -> CoreSpec:
    return CoreSpec(name=name, api=0.05, ipc_peak=0.5, mlp=16, write_fraction=0.1)


def light(name="light") -> CoreSpec:
    return CoreSpec(name=name, api=0.004, ipc_peak=0.5, mlp=2)


CFG = SimConfig(warmup_cycles=50_000, measure_cycles=300_000, seed=5)


class TestPARBSUnit:
    def test_batch_served_before_new_arrivals(self):
        s = PARBSScheduler(2, marking_cap=2)
        for _ in range(2):
            s.enqueue(req(0), 0.0)
        first = s.select(1.0)  # forms the batch {two app-0 requests}
        assert first.app_id == 0
        # a newer request from app 1 arrives; the batch still wins
        s.enqueue(req(1), 2.0)
        assert s.select(3.0).app_id == 0
        # batch exhausted: the next batch includes app 1
        assert s.select(4.0).app_id == 1

    def test_sjf_ranking_within_batch(self):
        s = PARBSScheduler(2, marking_cap=5)
        for _ in range(5):
            s.enqueue(req(0), 0.0)
        s.enqueue(req(1), 1.0)
        # batch: 5 requests of app 0, 1 of app 1 -> app 1 ranks first
        assert s.select(2.0).app_id == 1

    def test_marking_cap_bounds_batch(self):
        s = PARBSScheduler(1, marking_cap=3)
        for _ in range(10):
            s.enqueue(req(0), 0.0)
        for _ in range(3):
            s.select(1.0)
        assert s.n_batches == 1
        s.select(1.0)  # 4th pop needs a new batch
        assert s.n_batches == 2

    def test_starvation_freedom(self):
        """Unlike strict priority, every request is served within a
        bounded number of batches even under heavy competing load."""
        s = PARBSScheduler(2, marking_cap=2)
        s.enqueue(req(1), 0.0)
        for i in range(50):
            s.enqueue(req(0), float(i))
        order = [s.select(100.0).app_id for _ in range(6)]
        assert 1 in order

    def test_invalid_cap(self):
        with pytest.raises(ConfigurationError):
            PARBSScheduler(2, marking_cap=0)


class TestTCMUnit:
    def test_clustering_prioritizes_light_app(self):
        s = TCMScheduler(2, cluster_fraction=0.2, epoch_requests=10)
        # epoch 1: app 0 floods, app 1 trickles
        for i in range(20):
            s.enqueue(req(0), float(i))
        s.enqueue(req(1), 5.0)
        for _ in range(10):
            s.select(30.0)
        # recluster happened; app 1 (light) is latency-sensitive now
        s.select(31.0)
        assert 1 in s.latency_cluster
        assert 0 not in s.latency_cluster

    def test_light_app_served_first_after_clustering(self):
        s = TCMScheduler(2, cluster_fraction=0.2, epoch_requests=5)
        for i in range(10):
            s.enqueue(req(0), float(i))
        s.enqueue(req(1), 50.0)
        for _ in range(6):
            s.select(60.0)  # crosses the epoch -> recluster
        # now enqueue one more of each; the light app must win
        s.enqueue(req(1), 70.0)
        picked = s.select(71.0)
        assert picked.app_id == 1

    def test_shuffle_rotates_bandwidth_ranks(self):
        s = TCMScheduler(3, cluster_fraction=0.0, epoch_requests=1)
        ranks = []
        for round_ in range(3):
            for a in range(3):
                s.enqueue(req(a), float(round_))
            s.select(10.0)  # triggers recluster per epoch
            ranks.append(tuple(s._rank))
        assert len(set(ranks)) > 1  # ranks change across epochs

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TCMScheduler(2, cluster_fraction=1.5)
        with pytest.raises(ConfigurationError):
            TCMScheduler(2, epoch_requests=0)


class TestHeuristicsEndToEnd:
    @pytest.mark.parametrize(
        "factory", [lambda n: PARBSScheduler(n), lambda n: TCMScheduler(n)]
    )
    def test_improves_fairness_over_fcfs(self, factory):
        """Both heuristics protect the light app better than FCFS."""
        specs = [heavy(), heavy("heavy2"), light(), light("light2")]
        fcfs = simulate(specs, lambda n: FCFSScheduler(n), CFG)
        heur = simulate(specs, factory, CFG)
        # light apps' IPC improves
        assert heur.ipc_shared[2] > fcfs.ipc_shared[2]
        assert heur.ipc_shared[3] > fcfs.ipc_shared[3]

    @pytest.mark.parametrize(
        "factory", [lambda n: PARBSScheduler(n), lambda n: TCMScheduler(n)]
    )
    def test_no_starvation(self, factory):
        specs = [heavy(), heavy("heavy2"), light(), light("light2")]
        res = simulate(specs, factory, CFG)
        assert np.all(res.ipc_shared > 0)

    def test_conserves_bandwidth(self):
        specs = [heavy(), light()]
        for factory in (lambda n: PARBSScheduler(n), lambda n: TCMScheduler(n)):
            res = simulate(specs, factory, CFG)
            assert res.total_apc <= 0.01 + 1e-9
            assert res.total_apc > 0.005
