"""Unit tests for the limit-based core model (repro.sim.cpu)."""

import pytest

from repro.sim.cpu import CoreSim, CoreSpec
from repro.sim.dram.config import ddr2_400
from repro.sim.stream import MissAddressStream, StreamSpec
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.rng import RngStream


def make_core(
    api=0.01, ipc_peak=1.0, mlp=2, wf=0.0, wq=4, core_id=0, seed=1
) -> CoreSim:
    spec = CoreSpec(
        name="t", api=api, ipc_peak=ipc_peak, mlp=mlp,
        write_fraction=wf, write_queue_cap=wq,
    )
    stream = MissAddressStream(ddr2_400(), StreamSpec(), core_id, RngStream(seed, "s"))
    return CoreSim(core_id, spec, stream, RngStream(seed, "c"))


class TestCoreSpec:
    def test_demand_apc(self):
        spec = CoreSpec(name="x", api=0.02, ipc_peak=0.5, mlp=4)
        assert spec.demand_apc == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoreSpec(name="x", api=0.0, ipc_peak=1.0, mlp=1)
        with pytest.raises(ConfigurationError):
            CoreSpec(name="x", api=0.01, ipc_peak=1.0, mlp=1, write_fraction=1.5)


class TestExecution:
    def test_start_schedules_first_access(self):
        core = make_core()
        t = core.start(0.0)
        assert t > 0.0
        assert core.running

    def test_access_generates_request(self):
        core = make_core(mlp=4)
        t = core.start(0.0)
        req, nxt = core.generate_access(t)
        assert req.app_id == 0
        assert req.created == t
        assert nxt is not None and nxt > t
        assert core.outstanding_reads == 1

    def test_stalls_at_mlp_limit(self):
        core = make_core(mlp=2)
        t = core.start(0.0)
        _, t = core.generate_access(t)
        req, nxt = core.generate_access(t)
        assert nxt is None  # second outstanding read == mlp -> stall
        assert core.is_memory_stalled

    def test_resume_on_read_completion(self):
        core = make_core(mlp=1)
        t = core.start(0.0)
        _, nxt = core.generate_access(t)
        assert nxt is None
        resumed = core.complete_read(t + 300.0)
        assert resumed is not None and resumed > t + 300.0
        assert core.running
        assert core.stall_cycles == pytest.approx(300.0)

    def test_access_while_stalled_is_a_bug(self):
        core = make_core(mlp=1)
        t = core.start(0.0)
        core.generate_access(t)
        with pytest.raises(SimulationError):
            core.generate_access(t + 1.0)

    def test_read_underflow_detected(self):
        core = make_core()
        core.start(0.0)
        with pytest.raises(SimulationError):
            core.complete_read(1.0)

    def test_write_queue_stall_and_drain(self):
        core = make_core(wf=1.0, wq=1, mlp=8)
        t = core.start(0.0)
        req, nxt = core.generate_access(t)
        assert req.is_write
        assert nxt is None  # write queue full at cap=1
        resumed = core.drain_write(t + 100.0)
        assert resumed is not None
        assert core.pending_writes == 0


class TestInstructionAccounting:
    def test_instructions_advance_only_while_running(self):
        core = make_core(mlp=1, ipc_peak=2.0)
        t = core.start(0.0)
        req, nxt = core.generate_access(t)  # stalls
        before = core.instructions_at(t)
        later = core.instructions_at(t + 1000.0)
        assert later == before  # frozen while stalled

    def test_fractional_gap_interpolation(self):
        core = make_core(mlp=8, ipc_peak=1.0)
        t = core.start(0.0)
        mid = core.instructions_at(t / 2)
        assert 0 < mid < core.instructions_at(t) + 1e9
        # halfway through the first gap = half its instructions
        assert mid == pytest.approx(t / 2 * 1.0, rel=1e-9)

    def test_realized_api_matches_spec(self):
        """Long-run accesses/instructions must converge to the spec API."""
        core = make_core(api=0.02, ipc_peak=1.0, mlp=10_000)
        t = core.start(0.0)
        n = 4000
        for _ in range(n):
            _, t = core.generate_access(t)
        api = (core.n_reads + core.n_writes) / core.instructions_at(t)
        assert api == pytest.approx(0.02, rel=0.05)

    def test_write_fraction_realized(self):
        core = make_core(api=0.02, wf=0.3, mlp=10_000, wq=10_000)
        t = core.start(0.0)
        for _ in range(3000):
            _, t = core.generate_access(t)
        frac = core.n_writes / (core.n_reads + core.n_writes)
        assert frac == pytest.approx(0.3, abs=0.03)

    def test_determinism_per_seed(self):
        c1, c2 = make_core(seed=9), make_core(seed=9)
        t1, t2 = c1.start(0.0), c2.start(0.0)
        assert t1 == t2
        r1, _ = c1.generate_access(t1)
        r2, _ = c2.generate_access(t2)
        assert r1.line_addr == r2.line_addr
        assert r1.is_write == r2.is_write

    def test_different_seeds_differ(self):
        c1, c2 = make_core(seed=1), make_core(seed=2)
        assert c1.start(0.0) != c2.start(0.0)
