"""Unit tests for the memory-request record (repro.sim.request)."""

from repro.sim.request import Request


class TestRequest:
    def test_sequence_numbers_monotone(self):
        a = Request(app_id=0, line_addr=1, is_write=False, created=0.0)
        b = Request(app_id=0, line_addr=2, is_write=False, created=0.0)
        assert b.seq > a.seq

    def test_default_timestamps_unset(self):
        r = Request(app_id=0, line_addr=1, is_write=False, created=5.0)
        assert r.enqueued == -1.0
        assert r.issued == -1.0
        assert r.completed == -1.0

    def test_queue_delay(self):
        r = Request(app_id=0, line_addr=1, is_write=False, created=0.0)
        r.enqueued = 10.0
        r.issued = 35.0
        assert r.queue_delay == 25.0

    def test_queue_delay_before_issue_is_zero(self):
        r = Request(app_id=0, line_addr=1, is_write=False, created=0.0)
        r.enqueued = 10.0
        assert r.queue_delay == 0.0

    def test_latency(self):
        r = Request(app_id=0, line_addr=1, is_write=False, created=100.0)
        r.completed = 475.0
        assert r.latency == 375.0

    def test_latency_before_completion_is_zero(self):
        r = Request(app_id=0, line_addr=1, is_write=False, created=100.0)
        assert r.latency == 0.0

    def test_decode_fields_default(self):
        r = Request(app_id=3, line_addr=1, is_write=True, created=0.0)
        assert (r.channel, r.bank, r.row) == (0, 0, 0)
