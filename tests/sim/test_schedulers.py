"""Unit tests for the memory-controller schedulers (repro.sim.mc)."""

import numpy as np
import pytest

from repro.sim.mc.base import Scheduler
from repro.sim.mc.fcfs import FCFSScheduler
from repro.sim.mc.frfcfs import FRFCFSScheduler
from repro.sim.mc.priority import PriorityScheduler
from repro.sim.mc.stf import StartTimeFairScheduler
from repro.sim.request import Request
from repro.util.errors import ConfigurationError, SimulationError


def req(app: int, t: float = 0.0, write: bool = False, bank: int = 0) -> Request:
    r = Request(app_id=app, line_addr=0, is_write=write, created=t)
    r.bank = bank
    return r


def drain(sched: Scheduler, now: float = 0.0, limit: int = 100) -> list[int]:
    """Pop everything; return the app-id service order."""
    order = []
    for _ in range(limit):
        r = sched.select(now)
        if r is None:
            break
        order.append(r.app_id)
    return order


class TestBase:
    def test_enqueue_bookkeeping(self):
        s = FCFSScheduler(2)
        s.enqueue(req(0), 10.0)
        s.enqueue(req(1), 11.0)
        assert s.has_pending()
        assert s.total_queued == 2
        assert list(s.pending_apps()) == [0, 1]
        assert s.queue_depth(0) == 1

    def test_select_empty_returns_none(self):
        assert FCFSScheduler(2).select(0.0) is None

    def test_needs_positive_apps(self):
        with pytest.raises(SimulationError):
            FCFSScheduler(0)


class TestFCFS:
    def test_oldest_first(self):
        s = FCFSScheduler(3)
        s.enqueue(req(2), 5.0)
        s.enqueue(req(0), 1.0)
        s.enqueue(req(1), 3.0)
        assert drain(s) == [0, 1, 2]

    def test_tie_breaks_by_sequence(self):
        s = FCFSScheduler(2)
        a, b = req(1), req(0)
        s.enqueue(a, 2.0)
        s.enqueue(b, 2.0)
        # a was created (sequenced) first
        assert s.select(3.0).app_id == 1

    def test_prefers_ready_requests(self):
        s = FCFSScheduler(2)
        old, new = req(0, bank=1), req(1, bank=2)
        s.enqueue(old, 1.0)
        s.enqueue(new, 2.0)
        # the older request's bank is busy: serve the ready one first
        ready = lambda r: r.bank != 1
        assert s.select(3.0, ready).app_id == 1
        # nothing ready now: falls back to the oldest
        assert s.select(3.0, lambda r: False).app_id == 0


class TestStartTimeFair:
    def test_rates_proportional_to_beta(self):
        """Backlogged apps must be served in their share ratio (Sec. IV-B)."""
        s = StartTimeFairScheduler(2, np.array([0.75, 0.25]))
        for _ in range(100):
            s.enqueue(req(0), 0.0)
            s.enqueue(req(1), 0.0)
        order = drain(s, limit=100)
        assert order.count(0) == pytest.approx(75, abs=2)

    def test_equal_shares_alternate(self):
        s = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        for _ in range(10):
            s.enqueue(req(0), 0.0)
            s.enqueue(req(1), 0.0)
        order = drain(s, limit=20)
        assert order.count(0) == 10 and order.count(1) == 10

    def test_work_conserving(self):
        """An app with zero queued requests cedes the bus entirely."""
        s = StartTimeFairScheduler(2, np.array([0.9, 0.1]))
        for _ in range(5):
            s.enqueue(req(1), 0.0)
        assert drain(s) == [1] * 5

    def test_idle_app_catches_up(self):
        """Paper Sec. IV-B: tags don't advance while idle, so a returning
        app is served immediately (arrival-free tags)."""
        s = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        for _ in range(50):
            s.enqueue(req(0), 0.0)
        drain(s, limit=50)  # app 0 consumed bandwidth alone
        s.enqueue(req(0), 100.0)
        s.enqueue(req(1), 100.0)
        # app 1's tag is far behind; it must win now
        assert s.select(100.0).app_id == 1

    def test_arrival_coupled_forfeits_credit(self):
        """The original DSTF rule: idle credit is (mostly) forfeited --
        after a long solo run by app 0, app 1 does NOT get the entire
        backlog to itself; service interleaves immediately."""
        s = StartTimeFairScheduler(2, np.array([0.5, 0.5]), arrival_coupled=True)
        for _ in range(50):
            s.enqueue(req(0), 0.0)
        drain(s, limit=50)
        for _ in range(10):
            s.enqueue(req(0), 100.0)
            s.enqueue(req(1), 100.0)
        order = drain(s, limit=6)
        # app 1 is served first (its tag lags one stride at most) but app 0
        # re-enters service within the first few grants
        assert order[0] == 1
        assert 0 in order

    def test_zero_share_only_when_alone(self):
        s = StartTimeFairScheduler(2, np.array([1.0, 0.0]))
        s.enqueue(req(0), 0.0)
        s.enqueue(req(1), 0.0)
        assert s.select(1.0).app_id == 0
        # only the zero-share app remains: work conservation serves it
        assert s.select(1.0).app_id == 1

    def test_update_shares(self):
        s = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        s.update_shares(np.array([0.9, 0.1]))
        np.testing.assert_allclose(s.beta, [0.9, 0.1])

    def test_invalid_shares_rejected(self):
        with pytest.raises(ConfigurationError):
            StartTimeFairScheduler(2, np.array([0.7, 0.7]))
        with pytest.raises(ConfigurationError):
            StartTimeFairScheduler(2, np.array([0.5, 0.5, 0.0]))

    def test_ready_skips_to_next_tag(self):
        s = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        s.enqueue(req(0, bank=1), 0.0)
        s.enqueue(req(1, bank=2), 0.0)
        ready = lambda r: r.bank == 2
        assert s.select(0.0, ready).app_id == 1


class TestPriority:
    def test_strict_order(self):
        s = PriorityScheduler(3, [2, 0, 1])
        for app in (0, 1, 2):
            for _ in range(2):
                s.enqueue(req(app), 0.0)
        assert drain(s) == [2, 2, 0, 0, 1, 1]

    def test_starvation_without_cap(self):
        s = PriorityScheduler(2, [0, 1])
        for i in range(10):
            s.enqueue(req(0), float(i))
        s.enqueue(req(1), 0.0)  # oldest request in the system
        order = drain(s, limit=10)
        assert 1 not in order  # app 1 starves while app 0 has requests

    def test_starvation_cap_rescues_old_requests(self):
        s = PriorityScheduler(2, [0, 1], starvation_cap=100.0)
        s.enqueue(req(1), 0.0)
        s.enqueue(req(0), 150.0)
        assert s.select(200.0).app_id == 1  # 200 cycles old > cap

    def test_invalid_order_rejected(self):
        with pytest.raises(ConfigurationError):
            PriorityScheduler(3, [0, 1])
        with pytest.raises(ConfigurationError):
            PriorityScheduler(3, [0, 1, 1])

    def test_rank_mapping(self):
        s = PriorityScheduler(3, [2, 0, 1])
        assert s.rank == [1, 2, 0]

    def test_ready_preference_within_priority(self):
        s = PriorityScheduler(2, [0, 1])
        s.enqueue(req(0, bank=1), 0.0)
        s.enqueue(req(0, bank=2), 1.0)
        ready = lambda r: r.bank == 2
        chosen = s.select(2.0, ready)
        assert chosen.bank == 2  # younger but ready, same app


class TestFRFCFS:
    def test_row_hits_first(self):
        hits = {2}
        s = FRFCFSScheduler(2, row_hit_probe=lambda r: r.bank in hits)
        s.enqueue(req(0, bank=1), 0.0)
        s.enqueue(req(1, bank=2), 5.0)
        assert s.select(6.0).app_id == 1  # younger but row hit

    def test_falls_back_to_oldest(self):
        s = FRFCFSScheduler(2, row_hit_probe=lambda r: False)
        s.enqueue(req(0), 1.0)
        s.enqueue(req(1), 0.0)
        assert s.select(2.0).app_id == 1

    def test_starvation_cap_beats_row_hits(self):
        hits = {2}
        s = FRFCFSScheduler(2, row_hit_probe=lambda r: r.bank in hits, cap=50.0)
        s.enqueue(req(0, bank=1), 0.0)
        s.enqueue(req(1, bank=2), 100.0)
        # the bank-1 request is 100 cycles old (> cap): served first
        assert s.select(100.0).app_id == 0

    def test_respects_ready_probe(self):
        s = FRFCFSScheduler(2, row_hit_probe=lambda r: True)
        s.enqueue(req(0, bank=1), 0.0)
        s.enqueue(req(1, bank=2), 5.0)
        ready = lambda r: r.bank == 2
        assert s.select(6.0, ready).app_id == 1
