"""Unit tests for the stats containers (repro.sim.stats)."""

import numpy as np
import pytest

from repro.core.apps import Workload
from repro.sim.stats import AppCounters, AppWindowResult, SimResult
from repro.util.errors import ConfigurationError


def window(name="app", instructions=1000.0, accesses=50, reads=40, writes=10,
           cycles=10_000.0, latency=300.0, interference=2_000.0,
           est=0.008) -> AppWindowResult:
    return AppWindowResult(
        name=name,
        instructions=instructions,
        accesses=accesses,
        reads=reads,
        writes=writes,
        window_cycles=cycles,
        mean_latency=latency,
        interference_cycles=interference,
        apc_alone_est=est,
    )


class TestAppWindowResult:
    def test_apc(self):
        assert window().apc == pytest.approx(50 / 10_000)

    def test_ipc(self):
        assert window().ipc == pytest.approx(0.1)

    def test_api_measured(self):
        assert window().api_measured == pytest.approx(0.05)

    def test_api_with_zero_instructions(self):
        w = window(instructions=0.0)
        assert w.api_measured == float("inf")

    def test_kilo_scalings(self):
        w = window()
        assert w.apkc == pytest.approx(w.apc * 1000)
        assert w.apki == pytest.approx(w.api_measured * 1000)


class TestSimResult:
    def _result(self) -> SimResult:
        return SimResult(
            apps=(window("a"), window("b", instructions=2000.0, accesses=100)),
            window_cycles=10_000.0,
            bus_utilization=0.8,
            row_hit_rate=0.0,
            scheduler_name="fcfs",
            dram_name="DDR2-400",
            seed=1,
        )

    def test_vectors(self):
        r = self._result()
        np.testing.assert_allclose(r.apc_shared, [0.005, 0.01])
        np.testing.assert_allclose(r.ipc_shared, [0.1, 0.2])
        assert r.total_apc == pytest.approx(0.015)
        assert r.names == ("a", "b")
        assert r.n == 2

    def test_speedups(self):
        r = self._result()
        np.testing.assert_allclose(
            r.speedups(np.array([0.2, 0.2])), [0.5, 1.0]
        )

    def test_speedups_shape_checked(self):
        with pytest.raises(ConfigurationError):
            self._result().speedups(np.ones(3))

    def test_estimated_profiles_default_api(self):
        r = self._result()
        wl = r.estimated_profiles()
        assert isinstance(wl, Workload)
        np.testing.assert_allclose(wl.apc_alone, [0.008, 0.008])
        # default API comes from the measured accesses/instructions
        np.testing.assert_allclose(wl.api, [0.05, 0.05])

    def test_apc_alone_est_vector(self):
        np.testing.assert_allclose(
            self._result().apc_alone_est, [0.008, 0.008]
        )


class TestAppCounters:
    def test_defaults_zero(self):
        c = AppCounters()
        assert c.reads_served == 0 and c.instructions == 0.0

    def test_minus_all_fields(self):
        a = AppCounters()
        a.instructions = 10.0
        a.reads_served = 5
        a.writes_served = 2
        a.latency_sum = 100.0
        a.latency_count = 7
        a.interference_cycles = 50.0
        d = a.minus(AppCounters())
        assert (d.instructions, d.reads_served, d.writes_served) == (10.0, 5, 2)
        assert (d.latency_sum, d.latency_count, d.interference_cycles) == (
            100.0, 7, 50.0,
        )
