"""Tests for the scheduler event log (repro.sim.eventlog)."""

import numpy as np
import pytest

from repro.sim import CoreSpec, FCFSScheduler, SimConfig, simulate
from repro.sim.eventlog import Event, EventLog
from repro.sim.mc.priority import PriorityScheduler
from repro.sim.mc.stf import StartTimeFairScheduler
from repro.sim.request import Request
from repro.util.errors import ConfigurationError


def req(app: int) -> Request:
    return Request(app_id=app, line_addr=0, is_write=False, created=0.0)


class TestAttachUnit:
    def test_enqueue_and_grant_recorded(self):
        log = EventLog()
        s = log.attach(FCFSScheduler(2))
        s.enqueue(req(0), 10.0)
        s.enqueue(req(1), 11.0)
        s.select(12.0)
        kinds = [e.kind for e in log.events]
        assert kinds == ["enqueue", "enqueue", "grant"]
        assert log.grants_in_order() == [0]

    def test_select_none_not_recorded(self):
        log = EventLog()
        s = log.attach(FCFSScheduler(1))
        s.select(1.0)
        assert len(log) == 0

    def test_service_delays(self):
        log = EventLog()
        s = log.attach(FCFSScheduler(1))
        s.enqueue(req(0), 5.0)
        s.select(25.0)
        assert log.service_delays() == {0: [20.0]}

    def test_ring_bound_and_dropped_counter(self):
        log = EventLog(capacity=3)
        s = log.attach(FCFSScheduler(1))
        for i in range(5):
            s.enqueue(req(0), float(i))
        assert len(log) == 3
        assert log.dropped == 2
        # the oldest events were evicted
        assert [e.cycle for e in log.events] == [2.0, 3.0, 4.0]

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)

    def test_filters(self):
        log = EventLog()
        s = log.attach(FCFSScheduler(2))
        s.enqueue(req(0), 1.0)
        s.enqueue(req(1), 2.0)
        s.select(3.0)
        assert len(log.of_kind("enqueue")) == 2
        assert len(log.for_app(0)) == 2  # enqueue + grant
        late = list(log.filter(lambda e: e.cycle >= 2.0))
        assert len(late) == 2


class TestEndToEnd:
    CFG = SimConfig(warmup_cycles=0, measure_cycles=120_000, seed=8)

    def _specs(self):
        return [
            CoreSpec(name="h", api=0.04, ipc_peak=0.4, mlp=12),
            CoreSpec(name="l", api=0.005, ipc_peak=0.6, mlp=2),
        ]

    def test_log_attached_to_simulation(self):
        log = EventLog()
        simulate(self._specs(), lambda n: log.attach(FCFSScheduler(n)), self.CFG)
        assert len(log.of_kind("grant")) > 100
        assert set(e.app_id for e in log.events) == {0, 1}

    def test_grant_order_reveals_policy(self):
        """Under strict priority the grant stream is dominated by the
        high-priority app whenever it has requests -- visible in the log."""
        log = EventLog()
        simulate(
            self._specs(),
            lambda n: log.attach(PriorityScheduler(n, [1, 0])),
            self.CFG,
        )
        delays = log.service_delays()
        # the prioritized light app is served almost immediately
        assert np.mean(delays[1]) < np.mean(delays[0])

    def test_stf_delays_reflect_shares(self):
        log = EventLog()
        beta = np.array([0.5, 0.5])
        simulate(
            self._specs(),
            lambda n: log.attach(StartTimeFairScheduler(n, beta)),
            self.CFG,
        )
        delays = log.service_delays()
        # under equal shares the light app (underloaded) waits far less
        assert np.mean(delays[1]) < np.mean(delays[0])

    def test_log_does_not_change_results(self):
        plain = simulate(self._specs(), lambda n: FCFSScheduler(n), self.CFG)
        log = EventLog()
        logged = simulate(
            self._specs(), lambda n: log.attach(FCFSScheduler(n)), self.CFG
        )
        np.testing.assert_array_equal(plain.apc_shared, logged.apc_shared)
