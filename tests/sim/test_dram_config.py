"""Unit tests for DRAM configuration (repro.sim.dram.config)."""

import pytest

from repro.sim.dram.config import (
    DRAMConfig,
    ddr2_400,
    ddr2_800,
    ddr2_1600,
    scaled_bandwidth,
)
from repro.util.errors import ConfigurationError


class TestBaseline:
    def test_table2_geometry(self):
        """Table II: 32 DRAM banks, 64 B lines, close page."""
        cfg = ddr2_400()
        assert cfg.total_banks == 32
        assert cfg.line_bytes == 64
        assert cfg.page_policy == "close"

    def test_peak_bandwidth_is_3_2_gbs(self):
        """DDR2-PC3200: 3.2 GB/s at a 5 GHz CPU clock."""
        cfg = ddr2_400()
        assert cfg.peak_gigabytes_per_sec(5e9) == pytest.approx(3.2)

    def test_peak_apc_is_one_percent(self):
        """Sec. III-A: 0.01 APC == 3.2 GB/s."""
        assert ddr2_400().peak_apc == pytest.approx(0.01)

    def test_latencies_are_12_5_ns(self):
        """tRP-tRCD-CL = 12.5-12.5-12.5 ns = 62.5 CPU cycles at 5 GHz."""
        cfg = ddr2_400()
        assert cfg.trp_cycles == pytest.approx(62.5)
        assert cfg.trcd_cycles == pytest.approx(62.5)
        assert cfg.cl_cycles == pytest.approx(62.5)

    def test_burst_is_100_cycles(self):
        """64 B / 3.2 GB/s = 20 ns = 100 CPU cycles."""
        assert ddr2_400().burst_cycles == pytest.approx(100.0)


class TestScaling:
    def test_scaled_variants_double_bandwidth(self):
        assert ddr2_800().peak_gigabytes_per_sec() == pytest.approx(6.4)
        assert ddr2_1600().peak_gigabytes_per_sec() == pytest.approx(12.8)

    def test_scaling_keeps_latencies(self):
        """Sec. VI-C: only the bus frequency changes."""
        base, scaled = ddr2_400(), ddr2_1600()
        assert scaled.trp_cycles == base.trp_cycles
        assert scaled.trcd_cycles == base.trcd_cycles
        assert scaled.cl_cycles == base.cl_cycles

    def test_scaling_shrinks_burst(self):
        assert ddr2_800().burst_cycles == pytest.approx(50.0)
        assert ddr2_1600().burst_cycles == pytest.approx(25.0)

    def test_scaled_bandwidth_factory(self):
        cfg = scaled_bandwidth(6.4)
        assert cfg.peak_gigabytes_per_sec() == pytest.approx(6.4)

    def test_with_bus_scale_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ddr2_400().with_bus_scale(0.0)


class TestValidation:
    def test_bad_page_policy(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(page_policy="sideways")

    def test_bad_address_map(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(address_map=("row", "col", "bank", "rank"))

    def test_row_not_multiple_of_line(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(row_bytes=100, line_bytes=64)

    def test_negative_latency(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(trp_cycles=-1.0)

    def test_refresh_longer_than_interval(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(trefi_cycles=100.0, trfc_cycles=200.0)

    def test_lines_per_row(self):
        assert ddr2_400().lines_per_row == 8192 // 64


class TestDDR3Preset:
    def test_peak_bandwidth(self):
        from repro.sim.dram.config import ddr3_1066

        cfg = ddr3_1066()
        assert cfg.peak_gigabytes_per_sec() == pytest.approx(8.533, abs=0.01)

    def test_geometry(self):
        from repro.sim.dram.config import ddr3_1066

        cfg = ddr3_1066()
        assert cfg.total_banks == 16
        assert cfg.page_policy == "close"

    def test_runs_end_to_end(self):
        from repro.sim import CoreSpec, FCFSScheduler, SimConfig, simulate
        from repro.sim.dram.config import ddr3_1066

        spec = CoreSpec(name="h", api=0.05, ipc_peak=1.0, mlp=24,
                        write_fraction=0.1)
        cfg = SimConfig(
            dram=ddr3_1066(), warmup_cycles=20_000,
            measure_cycles=150_000, seed=4,
        )
        res = simulate([spec] * 2, lambda n: FCFSScheduler(n), cfg)
        # two heavy streams approach the DDR3 peak (0.0267 APC); the
        # shorter 37.5-cycle burst makes turnaround losses relatively
        # larger than on DDR2, so ~85-90% utilization is the ceiling
        assert res.bus_utilization > 0.8
        assert 0.8 * 0.0267 < res.total_apc <= 0.0267
