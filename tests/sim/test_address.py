"""Unit tests for address mapping (repro.sim.dram.address)."""

import pytest

from repro.sim.dram.address import AddressMapper, DecodedAddress
from repro.sim.dram.config import DRAMConfig, ddr2_400
from repro.util.errors import ConfigurationError


@pytest.fixture
def mapper():
    return AddressMapper(ddr2_400())


class TestRoundTrip:
    def test_encode_decode_roundtrip(self, mapper):
        for addr in (0, 1, 31, 255, 12345, 999_999, (1 << mapper.address_bits) - 1):
            decoded = mapper.decode(addr)
            assert mapper.encode(decoded) == addr

    def test_decode_encode_roundtrip_random(self, mapper, rng):
        for _ in range(200):
            addr = int(rng.integers(0, 1 << mapper.address_bits))
            assert mapper.encode(mapper.decode(addr)) == addr


class TestFieldLayout:
    def test_paper_mapping_rank_in_low_bits(self, mapper):
        """Table II mapping channel/row/col/bank/rank: rank occupies the
        least-significant bits, so consecutive lines walk ranks first."""
        cfg = ddr2_400()
        d0 = mapper.decode(0)
        d1 = mapper.decode(1)
        assert d0.rank == 0 and d1.rank == 1
        assert d0.bank == d1.bank and d0.row == d1.row and d0.col == d1.col

    def test_consecutive_lines_spread_banks(self, mapper):
        """Walking addresses 0..31 touches all 32 (rank, bank) pairs
        before repeating -- streaming spreads across all banks."""
        seen = set()
        for addr in range(32):
            d = mapper.decode(addr)
            seen.add((d.rank, d.bank))
        assert len(seen) == 32

    def test_field_ranges(self, mapper):
        cfg = ddr2_400()
        for addr in range(0, 100_000, 7919):
            d = mapper.decode(addr)
            assert 0 <= d.channel < cfg.n_channels
            assert 0 <= d.rank < cfg.n_ranks
            assert 0 <= d.bank < cfg.n_banks
            assert 0 <= d.col < cfg.lines_per_row
            assert 0 <= d.row < mapper.row_space

    def test_bank_index_flattens_rank_major(self, mapper):
        d = DecodedAddress(channel=0, rank=2, bank=3, row=0, col=0)
        assert mapper.bank_index(d) == 2 * 8 + 3

    def test_custom_mapping_order(self):
        cfg = DRAMConfig(address_map=("row", "col", "rank", "bank", "channel"))
        mapper = AddressMapper(cfg)
        # channel now in the lowest bits (only 1 channel -> zero width)
        d0, d1 = mapper.decode(0), mapper.decode(1)
        assert d1.bank == d0.bank + 1  # bank is the lowest nonzero-width field


class TestValidation:
    def test_negative_address(self, mapper):
        with pytest.raises(ConfigurationError):
            mapper.decode(-1)

    def test_encode_out_of_range_field(self, mapper):
        with pytest.raises(ConfigurationError):
            mapper.encode(DecodedAddress(channel=0, rank=99, bank=0, row=0, col=0))

    def test_non_power_of_two_geometry(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(DRAMConfig(n_banks=12))
