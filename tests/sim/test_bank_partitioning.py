"""Tests for bank-set partitioning (application-aware bank isolation).

The mechanism the paper's related work [12] (Muralidhara et al.,
MICRO'11) proposes: map each application to disjoint banks so apps never
conflict in the banks -- orthogonal to bandwidth partitioning, which
splits the shared *bus*.
"""

import dataclasses

import numpy as np
import pytest

from repro.sim import CoreSpec, FCFSScheduler, SimConfig, simulate
from repro.sim.dram.address import AddressMapper
from repro.sim.dram.config import ddr2_400
from repro.sim.stream import MissAddressStream, StreamSpec
from repro.util.rng import RngStream

CFG = SimConfig(warmup_cycles=30_000, measure_cycles=200_000, seed=21)


class TestStreamSpecValidation:
    def test_valid_bank_set(self):
        StreamSpec(bank_set=(0, 1, 2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StreamSpec(bank_set=())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            StreamSpec(bank_set=(1, 1))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StreamSpec(bank_set=(-1,))

    def test_out_of_range_rejected_at_stream_build(self):
        spec = StreamSpec(bank_set=(99,))
        with pytest.raises(ValueError):
            MissAddressStream(ddr2_400(), spec, 0, RngStream(1, "s"))


class TestAddressConfinement:
    def test_addresses_stay_in_bank_set(self):
        cfg = ddr2_400()
        mapper = AddressMapper(cfg)
        allowed = (0, 5, 17, 31)
        stream = MissAddressStream(
            cfg, StreamSpec(row_locality=0.3, bank_set=allowed), 0,
            RngStream(7, "s"),
        )
        for _ in range(1000):
            d = mapper.decode(stream.next_address())
            assert mapper.bank_index(d) in allowed

    def test_single_bank_confinement(self):
        cfg = ddr2_400()
        mapper = AddressMapper(cfg)
        stream = MissAddressStream(
            cfg, StreamSpec(row_locality=0.0, bank_set=(13,)), 0,
            RngStream(7, "s"),
        )
        banks = {mapper.bank_index(mapper.decode(stream.next_address()))
                 for _ in range(200)}
        assert banks == {13}

    def test_none_uses_all_banks(self):
        cfg = ddr2_400()
        mapper = AddressMapper(cfg)
        stream = MissAddressStream(
            cfg, StreamSpec(row_locality=0.0), 0, RngStream(7, "s")
        )
        banks = {mapper.bank_index(mapper.decode(stream.next_address()))
                 for _ in range(2000)}
        assert len(banks) == 32


class TestBankIsolationEndToEnd:
    def _specs(self, partitioned: bool):
        half = tuple(range(16))
        other = tuple(range(16, 32))
        mk = lambda name, bank_set: CoreSpec(
            name=name, api=0.05, ipc_peak=0.4, mlp=16, write_fraction=0.1,
            stream=StreamSpec(row_locality=0.4, bank_set=bank_set),
        )
        if partitioned:
            return [mk("a", half), mk("b", other)]
        return [mk("a", None), mk("b", None)]

    def test_partitioned_run_conserves_bandwidth(self):
        res = simulate(self._specs(True), lambda n: FCFSScheduler(n), CFG)
        assert res.total_apc <= 0.01 + 1e-9
        assert res.bus_utilization > 0.9

    def test_bank_isolation_preserves_bus_sharing(self):
        """Bank partitioning isolates bank conflicts but cannot shift
        *bus* bandwidth: two symmetric heavy apps still split ~50/50."""
        res = simulate(self._specs(True), lambda n: FCFSScheduler(n), CFG)
        share = res.apps[0].apc / res.total_apc
        assert share == pytest.approx(0.5, abs=0.06)

    def test_isolation_does_not_collapse_throughput(self):
        """16 banks per app still cover the bank-parallelism needs of a
        saturated channel: throughput within a few % of unpartitioned."""
        part = simulate(self._specs(True), lambda n: FCFSScheduler(n), CFG)
        free = simulate(self._specs(False), lambda n: FCFSScheduler(n), CFG)
        assert part.total_apc == pytest.approx(free.total_apc, rel=0.05)
