"""Tests for online adaptive re-partitioning (repro.sim.controller)
and phase-changing workloads (repro.sim.cpu.CorePhase).

Together they exercise the last paragraph of paper Sec. IV-C: periodic
APC_alone profiling feeding share updates that track application
behaviour changes.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.partitioning import (
    PriorityAPC,
    ProportionalPartitioning,
    SquareRootPartitioning,
)
from repro.sim import (
    AdaptiveController,
    CorePhase,
    CoreSpec,
    SimConfig,
    StartTimeFairScheduler,
    run_alone,
    simulate,
)
from repro.util.errors import ConfigurationError, SimulationError


def heavy(name="heavy") -> CoreSpec:
    return CoreSpec(name=name, api=0.05, ipc_peak=0.5, mlp=16, write_fraction=0.1)


def light(name="light") -> CoreSpec:
    return CoreSpec(name=name, api=0.004, ipc_peak=0.5, mlp=2)


CFG = SimConfig(
    warmup_cycles=100_000,
    measure_cycles=400_000,
    seed=5,
    epoch_cycles=50_000.0,
)


class TestCorePhase:
    def test_params_at_walks_phases(self):
        spec = CoreSpec(
            name="p", api=0.01, ipc_peak=1.0, mlp=4,
            phases=(CorePhase(1000.0, 0.02, 0.5), CorePhase(2000.0, 0.03, 0.25)),
        )
        assert spec.params_at(0.0) == (0.01, 1.0)
        assert spec.params_at(1500.0) == (0.02, 0.5)
        assert spec.params_at(5000.0) == (0.03, 0.25)

    def test_unsorted_phases_rejected(self):
        with pytest.raises(SimulationError):
            CoreSpec(
                name="p", api=0.01, ipc_peak=1.0, mlp=4,
                phases=(CorePhase(2000.0, 0.02, 0.5), CorePhase(1000.0, 0.03, 0.25)),
            )

    def test_invalid_phase_values(self):
        with pytest.raises(ConfigurationError):
            CorePhase(0.0, -0.1, 1.0)
        with pytest.raises(SimulationError):
            CorePhase(-1.0, 0.1, 1.0)

    def test_phased_core_changes_measured_rate(self):
        """An app that turns memory-hungry mid-run shows the blended APC
        over a window spanning the transition."""
        calm = CoreSpec(name="c", api=0.004, ipc_peak=0.5, mlp=8)
        phased = dataclasses.replace(
            calm, phases=(CorePhase(300_000.0, 0.04, 0.5),)
        )
        cfg = SimConfig(warmup_cycles=0, measure_cycles=600_000, seed=9)
        calm_run = run_alone(calm, cfg)
        phased_run = run_alone(phased, cfg)
        assert phased_run.apc > 2.0 * calm_run.apc


class TestAdaptiveControllerUnit:
    def test_requires_share_based_scheme(self):
        with pytest.raises(ConfigurationError):
            AdaptiveController(PriorityAPC(), [0.01, 0.02])

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ConfigurationError):
            AdaptiveController(
                SquareRootPartitioning(), [0.01], smoothing=0.0
            )

    def test_rejects_nonpositive_api(self):
        with pytest.raises(ConfigurationError):
            AdaptiveController(SquareRootPartitioning(), [0.01, 0.0])

    def test_names_length_checked(self):
        with pytest.raises(ConfigurationError):
            AdaptiveController(
                SquareRootPartitioning(), [0.01, 0.02], names=["only-one"]
            )

    def test_no_update_before_estimates(self):
        from repro.sim.profiler import OnlineProfiler

        ctrl = AdaptiveController(SquareRootPartitioning(), [0.01, 0.02])
        profiler = OnlineProfiler(2, peak_apc=0.01)  # estimates still NaN
        sched = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        ctrl(1000.0, profiler, sched)
        assert ctrl.latest_beta is None
        np.testing.assert_allclose(sched.beta, [0.5, 0.5])


class TestAdaptiveControllerIntegration:
    def test_converges_to_static_partition(self):
        """On a stationary workload, online re-partitioning must converge
        to the shares a static alone-run profile gives (Sec. IV-C: the
        estimate inaccuracy 'will not affect the efficiency')."""
        specs = [heavy(), light()]
        scheme = SquareRootPartitioning()
        ctrl = AdaptiveController(
            scheme, [s.api for s in specs], names=[s.name for s in specs]
        )
        result = simulate(
            specs,
            lambda n: StartTimeFairScheduler(n, np.full(n, 0.5)),
            CFG,
            repartition_hook=ctrl,
        )
        assert ctrl.latest_beta is not None

        # static reference shares from true alone profiles
        from repro.core.apps import AppProfile, Workload

        truth = Workload.of(
            "truth",
            [
                AppProfile(s.name, api=s.api, apc_alone=run_alone(s, CFG).apc)
                for s in specs
            ],
        )
        np.testing.assert_allclose(
            ctrl.latest_beta, scheme.beta(truth), atol=0.08
        )

    def test_adaptation_tracks_phase_change(self):
        """When the light app turns heavy mid-run, a Proportional
        controller must shift bandwidth toward it."""
        morphing = dataclasses.replace(
            light("morph"),
            mlp=16,
            phases=(CorePhase(250_000.0, 0.05, 0.5),),
        )
        specs = [heavy(), morphing]
        ctrl = AdaptiveController(
            ProportionalPartitioning(),
            # API changes at the phase boundary; use the late-phase value
            # (the paper measures API online; we declare it)
            [0.05, 0.05],
            smoothing=1.0,
        )
        cfg = dataclasses.replace(CFG, warmup_cycles=0, measure_cycles=500_000)
        simulate(
            specs,
            lambda n: StartTimeFairScheduler(n, np.full(n, 0.5)),
            cfg,
            repartition_hook=ctrl,
        )
        assert len(ctrl.history) >= 2
        early_beta = ctrl.history[1][1]
        late_beta = ctrl.history[-1][1]
        # the morphing app's share must grow substantially after its phase
        assert late_beta[1] > early_beta[1] + 0.15

    def test_smoothing_damps_updates(self):
        specs = [heavy(), light()]
        raw = AdaptiveController(SquareRootPartitioning(), [s.api for s in specs])
        smooth = AdaptiveController(
            SquareRootPartitioning(), [s.api for s in specs], smoothing=0.2
        )
        for ctrl in (raw, smooth):
            simulate(
                specs,
                lambda n: StartTimeFairScheduler(n, np.full(n, 0.5)),
                CFG,
                repartition_hook=ctrl,
            )
        # both settle near the same shares eventually
        np.testing.assert_allclose(
            raw.latest_beta, smooth.latest_beta, atol=0.1
        )
