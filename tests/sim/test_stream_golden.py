"""Regression: batched stream generation reproduces pre-change sequences.

``golden_stream.json`` pins 300-element address sequences (and one
core's full arrival timeline) produced by the *scalar* pre-optimization
generators.  The batched draw (:meth:`MissAddressStream._draw_bounded`
reading raw PCG64 words on the power-of-two fast path) must emit the
exact same integers in the exact same order, and the core's
exponential-gap/write-coin interleaving must be untouched -- otherwise
every simulation timestamp downstream silently shifts.

The recipes below must stay byte-for-byte what generated the fixture.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.sim.cpu import CorePhase, CoreSim, CoreSpec
from repro.sim.dram.config import DRAMConfig, ddr2_400
from repro.sim.stream import MissAddressStream, StreamSpec
from repro.util.rng import RngStream

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_stream.json"
_GOLDEN = json.loads(GOLDEN_PATH.read_text())


def _stream_cases() -> dict[str, MissAddressStream]:
    cases = {
        "default": (ddr2_400(), StreamSpec()),
        "local": (ddr2_400(), StreamSpec(row_locality=0.9, footprint_rows=32)),
        "banked": (ddr2_400(), StreamSpec(bank_set=(0, 5, 9, 30))),
        "two_chan": (
            DRAMConfig(name="2ch", n_channels=2),
            StreamSpec(row_locality=0.3),
        ),
    }
    return {
        name: MissAddressStream(cfg, spec, 2, RngStream(42, f"stream.{name}"))
        for name, (cfg, spec) in cases.items()
    }


@pytest.mark.parametrize("name", sorted(_GOLDEN["addresses"]))
def test_address_sequences_bit_identical(name):
    stream = _stream_cases()[name]
    golden = _GOLDEN["addresses"][name]
    produced = [int(stream.next_address()) for _ in golden]
    assert produced == golden


def test_arrival_timeline_bit_identical():
    spec = CoreSpec(
        name="g",
        api=0.01,
        ipc_peak=2.0,
        mlp=10**9,
        write_fraction=0.2,
        write_queue_cap=10**9,
        phases=(CorePhase(start_cycle=30_000.0, api=0.05, ipc_peak=0.5),),
    )
    core = CoreSim(
        0,
        spec,
        MissAddressStream(ddr2_400(), StreamSpec(), 0, RngStream(42, "s")),
        RngStream(42, "core.g"),
    )
    golden = _GOLDEN["arrivals"]
    times, writes, line_addrs = [], [], []
    t = core.start(0.0)
    for _ in golden["times"]:
        times.append(repr(float(t)))
        req, nxt = core.generate_access(t)
        writes.append(req.is_write)
        line_addrs.append(req.line_addr)
        t = nxt
    assert times == golden["times"]
    assert writes == golden["writes"]
    assert line_addrs == golden["line_addrs"]


# ----------------------------------------------------------------------
# the raw-word recipe vs numpy's own bounded-integer implementation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize(
    "spec",
    [
        StreamSpec(),  # pow2 everywhere, includes a bound of 1 (channels)
        StreamSpec(footprint_rows=32),
        StreamSpec(bank_set=(0, 5, 9, 30)),  # 4-element flat-slot draw
        StreamSpec(bank_set=(1, 2, 6)),  # non-pow2 bound -> fallback path
        StreamSpec(footprint_rows=300),  # non-pow2 row span -> fallback
    ],
    ids=["default", "small", "banked4", "banked3", "rows300"],
)
def test_draw_bounded_matches_generator_integers(seed, spec):
    """Property promised in the stream module docstring: the fast path
    is bit-identical to per-call ``Generator.integers``, including the
    32-bit half-word buffer surviving interleaved full-word draws."""
    stream = MissAddressStream(ddr2_400(), spec, 1, RngStream(seed, "a"))
    ref = RngStream(seed, "a").generator
    bounds = np.asarray(stream._bounds)
    for i in range(200):
        assert stream._draw_bounded() == ref.integers(0, bounds).tolist()
        if i % 3 == 0:  # interleave whole-word draws like row-locality does
            assert stream._g.random() == ref.random()
