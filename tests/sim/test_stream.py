"""Unit tests for the miss-address stream generator (repro.sim.stream)."""

import numpy as np
import pytest

from repro.sim.dram.address import AddressMapper
from repro.sim.dram.config import ddr2_400
from repro.sim.stream import MissAddressStream, StreamSpec
from repro.util.rng import RngStream


def make_stream(row_locality=0.5, footprint=512, slot=0, seed=3) -> MissAddressStream:
    return MissAddressStream(
        ddr2_400(),
        StreamSpec(row_locality=row_locality, footprint_rows=footprint),
        slot,
        RngStream(seed, f"s{slot}"),
    )


class TestStreamSpec:
    def test_validation(self):
        with pytest.raises(Exception):
            StreamSpec(row_locality=1.5)
        with pytest.raises(Exception):
            StreamSpec(footprint_rows=0)


class TestAddressProperties:
    def test_addresses_decode_within_geometry(self):
        stream = make_stream()
        mapper = AddressMapper(ddr2_400())
        for _ in range(500):
            d = mapper.decode(stream.next_address())
            assert 0 <= d.bank < 8
            assert 0 <= d.rank < 4
            assert 0 <= d.col < 128

    def test_rows_stay_in_footprint(self):
        stream = make_stream(footprint=64, slot=2)
        mapper = AddressMapper(ddr2_400())
        rows = {mapper.decode(stream.next_address()).row for _ in range(1000)}
        assert all(stream.row_base <= r < stream.row_base + 64 for r in rows)

    def test_disjoint_slots_disjoint_rows(self):
        s0, s1 = make_stream(slot=0, footprint=128), make_stream(slot=1, footprint=128)
        mapper = AddressMapper(ddr2_400())
        rows0 = {mapper.decode(s0.next_address()).row for _ in range(300)}
        rows1 = {mapper.decode(s1.next_address()).row for _ in range(300)}
        assert rows0.isdisjoint(rows1)

    def test_banks_spread_uniformly(self):
        stream = make_stream(row_locality=0.0)
        mapper = AddressMapper(ddr2_400())
        banks = [mapper.bank_index(mapper.decode(stream.next_address()))
                 for _ in range(3200)]
        counts = np.bincount(banks, minlength=32)
        # each of 32 banks expects ~100 hits; allow generous slack
        assert counts.min() > 50 and counts.max() < 170


class TestRowLocality:
    def _run_fraction(self, p: float) -> float:
        stream = make_stream(row_locality=p, seed=11)
        mapper = AddressMapper(ddr2_400())
        prev = None
        same = 0
        n = 4000
        for _ in range(n):
            d = mapper.decode(stream.next_address())
            if prev is not None and d.row == prev.row and d.bank == prev.bank:
                same += 1
            prev = d
        return same / n

    def test_zero_locality_rarely_repeats_row(self):
        assert self._run_fraction(0.0) < 0.02

    def test_high_locality_mostly_repeats_row(self):
        # p=0.8 minus end-of-row breaks
        assert self._run_fraction(0.8) > 0.7

    def test_locality_monotone(self):
        assert self._run_fraction(0.2) < self._run_fraction(0.6)

    def test_row_runs_advance_columns(self):
        stream = make_stream(row_locality=1.0, seed=5)
        mapper = AddressMapper(ddr2_400())
        d1 = mapper.decode(stream.next_address())
        d2 = mapper.decode(stream.next_address())
        if d1.col + 1 < ddr2_400().lines_per_row:
            assert d2.col == d1.col + 1
            assert d2.row == d1.row


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a, b = make_stream(seed=42), make_stream(seed=42)
        assert [a.next_address() for _ in range(50)] == [
            b.next_address() for _ in range(50)
        ]

    def test_different_slots_differ(self):
        a, b = make_stream(slot=0, seed=42), make_stream(slot=1, seed=42)
        assert [a.next_address() for _ in range(20)] != [
            b.next_address() for _ in range(20)
        ]
