"""Shadow sampler determinism/bounds and online drift scoring."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.util.errors import ConfigurationError
from repro.watch import DriftMonitor, ShadowSampler


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ----------------------------------------------------------------------
# sampler
# ----------------------------------------------------------------------
class TestShadowSampler:
    def test_stride_is_deterministic(self):
        s = ShadowSampler(0.5)  # stride 2: every second call
        hits = []
        for _ in range(10):
            if s.try_acquire():
                hits.append(True)
                s.release()
        assert len(hits) == 5

    def test_rate_zero_never_samples(self):
        s = ShadowSampler(0.0)
        assert not any(s.try_acquire() for _ in range(100))
        assert s.snapshot()["calls"] == 0  # fast path skips the counter

    def test_rate_one_samples_everything(self):
        s = ShadowSampler(1.0, max_inflight=200)
        assert all(s.try_acquire() for _ in range(100))

    def test_default_rate_stride(self):
        assert ShadowSampler(0.05).stride == 20
        assert ShadowSampler(0.33).stride == 3

    def test_inflight_bound_skips_instead_of_queueing(self):
        s = ShadowSampler(1.0, max_inflight=1)
        assert s.try_acquire()
        assert not s.try_acquire()  # bound full: skipped, not queued
        snap = s.snapshot()
        assert snap["sampled"] == 1
        assert snap["skipped_inflight"] == 1
        s.release()
        assert s.try_acquire()

    def test_release_must_match_acquire(self):
        s = ShadowSampler(1.0)
        with pytest.raises(RuntimeError, match="release"):
            s.release()

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            ShadowSampler(1.5)
        with pytest.raises(ConfigurationError):
            ShadowSampler(0.5, max_inflight=0)


# ----------------------------------------------------------------------
# drift monitor
# ----------------------------------------------------------------------
class TestDriftMonitor:
    def monitor(self, **kw) -> DriftMonitor:
        kw.setdefault("max_mape", 0.05)
        kw.setdefault("window", 4)
        kw.setdefault("min_samples", 4)
        return DriftMonitor(**kw)

    def test_accurate_predictions_stay_healthy(self):
        mon = self.monitor()
        for _ in range(10):
            out = mon.record("sqrt", [0.4, 0.3], [0.4, 0.3])
        assert out["mape"] == pytest.approx(0.0)
        assert out["r2"] == pytest.approx(1.0)
        assert not mon.degraded

    def test_drifted_predictions_breach_after_min_samples(self):
        mon = self.monitor()
        out = mon.record("sqrt", [1.0], [0.5])
        assert not out["breached"]  # n=1 < min_samples: no verdict yet
        for _ in range(3):
            out = mon.record("sqrt", [1.0], [0.5])
        assert out["breached"]
        assert mon.degraded
        assert mon.breached_schemes() == ("sqrt",)

    def test_breach_is_per_scheme(self):
        mon = self.monitor()
        for _ in range(4):
            mon.record("sqrt", [1.0], [0.5])
            mon.record("prop", [1.0], [1.0])
        snap = mon.snapshot()
        assert snap["schemes"]["sqrt"]["breached"]
        assert not snap["schemes"]["prop"]["breached"]
        assert snap["degraded"]  # any breached scheme degrades the artifact

    def test_hysteresis_band_prevents_flapping(self):
        mon = self.monitor()  # gate 0.05, recovery at 0.04
        for _ in range(4):
            mon.record("sqrt", [1.0], [0.5])
        assert mon.degraded
        # refresh the window down to one 18%-off pair: mape 0.045 sits
        # inside the (0.04, 0.05] hysteresis band -> still degraded
        out = mon.record("sqrt", [1.0], [0.82])
        for _ in range(3):
            out = mon.record("sqrt", [1.0], [1.0])
        assert out["mape"] == pytest.approx(0.045)
        assert mon.degraded
        # one more perfect pair evicts it: below the band -> recovered
        out = mon.record("sqrt", [1.0], [1.0])
        assert out["mape"] == pytest.approx(0.0)
        assert not mon.degraded

    def test_window_is_bounded(self):
        mon = self.monitor(window=4)
        for _ in range(100):
            out = mon.record("sqrt", [1.0], [0.5])
        assert out["n"] == 4
        assert mon.snapshot()["samples"] == 100

    def test_shape_mismatch_rejected(self):
        mon = self.monitor()
        with pytest.raises(ConfigurationError, match="shape mismatch"):
            mon.record("sqrt", [1.0, 2.0], [1.0])
        with pytest.raises(ConfigurationError, match="shape mismatch"):
            mon.record("sqrt", [], [])

    def test_age_tracks_last_sample(self):
        clock = FakeClock()
        mon = self.monitor(clock=clock)
        assert mon.age_s() is None
        mon.record("sqrt", [1.0], [1.0])
        clock.advance(42.0)
        assert mon.age_s() == pytest.approx(42.0)

    def test_registry_mirroring(self):
        reg = MetricsRegistry()
        mon = self.monitor(registry=reg)
        for _ in range(4):
            mon.record("sqrt", [1.0], [0.5])
        assert reg.get_value("surrogate.drift.samples", scheme="sqrt") == 4.0
        assert reg.get_value("surrogate.drift.mape", scheme="sqrt") == pytest.approx(0.5)
        assert reg.get_value("surrogate.drift.degraded") == 1.0

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DriftMonitor(max_mape=0.0)
        with pytest.raises(ConfigurationError):
            DriftMonitor(window=0)
        with pytest.raises(ConfigurationError):
            DriftMonitor(recover_margin=1.5)
