"""SLO engine: burn-rate math, multi-window alerting, config loading."""

from __future__ import annotations

import json

import pytest

from repro.util.errors import ConfigurationError
from repro.watch import SLO, SLOEngine, WindowedCounts, default_slos
from repro.watch.slo import load_slos, slos_from_json


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def avail_slo(**overrides) -> SLO:
    base = dict(
        name="t.availability", signal="availability", selector="/v1/t",
        objective=0.999,
    )
    base.update(overrides)
    return SLO(**base)


# ----------------------------------------------------------------------
# SLO declaration and validation
# ----------------------------------------------------------------------
class TestSLOValidation:
    def test_unknown_signal_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown signal"):
            avail_slo(signal="vibes")

    def test_objective_must_be_a_fraction(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError, match="objective"):
                avail_slo(objective=bad)

    def test_latency_needs_threshold(self):
        with pytest.raises(ConfigurationError, match="threshold_ms"):
            avail_slo(signal="latency")

    def test_staleness_needs_max_age(self):
        with pytest.raises(ConfigurationError, match="max_age_s"):
            avail_slo(signal="staleness")

    def test_windows_must_be_ordered(self):
        with pytest.raises(ConfigurationError, match="fast_window_s"):
            avail_slo(fast_window_s=3600.0, slow_window_s=300.0)

    def test_selector_matching(self):
        assert avail_slo(selector="*").matches("/anything")
        assert avail_slo(selector="/v1/stream/*").matches("/v1/stream/abc")
        assert not avail_slo(selector="/v1/stream/*").matches("/v1/qos")
        assert avail_slo(selector="/v1/t").matches("/v1/t")
        assert not avail_slo(selector="/v1/t").matches("/v1/t2")


# ----------------------------------------------------------------------
# windowed counts
# ----------------------------------------------------------------------
class TestWindowedCounts:
    def test_counts_split_good_and_bad(self):
        clock = FakeClock()
        w = WindowedCounts(3600.0, clock=clock)
        for _ in range(3):
            w.record(True)
        w.record(False)
        assert w.counts(300.0) == (3.0, 1.0)

    def test_old_events_age_out_of_the_window(self):
        clock = FakeClock()
        w = WindowedCounts(3600.0, clock=clock)
        w.record(False)
        clock.advance(301.0)
        w.record(True)
        assert w.counts(300.0) == (1.0, 0.0)  # the error left the window
        assert w.counts(3600.0) == (1.0, 1.0)  # ... but not the horizon

    def test_memory_is_bounded_by_horizon(self):
        clock = FakeClock()
        w = WindowedCounts(100.0, bucket_s=10.0, clock=clock)
        for _ in range(1000):
            w.record(True)
            clock.advance(1.0)
        assert len(w._buckets) <= 100 / 10 + 1

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ConfigurationError):
            WindowedCounts(0.0)


# ----------------------------------------------------------------------
# burn-rate evaluation
# ----------------------------------------------------------------------
class TestBurnRates:
    def engine(self, *slos):
        clock = FakeClock()
        return SLOEngine(slos, clock=clock), clock

    def test_all_good_is_ok(self):
        engine, _ = self.engine(avail_slo())
        for _ in range(100):
            engine.record_request("/v1/t", 1.0, error=False)
        (st,) = engine.status()
        assert st["state"] == "ok"
        assert st["fast"]["burn"] == 0.0
        assert st["breached_for_s"] == 0.0

    def test_burn_is_error_rate_over_budget(self):
        engine, _ = self.engine(avail_slo())
        for i in range(20):
            engine.record_request("/v1/t", 1.0, error=(i % 2 == 0))
        (st,) = engine.status()
        # error rate 0.5 against a 0.001 budget: burn 500 in both windows
        assert st["fast"]["burn"] == pytest.approx(500.0)
        assert st["slow"]["burn"] == pytest.approx(500.0)
        assert st["state"] == "page"

    def test_min_events_guard_blocks_tiny_windows(self):
        engine, _ = self.engine(avail_slo())
        for _ in range(9):  # min_events defaults to 10
            engine.record_request("/v1/t", 1.0, error=True)
        (st,) = engine.status()
        assert st["fast"]["burn"] > 14.4
        assert st["state"] == "ok"

    def test_slow_window_only_is_a_warn(self):
        engine, clock = self.engine(avail_slo())
        for _ in range(20):
            engine.record_request("/v1/t", 1.0, error=True)
        clock.advance(600.0)  # past the fast window, inside the slow one
        for _ in range(50):
            engine.record_request("/v1/t", 1.0, error=False)
        (st,) = engine.status()
        assert not st["fast"]["burning"]
        assert st["slow"]["burning"]
        assert st["state"] == "warn"

    def test_fast_window_only_is_a_warn(self):
        engine, clock = self.engine(avail_slo())
        # a long good history dilutes the slow burn below its threshold
        for _ in range(2000):
            engine.record_request("/v1/t", 1.0, error=False)
        clock.advance(600.0)
        for i in range(20):
            engine.record_request("/v1/t", 1.0, error=(i % 2 == 0))
        (st,) = engine.status()
        assert st["fast"]["burning"]
        assert not st["slow"]["burning"]
        assert st["state"] == "warn"

    def test_breached_for_tracks_the_clock(self):
        engine, clock = self.engine(avail_slo())
        for _ in range(20):
            engine.record_request("/v1/t", 1.0, error=True)
        assert engine.status()[0]["state"] == "page"
        clock.advance(120.0)
        assert engine.status()[0]["breached_for_s"] == pytest.approx(120.0)
        # recovery resets the breach clock
        clock.advance(3600.0)
        for _ in range(50):
            engine.record_request("/v1/t", 1.0, error=False)
        assert engine.status()[0]["state"] == "ok"
        assert engine.status()[0]["breached_for_s"] == 0.0

    def test_latency_slo_counts_threshold_misses_of_successes(self):
        slo = SLO(
            "t.latency", "latency", "/v1/t", objective=0.99, threshold_ms=50.0
        )
        engine, _ = self.engine(slo)
        for _ in range(10):
            engine.record_request("/v1/t", 10.0, error=False)  # good
        for _ in range(10):
            engine.record_request("/v1/t", 200.0, error=False)  # slow
        # errors never count toward the latency objective
        engine.record_request("/v1/t", 1.0, error=True)
        (st,) = engine.status()
        assert st["fast"]["total"] == 20
        assert st["fast"]["error_rate"] == pytest.approx(0.5)
        assert st["state"] == "page"

    def test_solver_events_route_by_source(self):
        slo = SLO(
            "s.latency", "latency", "solver:sim", objective=0.9,
            threshold_ms=100.0,
        )
        engine, _ = self.engine(slo)
        for _ in range(10):
            engine.record_solve("sim", 500.0)
            engine.record_solve("analytic", 500.0)  # different selector
        (st,) = engine.status()
        assert st["fast"]["total"] == 10

    def test_staleness_is_level_based(self):
        slo = SLO(
            "shadow.staleness", "staleness", "drift:shadow_age_s",
            max_age_s=900.0,
        )
        engine, _ = self.engine(slo)
        (st,) = engine.status()
        assert st["state"] == "ok"  # no feed yet: nothing to page on
        engine.set_level("drift:shadow_age_s", 100.0)
        assert engine.status()[0]["state"] == "ok"
        engine.set_level("drift:shadow_age_s", 1000.0)
        st = engine.status()[0]
        assert st["state"] == "page"
        assert st["value"] == 1000.0

    def test_alerts_section_shape(self):
        engine, _ = self.engine(avail_slo())
        for _ in range(20):
            engine.record_request("/v1/t", 1.0, error=True)
        alerts = engine.alerts()
        assert alerts["paging"] == 1
        assert alerts["warning"] == 0
        assert alerts["page"][0]["name"] == "t.availability"
        assert alerts["page"][0]["state"] == "page"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            SLOEngine([avail_slo(), avail_slo()])


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
class TestConfig:
    def test_default_slos_cover_the_endpoints(self):
        slos = default_slos()
        selectors = {s.selector for s in slos}
        assert "/v1/partition" in selectors
        assert "solver:surrogate" in selectors
        assert any(s.signal == "staleness" for s in slos)
        SLOEngine(slos)  # constructible: unique names, all valid

    def test_slos_from_json_roundtrip(self):
        data = [s.as_dict() for s in default_slos()]
        parsed = slos_from_json(json.loads(json.dumps(data)))
        assert parsed == default_slos()

    def test_unknown_field_is_an_error(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            slos_from_json(
                [{"name": "x", "signal": "availability", "selector": "/v1/t",
                  "burn": 2}]
            )

    def test_empty_config_is_an_error(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            slos_from_json([])

    def test_load_slos_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(
            [{"name": "x", "signal": "availability", "selector": "/v1/t"}]
        ))
        (slo,) = load_slos(path)
        assert slo.name == "x"
        assert slo.objective == 0.999  # defaults fill in

    def test_load_slos_bad_json(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_slos(path)

    def test_load_slos_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_slos(tmp_path / "absent.json")
