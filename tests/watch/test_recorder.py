"""Flight recorder: bounded ring, per-kind tallies, filtered snapshots."""

from __future__ import annotations

import pytest

from repro.util.errors import ConfigurationError
from repro.watch import FlightRecorder


def test_records_come_back_newest_first():
    rec = FlightRecorder(capacity=8, clock=lambda: 5.0)
    rec.record("error", path="/a", status=500)
    rec.record("slow", path="/b", latency_ms=900.0)
    snap = rec.snapshot()
    assert [r["kind"] for r in snap["records"]] == ["slow", "error"]
    assert snap["records"][0]["seq"] == 2
    assert snap["records"][0]["ts_unix"] == 5.0
    assert snap["stored"] == 2


def test_capacity_bounds_the_ring_but_not_the_tallies():
    rec = FlightRecorder(capacity=4)
    for i in range(10):
        rec.record("shed", path=f"/p{i}", status=429)
    snap = rec.snapshot()
    assert snap["stored"] == 4
    assert snap["counts"]["shed"] == 10  # lifetime tally survives eviction
    assert [r["path"] for r in snap["records"]] == ["/p9", "/p8", "/p7", "/p6"]


def test_kind_filter_and_limit():
    rec = FlightRecorder()
    rec.record("error", path="/a", status=500)
    rec.record("timeout", path="/b", status=504)
    rec.record("error", path="/c", status=503)
    snap = rec.snapshot(kind="error", limit=1)
    assert len(snap["records"]) == 1
    assert snap["records"][0]["path"] == "/c"
    assert snap["counts"]["error"] == 2


def test_detail_is_copied_not_aliased():
    rec = FlightRecorder()
    detail = {"reason": "x"}
    rec.record("fallback", path="/a", detail=detail)
    detail["reason"] = "mutated"
    assert rec.snapshot()["records"][0]["detail"] == {"reason": "x"}


def test_unknown_kind_rejected():
    rec = FlightRecorder()
    with pytest.raises(ConfigurationError, match="unknown anomaly kind"):
        rec.record("mystery", path="/a")
    with pytest.raises(ConfigurationError, match="unknown anomaly kind"):
        rec.snapshot(kind="mystery")


def test_capacity_validation():
    with pytest.raises(ConfigurationError):
        FlightRecorder(capacity=0)
