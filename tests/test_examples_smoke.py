"""Smoke tests: the model-only examples run end-to-end as scripts.

Simulation-heavy examples (qos_partitioning, simulator_validation,
online_adaptation, trace_replay_workflow, shared_l2_partitioning) are
exercised by the integration suite through the same APIs; here we
execute the fast, model-only scripts exactly as a user would.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "datacenter_consolidation.py",
    "fairness_throughput_frontier.py",
    "service_quickstart.py",
    "trace_quickstart.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 200  # produced a real report


def test_quickstart_output_mentions_all_schemes(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    for token in ("Square_root", "Proportional", "Priority_APC", "Priority_API"):
        assert token in out


def test_frontier_output_names_knee(capsys):
    runpy.run_path(
        str(EXAMPLES / "fairness_throughput_frontier.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "knee" in out
    assert "Pareto frontier" in out


def test_all_examples_exist():
    expected = {
        "quickstart.py",
        "qos_partitioning.py",
        "datacenter_consolidation.py",
        "simulator_validation.py",
        "design_your_own_metric.py",
        "fairness_throughput_frontier.py",
        "trace_replay_workflow.py",
        "online_adaptation.py",
        "shared_l2_partitioning.py",
        "service_quickstart.py",
    }
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= found
