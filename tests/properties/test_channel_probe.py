"""Probe/issue consistency properties of the channel timing model.

The scheduler relies on two channel probes -- ``earliest_data_start``
and ``bank_ready_by`` -- to plan issues.  These properties pin down the
contract: probes never promise earlier service than ``issue`` delivers,
and issuing never silently beats the probe (no time travel in either
direction).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.dram.channel import Channel
from repro.sim.dram.config import DRAMConfig
from repro.sim.request import Request


def _req(bank: int, row: int, write: bool) -> Request:
    r = Request(app_id=0, line_addr=0, is_write=write, created=0.0)
    r.bank = bank
    r.row = row
    return r


@st.composite
def traffic(draw):
    policy = draw(st.sampled_from(["close", "open"]))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, 7),       # bank
                st.integers(0, 32),      # row
                st.booleans(),           # write
                st.floats(0.0, 400.0),   # gap before issue
            ),
            min_size=1,
            max_size=40,
        )
    )
    return policy, ops


class TestProbeIssueConsistency:
    @given(traffic())
    @settings(max_examples=80, deadline=None)
    def test_probe_equals_issue_data_start(self, t):
        """``earliest_data_start`` computed immediately before ``issue``
        predicts the realized data_start exactly (refresh aside)."""
        policy, ops = t
        cfg = DRAMConfig(page_policy=policy, trefi_cycles=0.0, trfc_cycles=0.0)
        ch = Channel(cfg)
        now = 0.0
        for bank, row, write, gap in ops:
            now += gap
            probe = ch.earliest_data_start(bank, row, now, is_write=write)
            result = ch.issue(_req(bank, row, write), now)
            assert result.data_start == pytest.approx(probe)

    @given(traffic())
    @settings(max_examples=80, deadline=None)
    def test_bank_ready_probe_is_honest(self, t):
        """If ``bank_ready_by(deadline)`` is True then issuing cannot be
        delayed past the deadline by the *bank* (only by bus/turnaround)."""
        policy, ops = t
        cfg = DRAMConfig(page_policy=policy, trefi_cycles=0.0, trfc_cycles=0.0)
        ch = Channel(cfg)
        now = 0.0
        for bank, row, write, gap in ops:
            now += gap
            deadline = max(now, ch.bus_free)
            ready = ch.bank_ready_by(bank, row, now, deadline)
            result = ch.issue(_req(bank, row, write), now)
            if ready:
                # any delay beyond the deadline must be bus-side
                turnaround = max(
                    cfg.twtr_cycles, cfg.trtw_cycles
                )
                assert result.data_start <= deadline + turnaround + 1e-9

    @given(traffic())
    @settings(max_examples=60, deadline=None)
    def test_issue_never_precedes_request_time(self, t):
        policy, ops = t
        cfg = DRAMConfig(page_policy=policy)
        ch = Channel(cfg)
        now = 0.0
        for bank, row, write, gap in ops:
            now += gap
            result = ch.issue(_req(bank, row, write), now)
            assert result.data_start >= now
            assert result.bank_ready >= result.data_start
