"""Property-based tests for QoS planning and admission control."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AppProfile, QoSPartitioner, QoSTarget, Workload
from repro.core.qos import admit_targets
from repro.util.errors import InfeasibleError


@st.composite
def qos_scenario(draw):
    n = draw(st.integers(2, 6))
    apps = [
        AppProfile(
            f"a{i}",
            api=draw(st.floats(1e-3, 0.05)),
            apc_alone=draw(st.floats(5e-4, 0.009)),
        )
        for i in range(n)
    ]
    wl = Workload.of("hyp", apps)
    b = draw(st.floats(0.003, 0.012))
    n_targets = draw(st.integers(1, n))
    targets = [
        QoSTarget(f"a{i}", apps[i].ipc_alone * draw(st.floats(0.05, 1.0)))
        for i in range(n_targets)
    ]
    return wl, b, targets


class TestPlanProperties:
    @given(qos_scenario())
    @settings(max_examples=80, deadline=None)
    def test_plan_feasibility_invariants(self, scenario):
        """Whenever a plan exists: targets pinned exactly, bandwidth
        conserved, nobody above standalone demand."""
        wl, b, targets = scenario
        try:
            plan = QoSPartitioner().plan(wl, b, targets)
        except InfeasibleError:
            # must genuinely be infeasible: reservations exceed B or a
            # target exceeds alone IPC
            total_res = sum(
                t.ipc_target * wl[wl.index_of(t.app_name)].api for t in targets
            )
            over = any(
                t.ipc_target > wl[wl.index_of(t.app_name)].ipc_alone + 1e-12
                for t in targets
            )
            assert over or total_res > b - 1e-12
            return
        op = plan.operating_point
        for t in targets:
            i = wl.index_of(t.app_name)
            assert op.ipc_shared[i] == pytest.approx(t.ipc_target, rel=1e-9)
        assert plan.apc_shared.sum() <= b + 1e-9
        assert np.all(plan.apc_shared <= wl.apc_alone + 1e-12)


class TestAdmissionCountOptimality:
    @given(qos_scenario())
    @settings(max_examples=60, deadline=None)
    def test_greedy_admits_maximum_count(self, scenario):
        """Cheap-first admission matches the brute-force maximum subset
        size (small n makes exhaustive checking cheap)."""
        wl, b, targets = scenario
        feasible = [
            t
            for t in targets
            if t.ipc_target <= wl[wl.index_of(t.app_name)].ipc_alone + 1e-12
        ]
        cost = {
            t.app_name: t.ipc_target * wl[wl.index_of(t.app_name)].api
            for t in targets
        }
        best = 0
        for k in range(len(feasible), 0, -1):
            if any(
                sum(cost[t.app_name] for t in combo) <= b + 1e-12
                for combo in combinations(feasible, k)
            ):
                best = k
                break
        result = admit_targets(wl, b, targets, policy="max-count")
        assert result.n_admitted == best

    @given(qos_scenario())
    @settings(max_examples=60, deadline=None)
    def test_admitted_set_is_plannable(self, scenario):
        wl, b, targets = scenario
        result = admit_targets(wl, b, targets)
        if result.plan is not None:
            assert result.plan.b_qos <= b + 1e-9
        # rejected + admitted = input
        assert len(result.admitted) + len(result.rejected) == len(targets)
