"""Property-based tests (hypothesis) for the analytical model.

These are the machine-checked versions of the paper's mathematical
claims: optimality of the derived schemes, the Cauchy dominance
relations, and the feasibility invariants of every allocation path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AnalyticalModel,
    AppProfile,
    HarmonicWeightedSpeedup,
    MinFairness,
    PriorityAPC,
    PriorityAPI,
    ProportionalPartitioning,
    SquareRootPartitioning,
    SumOfIPCs,
    WeightedSpeedup,
    Workload,
    cauchy_dominance_holds,
    default_schemes,
    hsp_square_root,
    solve_fractional_knapsack,
)
from repro.core.bandwidth import capped_allocation
from repro.core.closed_form import sqrt_allocation_is_uncapped


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def workloads(draw, min_apps: int = 2, max_apps: int = 8) -> Workload:
    n = draw(st.integers(min_apps, max_apps))
    apps = []
    for i in range(n):
        api = draw(st.floats(1e-4, 0.08, allow_nan=False))
        apc = draw(st.floats(1e-4, 0.0098, allow_nan=False))
        apps.append(AppProfile(f"a{i}", api=api, apc_alone=apc))
    return Workload.of("hyp", apps)


@st.composite
def workload_and_bandwidth(draw) -> tuple[Workload, float]:
    wl = draw(workloads())
    total = float(wl.apc_alone.sum())
    b = draw(st.floats(total * 0.05, total * 0.95, allow_nan=False))
    return wl, b


@st.composite
def shares(draw, n: int) -> np.ndarray:
    raw = [draw(st.floats(0.01, 1.0)) for _ in range(n)]
    arr = np.array(raw)
    return arr / arr.sum()


# ----------------------------------------------------------------------
# feasibility invariants
# ----------------------------------------------------------------------
class TestAllocationInvariants:
    @given(workload_and_bandwidth())
    @settings(max_examples=80, deadline=None)
    def test_every_scheme_feasible(self, wl_b):
        wl, b = wl_b
        for scheme in default_schemes().values():
            alloc = scheme.allocate(wl, b)
            assert np.all(alloc >= -1e-12)
            assert np.all(alloc <= wl.apc_alone + 1e-12)
            target = min(b, float(wl.apc_alone.sum()))
            assert alloc.sum() == pytest.approx(target, rel=1e-6)

    @given(workload_and_bandwidth())
    @settings(max_examples=60, deadline=None)
    def test_water_filling_order_free(self, wl_b):
        """Capped allocation must not depend on app order: permuting the
        workload permutes the allocation identically."""
        wl, b = wl_b
        beta = SquareRootPartitioning().beta(wl)
        alloc = capped_allocation(beta, b, wl.apc_alone)
        perm = np.random.default_rng(0).permutation(wl.n)
        alloc_p = capped_allocation(beta[perm], b, wl.apc_alone[perm])
        np.testing.assert_allclose(alloc_p, alloc[perm], rtol=1e-9)


# ----------------------------------------------------------------------
# optimality of the derived schemes
# ----------------------------------------------------------------------
class TestDerivedOptimality:
    @given(workload_and_bandwidth(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_sqrt_beats_random_partitions_on_hsp(self, wl_b, seed):
        """No random feasible share vector beats Square_root on Hsp."""
        wl, b = wl_b
        model = AnalyticalModel(wl, b)
        best = model.evaluate(HarmonicWeightedSpeedup(), SquareRootPartitioning())
        rng = np.random.default_rng(seed)
        beta = rng.dirichlet(np.ones(wl.n))
        alloc = capped_allocation(beta, b, wl.apc_alone)
        from repro.core import OperatingPoint

        challenger = OperatingPoint(wl, alloc).evaluate(HarmonicWeightedSpeedup())
        assert challenger <= best + 1e-9

    @given(workload_and_bandwidth(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_proportional_beats_random_on_minfairness(self, wl_b, seed):
        wl, b = wl_b
        model = AnalyticalModel(wl, b)
        best = model.evaluate(MinFairness(), ProportionalPartitioning())
        rng = np.random.default_rng(seed)
        beta = rng.dirichlet(np.ones(wl.n))
        alloc = capped_allocation(beta, b, wl.apc_alone)
        from repro.core import OperatingPoint

        challenger = OperatingPoint(wl, alloc).evaluate(MinFairness())
        assert challenger <= best + 1e-9

    @given(workload_and_bandwidth(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_knapsack_beats_random_on_wsp(self, wl_b, seed):
        wl, b = wl_b
        model = AnalyticalModel(wl, b)
        best = model.evaluate(WeightedSpeedup(), PriorityAPC())
        rng = np.random.default_rng(seed)
        beta = rng.dirichlet(np.ones(wl.n))
        alloc = capped_allocation(beta, b, wl.apc_alone)
        from repro.core import OperatingPoint

        challenger = OperatingPoint(wl, alloc).evaluate(WeightedSpeedup())
        assert challenger <= best + 1e-9

    @given(workload_and_bandwidth(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_knapsack_beats_random_on_ipcsum(self, wl_b, seed):
        wl, b = wl_b
        model = AnalyticalModel(wl, b)
        best = model.evaluate(SumOfIPCs(), PriorityAPI())
        rng = np.random.default_rng(seed)
        beta = rng.dirichlet(np.ones(wl.n))
        alloc = capped_allocation(beta, b, wl.apc_alone)
        from repro.core import OperatingPoint

        challenger = OperatingPoint(wl, alloc).evaluate(SumOfIPCs())
        assert challenger <= best + 1e-9


# ----------------------------------------------------------------------
# closed-form relations
# ----------------------------------------------------------------------
class TestClosedFormProperties:
    @given(workload_and_bandwidth())
    @settings(max_examples=100, deadline=None)
    def test_cauchy_dominance(self, wl_b):
        wl, b = wl_b
        assert cauchy_dominance_holds(wl, b)

    @given(workload_and_bandwidth())
    @settings(max_examples=60, deadline=None)
    def test_eq4_matches_explicit_when_uncapped(self, wl_b):
        wl, b = wl_b
        if not sqrt_allocation_is_uncapped(wl, b):
            return
        model = AnalyticalModel(wl, b)
        explicit = model.evaluate(HarmonicWeightedSpeedup(), SquareRootPartitioning())
        assert hsp_square_root(wl, b) == pytest.approx(explicit, rel=1e-9)

    @given(workload_and_bandwidth())
    @settings(max_examples=60, deadline=None)
    def test_proportional_equalizes_speedups(self, wl_b):
        wl, b = wl_b
        model = AnalyticalModel(wl, b)
        s = model.operating_point(ProportionalPartitioning()).speedups
        np.testing.assert_allclose(s, s[0], rtol=1e-6)

    @given(workload_and_bandwidth())
    @settings(max_examples=60, deadline=None)
    def test_hsp_never_exceeds_wsp(self, wl_b):
        """Harmonic mean <= arithmetic mean, for every scheme."""
        wl, b = wl_b
        model = AnalyticalModel(wl, b)
        for scheme in default_schemes().values():
            op = model.operating_point(scheme)
            assert op.evaluate(HarmonicWeightedSpeedup()) <= (
                op.evaluate(WeightedSpeedup()) + 1e-9
            )


# ----------------------------------------------------------------------
# knapsack properties
# ----------------------------------------------------------------------
class TestKnapsackProperties:
    @given(
        st.lists(st.floats(0.01, 10.0), min_size=1, max_size=10),
        st.lists(st.floats(0.01, 5.0), min_size=1, max_size=10),
        st.floats(0.0, 30.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_greedy_exchange_optimality(self, values, caps, budget):
        n = min(len(values), len(caps))
        v, c = np.array(values[:n]), np.array(caps[:n])
        sol = solve_fractional_knapsack(v, c, budget)
        # exchange argument: moving epsilon from any taken item to any
        # other with headroom never increases the objective
        eps = 1e-6
        for i in range(n):
            if sol.quantities[i] < eps:
                continue
            for j in range(n):
                if i == j or sol.quantities[j] > c[j] - eps:
                    continue
                delta = (v[j] - v[i]) * eps
                assert delta <= 1e-9

    @given(
        st.lists(st.floats(0.01, 10.0), min_size=2, max_size=8),
        st.floats(0.01, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_objective_monotone_in_budget(self, values, cap):
        v = np.array(values)
        c = np.full(len(v), cap)
        objectives = [
            solve_fractional_knapsack(v, c, b).objective
            for b in (0.1, 0.5, 1.0, 2.0)
        ]
        assert objectives == sorted(objectives)
