"""Property tests for the scheduler's per-(app, channel) queue index.

``Scheduler.has_pending`` / ``pending_apps`` / ``pending_count`` are
backed by incrementally maintained counters (updated in ``enqueue`` /
``_take``) instead of queue scans.  These tests drive random
enqueue/serve interleavings through real scheduler subclasses and
check the indexed answers against a brute-force scan of the actual
queues after every single operation.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.mc.base import Scheduler
from repro.sim.mc.fcfs import FCFSScheduler
from repro.sim.mc.priority import PriorityScheduler
from repro.sim.mc.stf import StartTimeFairScheduler
from repro.sim.request import Request

N_APPS = 4
N_CHANNELS = 3

# one operation: (app, channel, serve?, serve_channel)
_ops = st.lists(
    st.tuples(
        st.integers(0, N_APPS - 1),
        st.integers(0, N_CHANNELS - 1),
        st.booleans(),
        st.one_of(st.none(), st.integers(0, N_CHANNELS - 1)),
    ),
    max_size=80,
)


def _brute_has_pending(sched: Scheduler, channel: int | None) -> bool:
    return any(
        channel is None or r.channel == channel for q in sched.queues for r in q
    )


def _brute_pending_apps(sched: Scheduler, channel: int | None) -> list[int]:
    return [
        a
        for a, q in enumerate(sched.queues)
        if any(channel is None or r.channel == channel for r in q)
    ]


def _brute_count(sched: Scheduler, app: int, channel: int | None) -> int:
    return sum(
        1 for r in sched.queues[app] if channel is None or r.channel == channel
    )


def _check_index(sched: Scheduler) -> None:
    for ch in (None, *range(N_CHANNELS)):
        assert sched.has_pending(ch) == _brute_has_pending(sched, ch)
        assert list(sched.pending_apps(ch)) == _brute_pending_apps(sched, ch)
        for app in range(N_APPS):
            assert sched.pending_count(app, ch) == _brute_count(sched, app, ch)
    assert sched.total_queued == sum(len(q) for q in sched.queues)


def _drive(sched: Scheduler, ops) -> None:
    now = 0.0
    n = 0
    for app, chan, serve, serve_chan in ops:
        now += 1.0
        if serve and sched.total_queued:
            sched.select(now, channel=serve_chan)
        else:
            req = Request(app, n, bool(n % 5 == 0), now, channel=chan)
            n += 1
            sched.enqueue(req, now)
        _check_index(sched)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_fcfs_index_matches_bruteforce(ops):
    _drive(FCFSScheduler(N_APPS), ops)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_stf_index_matches_bruteforce(ops):
    beta = np.full(N_APPS, 1.0 / N_APPS)
    _drive(StartTimeFairScheduler(N_APPS, beta), ops)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_priority_index_matches_bruteforce(ops):
    _drive(PriorityScheduler(N_APPS, list(range(N_APPS))), ops)


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_served_plus_queued_is_conserved(ops):
    sched = FCFSScheduler(N_APPS)
    _drive(sched, ops)
    assert sched.n_enqueued == sched.n_served + sched.total_queued
