"""Metamorphic properties of the full simulator.

Rather than asserting absolute values, these tests assert how measured
quantities must *move* under controlled input transformations -- the
relations any credible memory-system simulator has to satisfy:

* more bandwidth never hurts anyone (same workload, faster bus);
* adding a competitor never helps the incumbents (under FCFS);
* raising an app's share never lowers its bandwidth (under STF);
* raising MLP never lowers an app's alone-mode throughput;
* scaling every app's demand together preserves proportional fairness.
"""

import dataclasses

import numpy as np
import pytest

from repro.sim import (
    CoreSpec,
    FCFSScheduler,
    SimConfig,
    StartTimeFairScheduler,
    ddr2_400,
    ddr2_800,
    run_alone,
    simulate,
)

CFG = SimConfig(warmup_cycles=50_000, measure_cycles=250_000, seed=13)


def spec(name: str, api: float, ipc: float, mlp: int) -> CoreSpec:
    return CoreSpec(name=name, api=api, ipc_peak=ipc, mlp=mlp, write_fraction=0.1)


MIX = [
    spec("h1", 0.05, 0.4, 16),
    spec("h2", 0.03, 0.3, 12),
    spec("m1", 0.01, 0.5, 4),
    spec("l1", 0.004, 0.6, 2),
]


class TestMoreBandwidthNeverHurts:
    def test_every_app_apc_non_decreasing(self):
        base = simulate(MIX, lambda n: FCFSScheduler(n), CFG)
        fast = simulate(
            MIX,
            lambda n: FCFSScheduler(n),
            dataclasses.replace(CFG, dram=ddr2_800()),
        )
        # small tolerance: scheduling order changes slightly with timing
        assert np.all(fast.apc_shared >= base.apc_shared * 0.97)

    def test_total_apc_strictly_increases_when_saturated(self):
        base = simulate(MIX, lambda n: FCFSScheduler(n), CFG)
        fast = simulate(
            MIX,
            lambda n: FCFSScheduler(n),
            dataclasses.replace(CFG, dram=ddr2_800()),
        )
        assert fast.total_apc > base.total_apc * 1.3


class TestCompetitionNeverHelps:
    def test_adding_app_lowers_or_keeps_incumbent_ipcs(self):
        three = MIX[:3]
        base = simulate(three, lambda n: FCFSScheduler(n), CFG)
        crowded = simulate(
            three + [spec("intruder", 0.05, 0.4, 16)],
            lambda n: FCFSScheduler(n),
            CFG,
        )
        for i in range(3):
            assert crowded.ipc_shared[i] <= base.ipc_shared[i] * 1.03, i

    def test_alone_is_an_upper_bound(self):
        shared = simulate(MIX, lambda n: FCFSScheduler(n), CFG)
        for i, s in enumerate(MIX):
            alone = run_alone(s, CFG)
            assert shared.ipc_shared[i] <= alone.ipc * 1.05, s.name


class TestMonotoneShares:
    @pytest.mark.parametrize("bumped", [0, 1])
    def test_raising_share_never_lowers_apc(self, bumped):
        pair = [MIX[0], MIX[1]]
        results = []
        for share in (0.3, 0.5, 0.7):
            beta = np.array([share, 1 - share]) if bumped == 0 else np.array(
                [1 - share, share]
            )
            sim = simulate(
                pair, lambda n, b=beta: StartTimeFairScheduler(n, b), CFG
            )
            results.append(sim.apc_shared[bumped])
        assert results[0] <= results[1] * 1.03
        assert results[1] <= results[2] * 1.03


class TestMonotoneMLP:
    def test_deeper_mlp_never_slows_alone_run(self):
        apcs = []
        for mlp in (2, 4, 8, 16):
            s = spec("x", 0.03, 0.5, mlp)
            apcs.append(run_alone(s, CFG).apc)
        for a, b in zip(apcs, apcs[1:]):
            assert b >= a * 0.98


class TestScaleInvariance:
    def test_identical_apps_get_equal_service(self):
        quad = [spec(f"t{i}", 0.04, 0.4, 12) for i in range(4)]
        sim = simulate(quad, lambda n: FCFSScheduler(n), CFG)
        mean = sim.apc_shared.mean()
        assert np.all(np.abs(sim.apc_shared - mean) / mean < 0.08)

    def test_seed_changes_noise_not_structure(self):
        a = simulate(MIX, lambda n: FCFSScheduler(n), CFG)
        b = simulate(
            MIX, lambda n: FCFSScheduler(n), dataclasses.replace(CFG, seed=77)
        )
        # per-app APCs agree across seeds within sampling noise
        np.testing.assert_allclose(a.apc_shared, b.apc_shared, rtol=0.15)
