"""Property-based tests for simulator components.

Random-input invariants for the pieces with the trickiest state:
DRAM channel timing legality, STF share enforcement, cache behaviour
against a brute-force reference model, and address-mapper bijectivity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import Cache, CacheConfig
from repro.sim.dram.address import AddressMapper
from repro.sim.dram.channel import Channel
from repro.sim.dram.config import DRAMConfig, ddr2_400
from repro.sim.mc.stf import StartTimeFairScheduler
from repro.sim.request import Request


def _req(app=0, bank=0, row=0, write=False) -> Request:
    r = Request(app_id=app, line_addr=0, is_write=write, created=0.0)
    r.bank = bank
    r.row = row
    return r


class TestChannelTimingLegality:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 31),            # bank
                st.integers(0, 64),            # row
                st.booleans(),                 # write
                st.floats(0.0, 200.0),         # inter-issue gap
            ),
            min_size=1,
            max_size=60,
        ),
        st.sampled_from(["close", "open"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_traffic_never_overlaps_bus(self, ops, policy):
        cfg = DRAMConfig(page_policy=policy, trefi_cycles=5000.0, trfc_cycles=400.0)
        ch = Channel(cfg)
        now = 0.0
        intervals = []
        for bank, row, write, gap in ops:
            now += gap
            res = ch.issue(_req(bank=bank, row=row, write=write), now)
            intervals.append((res.data_start, res.data_end))
            assert res.data_end - res.data_start == pytest.approx(cfg.burst_cycles)
            assert res.data_start >= now - 1e-9
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9  # bus transfers strictly ordered

    @given(
        st.lists(st.tuples(st.integers(0, 7), st.booleans()), min_size=2, max_size=40)
    )
    @settings(max_examples=60, deadline=None)
    def test_bank_never_reused_before_ready(self, ops):
        cfg = DRAMConfig(trefi_cycles=0.0, trfc_cycles=0.0)
        ch = Channel(cfg)
        bank_ready: dict[int, float] = {}
        for bank, write in ops:
            res = ch.issue(_req(bank=bank, write=write), now=0.0)
            if bank in bank_ready:
                # a close-page access implies an activate, which may not
                # precede the bank's previous ready time
                assert (
                    res.data_start - cfg.trcd_cycles - cfg.cl_cycles
                    >= bank_ready[bank] - 1e-9
                )
            bank_ready[bank] = res.bank_ready


class TestSTFProperties:
    @given(
        st.integers(2, 6),
        st.integers(0, 2**31 - 1),
        st.integers(50, 400),
    )
    @settings(max_examples=40, deadline=None)
    def test_backlogged_service_matches_shares(self, n, seed, grants):
        """With all apps permanently backlogged, per-app service counts
        are proportional to beta within one stride each."""
        rng = np.random.default_rng(seed)
        beta = rng.dirichlet(np.ones(n) * 2.0)
        beta = np.maximum(beta, 0.02)
        beta /= beta.sum()
        sched = StartTimeFairScheduler(n, beta)
        for _ in range(grants + n):
            for a in range(n):
                sched.enqueue(_req(app=a), 0.0)
        counts = np.zeros(n)
        for _ in range(grants):
            req = sched.select(0.0)
            counts[req.app_id] += 1
        # stride scheduling bounds per-app deviation by O(log n) grants
        np.testing.assert_allclose(counts, beta * grants, atol=1.0 + np.log2(n))

    @given(st.integers(2, 5), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_no_request_lost(self, n, seed):
        rng = np.random.default_rng(seed)
        beta = rng.dirichlet(np.ones(n))
        sched = StartTimeFairScheduler(n, beta)
        total = 0
        for a in range(n):
            k = int(rng.integers(0, 20))
            total += k
            for _ in range(k):
                sched.enqueue(_req(app=a), 0.0)
        served = 0
        while sched.select(0.0) is not None:
            served += 1
        assert served == total
        assert not sched.has_pending()


class TestCacheAgainstReference:
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.booleans()), min_size=1, max_size=300
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce_lru(self, accesses):
        """The cache must agree access-by-access with a brute-force LRU
        reference model (list-based, obviously-correct)."""
        cfg = CacheConfig(size_bytes=4 * 64 * 2, ways=2, line_bytes=64)  # 4 sets
        cache = Cache(cfg)
        # reference: per-set list of [tag, dirty], index 0 = LRU
        ref: list[list[list]] = [[] for _ in range(cfg.n_sets)]
        for addr, write in accesses:
            s, tag = addr % cfg.n_sets, addr // cfg.n_sets
            entry = next((e for e in ref[s] if e[0] == tag), None)
            if entry is not None:
                exp_hit, exp_victim = True, None
                ref[s].remove(entry)
                entry[1] = entry[1] or write
                ref[s].append(entry)
            else:
                exp_hit = False
                exp_victim = None
                if len(ref[s]) >= cfg.ways:
                    victim = ref[s].pop(0)
                    if victim[1]:
                        exp_victim = victim[0] * cfg.n_sets + s
                ref[s].append([tag, write])
            hit, victim_addr = cache.access(addr, write)
            assert hit == exp_hit
            assert victim_addr == exp_victim


class TestAddressMapperProperties:
    @given(st.integers(0, 2**22 - 1))
    @settings(max_examples=200, deadline=None)
    def test_bijective(self, addr):
        mapper = AddressMapper(ddr2_400())
        addr %= 1 << mapper.address_bits
        assert mapper.encode(mapper.decode(addr)) == addr
