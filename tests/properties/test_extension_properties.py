"""Property-based tests for the extension modules (weighted, frontier)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AnalyticalModel,
    AppProfile,
    Workload,
    pareto_points,
    power_family_frontier,
)
from repro.core.bandwidth import capped_allocation
from repro.core.model import OperatingPoint
from repro.core.weighted import (
    WeightedHarmonicSpeedup,
    WeightedPriorityAPC,
    WeightedSquareRootPartitioning,
    WeightedWeightedSpeedup,
)


@st.composite
def workload_bw_weights(draw):
    n = draw(st.integers(2, 6))
    apps = [
        AppProfile(
            f"a{i}",
            api=draw(st.floats(1e-3, 0.06)),
            apc_alone=draw(st.floats(5e-4, 0.0095)),
        )
        for i in range(n)
    ]
    wl = Workload.of("hyp", apps)
    total = float(wl.apc_alone.sum())
    b = draw(st.floats(total * 0.1, total * 0.9))
    w = np.array([draw(st.floats(0.1, 10.0)) for _ in range(n)])
    return wl, b, w


class TestWeightedOptimality:
    @given(workload_bw_weights(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_weighted_sqrt_beats_random(self, wbw, seed):
        """No random feasible partition beats the weighted square-root
        scheme on the weighted harmonic speedup."""
        wl, b, w = wbw
        metric = WeightedHarmonicSpeedup(w)
        model = AnalyticalModel(wl, b)
        best = model.evaluate(metric, WeightedSquareRootPartitioning(w))
        rng = np.random.default_rng(seed)
        beta = rng.dirichlet(np.ones(wl.n))
        alloc = capped_allocation(beta, b, wl.apc_alone)
        challenger = OperatingPoint(wl, alloc).evaluate(metric)
        assert challenger <= best + 1e-9

    @given(workload_bw_weights(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_weighted_priority_beats_random(self, wbw, seed):
        wl, b, w = wbw
        metric = WeightedWeightedSpeedup(w)
        model = AnalyticalModel(wl, b)
        best = model.evaluate(metric, WeightedPriorityAPC(w))
        rng = np.random.default_rng(seed)
        beta = rng.dirichlet(np.ones(wl.n))
        alloc = capped_allocation(beta, b, wl.apc_alone)
        challenger = OperatingPoint(wl, alloc).evaluate(metric)
        assert challenger <= best + 1e-9

    @given(workload_bw_weights())
    @settings(max_examples=50, deadline=None)
    def test_weight_scaling_invariance(self, wbw):
        """Scaling all weights by a constant changes neither the optimal
        shares nor the metric value."""
        wl, b, w = wbw
        s1 = WeightedSquareRootPartitioning(w).beta(wl)
        s2 = WeightedSquareRootPartitioning(w * 7.3).beta(wl)
        np.testing.assert_allclose(s1, s2, rtol=1e-9)
        m1 = WeightedHarmonicSpeedup(w)
        m2 = WeightedHarmonicSpeedup(w * 7.3)
        ipc = wl.ipc_alone * 0.4
        assert m1(ipc, wl.ipc_alone) == pytest.approx(m2(ipc, wl.ipc_alone))


class TestFrontierProperties:
    @given(workload_bw_weights())
    @settings(max_examples=40, deadline=None)
    def test_pareto_points_are_mutually_nondominated(self, wbw):
        wl, b, _ = wbw
        points = power_family_frontier(wl, b, alphas=np.linspace(0, 1.2, 13))
        frontier = pareto_points(points, "minf", "wsp")
        assert frontier
        for p in frontier:
            for q in frontier:
                if p is q:
                    continue
                dominated = (
                    q["minf"] >= p["minf"] and q["wsp"] >= p["wsp"]
                ) and (q["minf"] > p["minf"] or q["wsp"] > p["wsp"])
                assert not dominated

    @given(workload_bw_weights())
    @settings(max_examples=40, deadline=None)
    def test_frontier_metric_values_bounded_by_derived_optima(self, wbw):
        """No power-family member exceeds the derived optimum of any
        paper metric (the family is a subset of feasible partitions)."""
        from repro.core import (
            HarmonicWeightedSpeedup,
            MinFairness,
            ProportionalPartitioning,
            SquareRootPartitioning,
        )

        wl, b, _ = wbw
        model = AnalyticalModel(wl, b)
        best_hsp = model.evaluate(HarmonicWeightedSpeedup(), SquareRootPartitioning())
        best_minf = model.evaluate(MinFairness(), ProportionalPartitioning())
        best_wsp = model.max_weighted_speedup()
        for p in power_family_frontier(wl, b, alphas=np.linspace(0, 1.5, 10)):
            assert p["hsp"] <= best_hsp + 1e-9
            assert p["minf"] <= best_minf + 1e-9
            assert p["wsp"] <= best_wsp + 1e-9
