"""Tests for the ASCII chart renderer (experiments.plot)."""

import pytest

from repro.experiments.plot import bar_chart, grouped_bar_chart, hbar
from repro.util.errors import ConfigurationError


class TestHbar:
    def test_full_scale(self):
        assert hbar(2.0, 2.0, width=10) == "#" * 10

    def test_half_scale(self):
        assert hbar(1.0, 2.0, width=10) == "#" * 5

    def test_zero(self):
        assert hbar(0.0, 2.0, width=10) == ""

    def test_clipped_at_width(self):
        assert hbar(5.0, 2.0, width=10) == "#" * 10

    def test_negative_treated_as_zero(self):
        assert hbar(-1.0, 2.0, width=10) == ""

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            hbar(1.0, 0.0)


class TestBarChart:
    def test_labels_and_values_present(self):
        text = bar_chart({"sqrt": 1.3, "equal": 1.25}, title="hsp")
        assert "hsp" in text
        assert "sqrt" in text and "equal" in text
        assert "1.300" in text and "1.250" in text

    def test_bars_proportional(self):
        text = bar_chart({"a": 2.0, "b": 1.0}, baseline=None, width=40)
        lines = [l for l in text.splitlines() if l.startswith(("a", "b"))]
        assert lines[0].count("#") == 2 * lines[1].count("#")

    def test_baseline_marker(self):
        text = bar_chart({"a": 2.0}, baseline=1.0, width=40)
        assert "|" in text.splitlines()[0]
        assert "baseline = 1.000" in text

    def test_baseline_omittable(self):
        text = bar_chart({"a": 2.0}, baseline=None)
        assert "baseline" not in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})

    def test_longest_bar_fills_width(self):
        text = bar_chart({"big": 3.0, "small": 0.3}, baseline=None, width=20)
        big_line = next(l for l in text.splitlines() if l.startswith("big"))
        assert big_line.count("#") == 20


class TestGroupedBarChart:
    def test_one_block_per_group(self):
        grid = {
            "hetero-5": {"sqrt": 1.3, "prop": 1.2},
            "hetero-6": {"sqrt": 1.5, "prop": 1.4},
        }
        text = grouped_bar_chart(grid, title="Figure 2 (hsp)")
        assert text.count("[hetero-") == 2
        assert "Figure 2 (hsp)" in text

    def test_column_order_respected(self):
        grid = {"g": {"z": 1.0, "a": 2.0}}
        text = grouped_bar_chart(grid, columns=["z", "a"])
        lines = text.splitlines()
        z_idx = next(i for i, l in enumerate(lines) if l.startswith("z"))
        a_idx = next(i for i, l in enumerate(lines) if l.startswith("a"))
        assert z_idx < a_idx

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            grouped_bar_chart({})

    def test_renders_real_figure1(self, runner):
        """The Figure 1 result renders as a chart without error."""
        from repro.experiments import figure1

        result = figure1.run(runner)
        series = {s: result.normalized[s]["hsp"] for s in result.normalized}
        text = bar_chart(series, title="Figure 1: hsp vs No_partitioning")
        assert "sqrt" in text


class TestLineSeries:
    def test_basic_layout(self):
        from repro.experiments.plot import line_series

        text = line_series(
            {"hsp": [1.0, 1.1], "minf": [1.5, 1.9]},
            ["3.2", "6.4"],
            title="T",
        )
        assert "T" in text
        assert "H=hsp" in text and "M=minf" in text
        assert "3.2" in text and "6.4" in text

    def test_markers_at_extremes(self):
        from repro.experiments.plot import line_series

        text = line_series({"a": [0.0, 10.0]}, ["x0", "x1"])
        lines = text.splitlines()
        top = lines[0]
        bottom = lines[-4]  # last data row before the axis
        assert "A" in top  # the max lands on the top row
        assert "A" in bottom  # the min lands on the bottom row

    def test_duplicate_initials_disambiguated(self):
        from repro.experiments.plot import line_series

        text = line_series(
            {"wsp": [1.0], "whatever": [2.0]}, ["p"],
        )
        legend = text.splitlines()[-1]
        assert "W=wsp" in legend
        assert "X=whatever" in legend

    def test_length_mismatch_rejected(self):
        from repro.experiments.plot import line_series
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            line_series({"a": [1.0]}, ["x", "y"])

    def test_empty_rejected(self):
        from repro.experiments.plot import line_series
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            line_series({}, ["x"])
