"""Unit tests for Figure2Result's analysis helpers (no simulation)."""

import pytest

from repro.experiments.figure2 import FIG2_SCHEMES, Figure2Result, OPTIMAL_FOR


def synthetic_grid() -> Figure2Result:
    """Hand-built grid with known averages and spreads."""
    metrics = ("hsp", "minf", "wsp", "ipcsum")

    def row(base: float) -> dict:
        return {
            s: {m: base + 0.1 * i for m in metrics}
            for i, s in enumerate(FIG2_SCHEMES)
        }

    return Figure2Result(
        grid={
            "homo-1": row(1.0),
            "homo-2": row(1.2),
            "hetero-1": row(2.0),
            "hetero-2": row(3.0),
        }
    )


class TestMixPartitions:
    def test_hetero_and_homo_mixes_derived_from_grid(self):
        r = synthetic_grid()
        assert r.hetero_mixes == ("hetero-1", "hetero-2")
        assert r.homo_mixes == ("homo-1", "homo-2")

    def test_averages(self):
        r = synthetic_grid()
        # scheme index 0 ("equal"): values 2.0 and 3.0 on hetero mixes
        assert r.hetero_average("equal", "hsp") == pytest.approx(2.5)
        assert r.homo_average("equal", "hsp") == pytest.approx(1.1)

    def test_average_over_explicit_mixes(self):
        r = synthetic_grid()
        assert r.average(("homo-1",), "prop", "wsp") == pytest.approx(1.1)


class TestSpread:
    def test_spread_is_max_minus_min_across_schemes(self):
        r = synthetic_grid()
        # per mix the six schemes span base .. base+0.5
        assert r.spread(("homo-1",), "hsp") == pytest.approx(0.5)
        assert r.spread(("hetero-1", "hetero-2"), "hsp") == pytest.approx(0.5)


class TestHeadline:
    def test_headline_uses_optimal_mapping(self):
        r = synthetic_grid()
        headline = r.headline()
        assert set(headline) == set(OPTIMAL_FOR)
        for metric, (over_np, over_eq) in headline.items():
            scheme = OPTIMAL_FOR[metric]
            assert over_np == pytest.approx(r.hetero_average(scheme, metric))
            assert over_eq == pytest.approx(
                over_np / r.hetero_average("equal", metric)
            )

    def test_optimal_for_matches_paper(self):
        assert OPTIMAL_FOR == {
            "hsp": "sqrt",
            "minf": "prop",
            "wsp": "prio_apc",
            "ipcsum": "prio_api",
        }
