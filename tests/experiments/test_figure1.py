"""Shape tests for Figure 1 (repro.experiments.figure1).

These assert the paper's Sec. II-B claims on the motivating workload.
"""

import pytest

from repro.experiments import figure1


@pytest.fixture(scope="session")
def fig1(runner):
    return figure1.run(runner)


class TestFigure1Shape:
    def test_square_root_wins_hsp(self, fig1):
        assert fig1.best_scheme("hsp") == "sqrt"

    def test_proportional_wins_fairness(self, fig1):
        assert fig1.best_scheme("minf") == "prop"

    def test_priority_wins_throughput(self, fig1):
        assert fig1.best_scheme("wsp") in ("prio_apc", "prio_api")
        assert fig1.best_scheme("ipcsum") in ("prio_api", "prio_apc")

    def test_equal_optimal_for_nothing(self, fig1):
        """Paper: Equal improves things but is optimal for no metric."""
        for metric in ("hsp", "minf", "wsp", "ipcsum"):
            assert fig1.best_scheme(metric) != "equal"

    def test_equal_improves_throughput_over_nopart(self, fig1):
        assert fig1.normalized["equal"]["wsp"] > 1.0
        assert fig1.normalized["equal"]["ipcsum"] > 1.0

    def test_priority_schemes_starve(self, fig1):
        for s in ("prio_apc", "prio_api"):
            assert fig1.normalized[s]["minf"] < 0.2
            assert fig1.normalized[s]["hsp"] < 0.2

    def test_all_five_schemes_present(self, fig1):
        assert set(fig1.normalized) == set(figure1.FIG1_SCHEMES)

    def test_render_contains_winners(self, fig1):
        text = figure1.render(fig1)
        assert "hsp: sqrt" in text
        assert "minf: prop" in text
        assert "Figure 1" in text
