"""Tests for golden-number regression tracking (experiments.regression)."""

import json
import math

import pytest

from repro.experiments import regression
from repro.util.errors import ConfigurationError


class TestCompareLogic:
    def test_identical_values_pass(self):
        base = {"figure1.sqrt.hsp": 1.30, "fcfs.total_apc.hetero-5": 0.0094}
        assert regression.compare(dict(base), base) == []

    def test_within_band_passes(self):
        base = {"figure1.sqrt.hsp": 1.30}
        cur = {"figure1.sqrt.hsp": 1.35}  # atol 0.08
        assert regression.compare(cur, base) == []

    def test_out_of_band_flagged(self):
        base = {"figure1.sqrt.hsp": 1.30}
        cur = {"figure1.sqrt.hsp": 1.60}
        drifts = regression.compare(cur, base)
        assert len(drifts) == 1
        assert drifts[0].delta == pytest.approx(0.30)

    def test_missing_key_flagged(self):
        base = {"figure1.sqrt.hsp": 1.30}
        drifts = regression.compare({}, base)
        assert len(drifts) == 1
        assert math.isnan(drifts[0].measured)

    def test_new_key_flagged(self):
        drifts = regression.compare({"new.thing": 1.0}, {})
        assert len(drifts) == 1
        assert math.isnan(drifts[0].baseline)

    def test_relative_band_for_small_quantities(self):
        # model_vs_sim tolerance: atol 0.03 OR rtol 0.5
        base = {"model_vs_sim.sqrt": 0.01}
        assert regression.compare({"model_vs_sim.sqrt": 0.012}, base) == []
        assert regression.compare({"model_vs_sim.sqrt": 0.09}, base) != []

    def test_unknown_key_gets_default_tolerance(self):
        base = {"mystery.value": 1.0}
        assert regression.compare({"mystery.value": 1.04}, base) == []
        assert regression.compare({"mystery.value": 1.30}, base) != []


class TestBaselineIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        values = {"a.b": 1.5, "c.d": 0.25}
        regression.save_baseline(values, path)
        assert regression.load_baseline(path) == values

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            regression.load_baseline(tmp_path / "nope.json")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ConfigurationError):
            regression.load_baseline(path)

    def test_checked_in_baseline_exists_and_parses(self):
        values = regression.load_baseline(regression.BASELINE_PATH)
        assert len(values) >= 25
        assert any(k.startswith("figure1.") for k in values)
        assert "table3.worst_apkc_error" in values


class TestRender:
    def test_clean_report(self):
        text = regression.render([], n_tracked=28)
        assert "all 28" in text

    def test_drift_report(self):
        d = regression.Drift(key="x.y", baseline=1.0, measured=1.5)
        text = regression.render([d], n_tracked=28)
        assert "1 of 28" in text
        assert "+0.5" in text


class TestCollectAgainstBaseline:
    def test_fresh_collection_matches_checked_in_baseline(self, runner):
        """The session runner (same windows/seed as the baseline run) must
        reproduce every golden number in band -- the actual gate."""
        current = regression.collect(runner)
        baseline = regression.load_baseline(regression.BASELINE_PATH)
        drifts = regression.compare(current, baseline)
        assert drifts == [], regression.render(drifts, len(baseline))


class TestRegressionCLI:
    def test_cli_update_then_check(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import __main__ as cli
        from repro.experiments import regression as reg

        monkeypatch.setattr(reg, "BASELINE_PATH", tmp_path / "baseline.json")
        rc = cli.main(["regression", "--quick", "--update"])
        assert rc == 0
        assert (tmp_path / "baseline.json").exists()
        rc = cli.main(["regression", "--quick"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "in band" in out

    def test_cli_flags_drift(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import __main__ as cli
        from repro.experiments import regression as reg

        monkeypatch.setattr(reg, "BASELINE_PATH", tmp_path / "baseline.json")
        # fabricate a baseline that cannot match
        reg.save_baseline({"figure1.sqrt.hsp": 99.0}, tmp_path / "baseline.json")
        rc = cli.main(["regression", "--quick"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "drifted" in out
