"""Tests for the process-parallel grid runner (experiments.parallel).

The key property: bit-identical results to the serial Runner (same
seeded streams, same scheme wiring), just computed across processes.
"""

import numpy as np
import pytest

from repro.experiments.parallel import ParallelRunner, profile_task, run_task
from repro.experiments.runner import Runner
from repro.sim.engine import SimConfig
from repro.util.errors import ConfigurationError

QUICK = SimConfig(warmup_cycles=50_000.0, measure_cycles=150_000.0, seed=9)


class TestWorkerFunctions:
    def test_profile_task_matches_runner(self):
        name, apc, ipc = profile_task(("gobmk", QUICK))
        assert name == "gobmk"
        from repro.workloads.spec import benchmark

        serial = Runner(QUICK)
        apc_s, ipc_s = serial.alone_point(benchmark("gobmk").core_spec())
        assert apc == pytest.approx(apc_s)
        assert ipc == pytest.approx(ipc_s)

    def test_run_task_returns_keyed_run(self):
        alone = {
            b: profile_task((b, QUICK))[1:]
            for b in ("libquantum", "milc", "gromacs", "gobmk")
        }
        key, run = run_task(("hetero-5", "equal", 1, QUICK, alone))
        assert key == ("hetero-5", "equal", 1)
        assert run.sim.total_apc > 0
        assert set(run.metrics) == {"hsp", "minf", "wsp", "ipcsum"}


class TestParallelMatchesSerial:
    def test_grid_identical_to_serial(self):
        mixes = ("hetero-5",)
        schemes = ("nopart", "equal", "sqrt")
        par = ParallelRunner(QUICK, max_workers=2).run_grid(mixes, schemes)
        ser = Runner(QUICK).run_grid(mixes, schemes)
        for mix in mixes:
            for s in schemes:
                np.testing.assert_array_equal(
                    par[mix][s].sim.apc_shared, ser[mix][s].sim.apc_shared
                )
                np.testing.assert_allclose(
                    par[mix][s].ipc_alone, ser[mix][s].ipc_alone
                )

    def test_normalized_grid_shape(self):
        norm = ParallelRunner(QUICK, max_workers=2).normalized_grid(
            ("hetero-5",), ("equal", "sqrt")
        )
        assert set(norm["hetero-5"]) == {"equal", "sqrt"}
        assert set(norm["hetero-5"]["equal"]) == {"hsp", "minf", "wsp", "ipcsum"}

    def test_normalized_matches_serial(self):
        par = ParallelRunner(QUICK, max_workers=2).normalized_grid(
            ("hetero-5",), ("equal",)
        )
        ser = Runner(QUICK).normalized_metrics("hetero-5", ("equal",))
        for metric, value in ser["equal"].items():
            assert par["hetero-5"]["equal"][metric] == pytest.approx(value)


class TestMapStrategy:
    """The legacy pool.map path stays available (benchmark baseline)."""

    def test_map_grid_identical_to_serial(self):
        mixes = ("hetero-5",)
        schemes = ("nopart", "equal")
        par = ParallelRunner(QUICK, max_workers=2, strategy="map").run_grid(
            mixes, schemes
        )
        ser = Runner(QUICK).run_grid(mixes, schemes)
        for mix in mixes:
            for s in schemes:
                assert par[mix][s].sim == ser[mix][s].sim
                np.testing.assert_array_equal(
                    par[mix][s].ipc_alone, ser[mix][s].ipc_alone
                )


class TestChunksize:
    def test_small_fanout_dispatches_single_tasks(self):
        """n_tasks <= workers * 4 must use chunksize=1, so one slow mix
        cannot serialize a whole chunk behind it (long-tail fix)."""
        runner = ParallelRunner(QUICK, max_workers=4)
        for n in (1, 4, 15, 16):
            assert runner._chunksize(n) == 1

    def test_large_fanout_still_batches(self):
        runner = ParallelRunner(QUICK, max_workers=4)
        assert runner._chunksize(160) == 10
        assert runner._chunksize(17) == 1  # floor just above the knee


class TestValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(QUICK).run_grid((), ("equal",))

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(QUICK, max_workers=0)

    def test_bad_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(QUICK, strategy="threads")


class TestTelemetry:
    """Worker spans ship back and merge into one coherent trace."""

    SMALL = SimConfig(warmup_cycles=5_000.0, measure_cycles=40_000.0, seed=9)

    @pytest.fixture(autouse=True)
    def _fresh_obs(self):
        from repro import obs

        obs.reset()
        obs.configure(enabled=True, sample=1.0)
        yield
        obs.reset()

    def test_grid_merges_worker_spans_with_parents(self):
        from repro import obs

        ParallelRunner(self.SMALL, max_workers=2).run_grid(
            ("homo-1",), ("nopart", "equal")
        )
        by_name = {}
        for s in obs.tracer().spans():
            by_name.setdefault(s.name, []).append(s)

        grid = by_name["parallel.grid"][0]
        run_tasks = by_name["parallel.run_task"]
        assert len(run_tasks) == 2
        assert all(t.parent_id == grid.span_id for t in run_tasks)
        # the simulations really ran in other processes
        assert all(t.pid != grid.pid for t in run_tasks)
        # each worker task wraps its own engine.run
        engine_parents = {s.parent_id for s in by_name["engine.run"]
                          if s.pid != grid.pid}
        assert engine_parents <= {t.span_id for t in run_tasks} | {
            p.span_id for p in by_name.get("parallel.profile_task", [])
        }

        reg = obs.registry()
        assert reg.get_value("parallel.workers") == 2.0
        assert reg.get_value("parallel.tasks") >= 2.0
        util = reg.get_value("parallel.worker_utilization")
        assert 0.0 < util <= 1.0
