"""Tests for the cost-aware DAG dispatcher (experiments.dispatch).

The load-bearing property: a plan-executed grid is *bit-identical*
(``==``, not allclose) to the serial Runner's -- the dispatcher reuses
the same worker entry points, so equality is exact, and these tests
assert it exactly.
"""

import os

import numpy as np
import pytest

from repro.experiments.dispatch import (
    CostModel,
    Dispatcher,
    ShmKeeper,
    execute_plan,
    pack_scheme_run,
    pack_sim_result,
    resolve_workers,
    unpack_scheme_run,
    unpack_sim_result,
)
from repro.experiments.plan import compile_plan, grid_plan
from repro.experiments.runner import Runner
from repro.sim.engine import SimConfig
from repro.util.errors import ConfigurationError

TINY = SimConfig(warmup_cycles=5_000.0, measure_cycles=30_000.0, seed=3)


def tiny_factory(dram=None):
    assert dram is None
    return TINY


@pytest.fixture()
def dispatcher():
    d = Dispatcher(max_workers=2)
    yield d
    d.shutdown()


class TestResolveWorkers:
    def test_cli_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_none_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) is None

    def test_bad_values_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ConfigurationError):
            resolve_workers(None)
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(ConfigurationError):
            resolve_workers(None)


class TestCostModel:
    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "cost_model.json"
        model = CostModel(path)
        model.observe("digest-a", "run", 2.0)
        model.observe("digest-b", "profile", 0.25)
        assert model.save()

        fresh = CostModel(path)
        plan = grid_plan(("hetero-5",), ("equal",), TINY)

        class FakeTask:
            digest = "digest-a"
            kind = "run"
            point = next(iter(plan.tasks.values())).point

        assert fresh.estimate(FakeTask()) == pytest.approx(2.0)

    def test_ema_smooths_repeat_observations(self, tmp_path):
        model = CostModel(tmp_path / "cm.json")
        model.observe("d", "run", 1.0)
        model.observe("d", "run", 3.0)

        class T:
            digest = "d"
            kind = "run"
            point = None

        assert model.estimate(T()) == pytest.approx(2.0)  # alpha = 0.5

    def test_unknown_digest_falls_back_to_kind_scaled_by_copies(
        self, tmp_path
    ):
        model = CostModel(tmp_path / "cm.json")
        model.observe("other", "run", 4.0)

        class T:
            digest = "unseen"
            kind = "run"

            class point:
                copies = 2

        # per-kind mean (seeded at 4.0) scaled by 2 copies
        assert model.estimate(T()) == pytest.approx(8.0)

    def test_disabled_by_no_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        path = tmp_path / "cm.json"
        model = CostModel(path)
        model.observe("d", "run", 1.0)
        assert not model.save()
        assert not path.exists()

    def test_save_merges_with_concurrent_writer(self, tmp_path):
        path = tmp_path / "cm.json"
        ours = CostModel(path)
        theirs = CostModel(path)
        ours.observe("mine", "run", 1.0)
        theirs.observe("theirs", "run", 2.0)
        assert theirs.save()
        assert ours.save()
        merged = CostModel(path)
        assert "mine" in merged._by_digest
        assert "theirs" in merged._by_digest


class TestShmTransport:
    def test_scheme_run_round_trip_is_exact(self):
        runner = Runner(TINY)
        run = runner.run("hetero-5", "equal")
        keeper = ShmKeeper()
        payload = pack_scheme_run(run)
        assert payload[0] == "shm"
        out = unpack_scheme_run(payload, keeper)
        assert out.sim == run.sim
        assert out.mix == run.mix and out.scheme == run.scheme
        np.testing.assert_array_equal(out.ipc_alone, run.ipc_alone)
        np.testing.assert_array_equal(out.apc_alone, run.apc_alone)
        assert out.metrics == run.metrics
        assert keeper.n_segments == 1
        keeper.close()

    def test_sim_result_round_trip_is_exact(self):
        from repro.experiments.extension import HEURISTIC_FACTORIES
        from repro.sim.engine import simulate
        from repro.workloads.mixes import mix_core_specs

        sim = simulate(
            mix_core_specs("hetero-5"), HEURISTIC_FACTORIES["parbs"], TINY
        )
        keeper = ShmKeeper()
        out = unpack_sim_result(pack_sim_result(sim), keeper)
        assert out == sim
        keeper.close()

    def test_no_shm_env_falls_back_to_pickle(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        runner = Runner(TINY)
        run = runner.run("hetero-5", "equal")
        payload = pack_scheme_run(run)
        assert payload[0] == "pickle"
        assert unpack_scheme_run(payload, ShmKeeper()) is run

    def test_views_survive_keeper_close(self):
        """Results scattered out of a closed keeper must stay readable
        (the regression that segfaults if mappings are torn down)."""
        runner = Runner(TINY)
        run = runner.run("hetero-5", "equal")
        keeper = ShmKeeper()
        out = unpack_scheme_run(pack_scheme_run(run), keeper)
        keeper.close()
        np.testing.assert_array_equal(out.ipc_alone, run.ipc_alone)
        assert out.sim == run.sim


class TestExecution:
    def test_grid_identity_exact(self, dispatcher):
        """Plan-executed grid == serial Runner grid, field for field."""
        mixes = ("hetero-5",)
        schemes = ("nopart", "equal")
        plan = grid_plan(mixes, schemes, TINY)
        results, stats = dispatcher.execute(plan)
        serial = Runner(TINY).run_grid(mixes, schemes)
        for digest, task in plan.tasks.items():
            if task.kind != "run":
                continue
            got = results[digest]
            want = serial[task.point.mix][task.point.scheme]
            assert got.sim == want.sim  # exact dataclass equality
            assert list(got.ipc_alone) == list(want.ipc_alone)
            assert list(got.apc_alone) == list(want.apc_alone)
            assert got.metrics == want.metrics
        assert stats.n_tasks == len(plan.tasks)

    def test_profiles_complete_before_dependent_runs(self, dispatcher):
        plan = grid_plan(("hetero-5", "homo-1"), ("nopart",), TINY)
        dispatcher.execute(plan)
        order = dispatcher.last_execution_order
        position = {d: i for i, d in enumerate(order)}
        for digest, task in plan.tasks.items():
            if task.kind == "run":
                assert all(
                    position[dep] < position[digest] for dep in task.deps
                )

    def test_second_execution_hits_profile_cache(self, dispatcher):
        plan = grid_plan(("hetero-5",), ("nopart",), TINY)
        _, first = dispatcher.execute(plan)
        _, second = dispatcher.execute(plan)
        n_profiles = sum(
            1 for t in plan.tasks.values() if t.kind == "profile"
        )
        assert first.n_cache_hits == 0
        assert second.n_cache_hits == n_profiles

    def test_cost_model_learned_and_persisted(self, dispatcher):
        from repro.experiments.dispatch import COST_MODEL_FILENAME
        from repro.util.cache import default_cache_dir

        plan = grid_plan(("hetero-5",), ("equal",), TINY)
        dispatcher.execute(plan)
        path = default_cache_dir() / COST_MODEL_FILENAME
        assert path.exists()
        model = CostModel(path)
        for digest, task in plan.tasks.items():
            assert model.estimate(task) > 0
            assert digest in model._by_digest

    def test_steals_counted_for_dependent_waves(self, dispatcher):
        """Run tasks unblock mid-flight and are pulled by idle workers."""
        plan = grid_plan(("hetero-5",), ("nopart", "equal"), TINY)
        _, stats = dispatcher.execute(plan)
        n_runs = sum(1 for t in plan.tasks.values() if t.kind == "run")
        assert stats.n_steals == n_runs


class TestExecutePlan:
    def test_multi_exhibit_plan_warms_runner(self):
        plan = compile_plan(
            ("figure1", "table3"), config_factory=tiny_factory
        )
        results = execute_plan(plan, max_workers=2)
        try:
            warmed = results.runner(TINY)
            serial = Runner(TINY)
            # figure1's grid out of the warmed runner: exact equality
            run_w = warmed.run("hetero-5", "equal")
            run_s = serial.run("hetero-5", "equal")
            assert run_w.sim == run_s.sim
            assert run_w.metrics == run_s.metrics
            # profiles warmed too: table3's benchmarks resolve without
            # new simulations (alone cache already has the digest)
            from repro.workloads.spec import benchmark

            spec = benchmark("gobmk").core_spec()
            assert warmed._alone_key(spec) in warmed._alone_cache
        finally:
            results.close()

    def test_heuristic_sims_scattered(self):
        plan = compile_plan(("extension",), config_factory=tiny_factory)
        results = execute_plan(plan, max_workers=2)
        try:
            sims = results.heuristic_sims(TINY)
            assert sims  # parbs/tcm on the hetero mixes
            for (mix, sched, copies), sim in sims.items():
                assert sched in ("parbs", "tcm")
                assert copies == 1
                assert sim.total_apc > 0
        finally:
            results.close()

    def test_exhibit_output_identity_figure1(self):
        """End to end: the rendered figure1 text from a plan-warmed
        runner equals the serial rendering exactly."""
        from repro.experiments import figure1

        plan = compile_plan(("figure1",), config_factory=tiny_factory)
        results = execute_plan(plan, max_workers=2)
        try:
            planned_text = figure1.render(figure1.run(results.runner(TINY)))
        finally:
            results.close()
        serial_text = figure1.render(figure1.run(Runner(TINY)))
        assert planned_text == serial_text
