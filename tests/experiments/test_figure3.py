"""Shape tests for the QoS experiment (repro.experiments.figure3)."""

import pytest

from repro.experiments import figure3


@pytest.fixture(scope="session")
def fig3(runner):
    return figure3.run(runner)


class TestQoSGuarantee:
    @pytest.mark.parametrize("mix", ["Mix-1", "Mix-2"])
    def test_guaranteed_ipc_hits_target(self, fig3, mix):
        """Sec. VI-B: the QoS partition pins hmmer at ~0.6 IPC."""
        row = fig3.row(mix, "wsp")
        assert row.qos_ipc_guaranteed == pytest.approx(
            figure3.QOS_IPC_TARGET, rel=0.10
        )

    def test_nopart_does_not_regulate(self, fig3):
        """Under No_partitioning hmmer's IPC deviates from the target in
        at least one mix (paper: below in one, above in the other)."""
        deviations = [
            abs(fig3.row(mix, "wsp").qos_ipc_nopart - figure3.QOS_IPC_TARGET)
            for mix in ("Mix-1", "Mix-2")
        ]
        assert max(deviations) > 0.05

    def test_mix1_nopart_crushes_hmmer(self, fig3):
        """Mix-1 contains lbm+libquantum: under FCFS hmmer lands *below*
        target; Mix-2's light companions leave it above."""
        assert fig3.row("Mix-1", "wsp").qos_ipc_nopart < figure3.QOS_IPC_TARGET
        assert fig3.row("Mix-2", "wsp").qos_ipc_nopart > figure3.QOS_IPC_TARGET

    @pytest.mark.parametrize("objective", ["wsp", "ipcsum"])
    def test_best_effort_improves_over_nopart_mix1(self, fig3, objective):
        """The best-effort group's throughput metrics are 'largely
        improved' compared to No_partitioning (paper Fig. 3) -- Mix-1,
        where FCFS is the bad baseline."""
        assert fig3.row("Mix-1", objective).best_effort_gain > 1.0

    def test_best_effort_hsp_not_collapsed(self, fig3):
        """Hsp of Mix-1's best-effort group: the QoS reservation takes
        bandwidth away, and Mix-1's best-effort members are three heavy
        apps that FCFS already balances, so the gain hovers around 1.0
        (our FCFS baseline is kinder than the paper's here; see
        EXPERIMENTS.md).  It must at least not collapse."""
        assert fig3.row("Mix-1", "hsp").best_effort_gain > 0.85

    def test_all_rows_present(self, fig3):
        assert len(fig3.rows) == 2 * 3

    def test_render(self, fig3):
        text = figure3.render(fig3)
        assert "hmmer" in text
        assert "Mix-1" in text and "Mix-2" in text
