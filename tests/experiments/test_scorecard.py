"""Tests for the reproduction scorecard (experiments.scorecard)."""

import pytest

from repro.experiments import scorecard
from repro.experiments.scorecard import Check, Scorecard


@pytest.fixture(scope="session")
def card(runner):
    return scorecard.run(runner)


class TestScorecard:
    def test_all_checks_pass(self, card):
        failing = [c.name for c in card.checks if not c.passed]
        assert card.passed, failing

    def test_check_count(self, card):
        assert len(card.checks) == 17

    def test_every_exhibit_represented(self, card):
        prefixes = {c.name.split(":")[0] for c in card.checks}
        assert prefixes == {
            "figure1", "figure2", "figure3", "table3", "table4",
            "model-vs-sim",
        }

    def test_evidence_is_populated(self, card):
        assert all(c.evidence for c in card.checks)

    def test_render(self, card):
        text = scorecard.render(card)
        assert "REPRODUCTION HEALTHY" in text
        assert text.count("[PASS]") == 17

    def test_render_failure_path(self):
        broken = Scorecard(
            checks=(Check(name="x", passed=False, evidence="nope"),)
        )
        text = scorecard.render(broken)
        assert "[FAIL]" in text
        assert "ATTENTION NEEDED" in text
        assert not broken.passed
        assert broken.n_passed == 0
