"""Shape tests for the heuristic-vs-optimal extension experiment."""

import pytest

from repro.experiments import extension
from repro.experiments.figure2 import OPTIMAL_FOR

TEST_MIXES = ("hetero-5", "hetero-6")


@pytest.fixture(scope="session")
def ext(runner):
    return extension.run(runner, mixes=TEST_MIXES)


class TestBracketing:
    @pytest.mark.parametrize("metric", sorted(OPTIMAL_FOR))
    def test_heuristics_never_beat_derived_optimum(self, ext, metric):
        """No heuristic exceeds the metric's derived-optimal scheme (the
        analytical model's optimality claim, tested against schedulers it
        never saw)."""
        opt = ext.average(OPTIMAL_FOR[metric], metric)
        for h in extension.HEURISTICS:
            assert ext.average(h, metric) <= opt * 1.05, (metric, h)

    @pytest.mark.parametrize("h", extension.HEURISTICS)
    def test_heuristics_improve_fairness_over_nopart(self, ext, h):
        """Both heuristics were built for QoS: they must beat FCFS on
        the fairness-flavoured metrics."""
        assert ext.average(h, "minf") > 1.0, h
        assert ext.average(h, "hsp") > 1.0, h

    def test_heuristics_avoid_priority_starvation(self, ext):
        """Unlike the throughput-optimal priority schemes, the heuristics
        keep fairness far above zero -- the paper's point that optimal
        throughput *requires* accepting starvation."""
        for h in extension.HEURISTICS:
            assert ext.average(h, "minf") > 0.5
        assert ext.average("prio_apc", "minf") < 0.2

    def test_brackets_structure(self, ext):
        brackets = ext.brackets()
        assert set(brackets) == set(OPTIMAL_FOR)
        for metric, (np_v, heur, opt) in brackets.items():
            assert np_v == 1.0
            assert heur <= opt * 1.05, metric

    def test_render(self, ext):
        text = extension.render(ext)
        assert "bracketing" in text
        assert "parbs" in text and "tcm" in text
