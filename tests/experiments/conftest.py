"""Shared runner fixtures for the experiment tests.

The session-scoped runner amortizes alone-run profiling and shared-mode
simulations across all experiment tests; windows are shorter than the
paper-scale CLI defaults but long enough that the shape assertions are
far outside sampling noise.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import Runner
from repro.sim.engine import SimConfig


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(
        SimConfig(warmup_cycles=100_000.0, measure_cycles=400_000.0, seed=7)
    )
