"""The persistent profiling cache eliminates repeat alone-mode runs.

Acceptance property for the cache subsystem: regenerating a figure a
second time (fresh :class:`Runner`, same configuration, same cache
directory) performs **zero** alone-mode simulations -- every profile is
served from disk.  Verified by counting actual ``simulate`` calls.
"""

from __future__ import annotations

import repro.experiments.runner as runner_mod
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner
from repro.sim.engine import SimConfig
from repro.sim.engine import simulate as _real_simulate
from repro.util.cache import SimCache
from repro.workloads.mixes import mix_core_specs

_QUICK = SimConfig(warmup_cycles=5_000.0, measure_cycles=40_000.0, seed=7)


class _CountingSimulate:
    """Wraps the real ``simulate``, tallying alone (1-core) calls."""

    def __init__(self):
        self.alone_calls = 0
        self.shared_calls = 0

    def __call__(self, specs, factory, config):
        if len(list(specs)) == 1:
            self.alone_calls += 1
        else:
            self.shared_calls += 1
        return _real_simulate(specs, factory, config)


def test_second_regeneration_runs_zero_alone_sims(monkeypatch):
    specs = mix_core_specs("hetero-5")

    first = _CountingSimulate()
    monkeypatch.setattr(runner_mod, "simulate", first)
    r1 = Runner(_QUICK)
    r1.run("hetero-5", "equal")
    assert first.alone_calls == len(specs)  # cold cache: one per benchmark
    assert first.shared_calls == 1

    second = _CountingSimulate()
    monkeypatch.setattr(runner_mod, "simulate", second)
    r2 = Runner(_QUICK)  # fresh runner: in-memory caches are empty
    rerun = r2.run("hetero-5", "equal")
    assert second.alone_calls == 0  # everything served from disk
    assert second.shared_calls == 1  # shared-mode runs are not disk-cached

    base = r1.run("hetero-5", "equal")
    assert rerun.metrics == base.metrics  # cache hit == recompute


def test_cache_respects_opt_out(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    specs = mix_core_specs("hetero-2")

    for _ in range(2):
        counting = _CountingSimulate()
        monkeypatch.setattr(runner_mod, "simulate", counting)
        Runner(_QUICK).profiles(specs)
        assert counting.alone_calls == len(specs)  # never cached


def test_different_sim_config_is_a_cache_miss(monkeypatch):
    counting = _CountingSimulate()
    monkeypatch.setattr(runner_mod, "simulate", counting)
    Runner(_QUICK).profiles(mix_core_specs("hetero-5"))
    warm = counting.alone_calls
    assert warm > 0

    other = SimConfig(
        warmup_cycles=5_000.0, measure_cycles=40_000.0, seed=8
    )  # seed differs -> full config digest differs
    Runner(other).profiles(mix_core_specs("hetero-5"))
    assert counting.alone_calls == 2 * warm


class _ForbiddenPool:
    """Stands in for the process pool; any dispatch is a failure."""

    def map(self, fn, tasks, chunksize=1):  # pragma: no cover - guard
        raise AssertionError("profiling fanned out despite a warm cache")


class _InlinePool:
    """Runs pool.map serially in-process (no worker spawn cost)."""

    def __init__(self):
        self.dispatched = 0

    def map(self, fn, tasks, chunksize=1):
        tasks = list(tasks)
        self.dispatched += len(tasks)
        return [fn(t) for t in tasks]


def test_parallel_profiling_uses_the_shared_cache():
    pr = ParallelRunner(_QUICK, max_workers=2)
    pool = _InlinePool()
    table = pr._profile_all(("hetero-5",), 1, pool)
    assert pool.dispatched == len(table) > 0

    # warm cache: a second profiling pass must not dispatch anything
    again = pr._profile_all(("hetero-5",), 1, _ForbiddenPool())
    assert again == table

    # and the serial Runner reads the same entries (shared key scheme)
    r = Runner(_QUICK)
    for spec in mix_core_specs("hetero-5"):
        assert r.disk_cache.get(r._alone_key(spec)) is not None


def test_chunksize_scales_with_grid_and_workers():
    pr = ParallelRunner(_QUICK, max_workers=2)
    assert pr._chunksize(0) == 1
    assert pr._chunksize(7) == 1
    assert pr._chunksize(16) == 2
    assert pr._chunksize(98) == 12


def test_runner_exposes_cache_instance():
    r = Runner(_QUICK)
    assert isinstance(r.disk_cache, SimCache)
