"""Tests for the Table III / Table IV regeneration modules."""

import pytest

from repro.experiments import table3, table4


@pytest.fixture(scope="session")
def t3(runner):
    return table3.run(runner)


@pytest.fixture(scope="session")
def t4(runner):
    return table4.run(runner)


class TestTable3:
    def test_sixteen_rows(self, t3):
        assert len(t3.rows) == 16

    def test_measured_apkc_within_tolerance(self, t3):
        """Every surrogate within 15% of the paper's APKC_alone (the
        session fixture's short windows add sampling noise on top of the
        ~1% calibration residual; the CLI regenerates at 1M cycles)."""
        assert t3.worst_apkc_error < 0.15, [
            (r.name, round(r.apkc_error, 3)) for r in t3.rows
        ]

    def test_measured_apki_close(self, t3):
        for r in t3.rows:
            assert r.apki_measured == pytest.approx(r.apki_paper, rel=0.15), r.name

    def test_intensity_classes_preserved(self, t3):
        """The measured APKC must land every benchmark in its paper
        intensity class -- except benchmarks sitting within 10% of a
        class boundary (bzip2 at 3.93 vs the 4.0 line), where window
        noise can legitimately flip the class."""
        from repro.workloads.spec import TABLE3

        for r in t3.rows:
            near_boundary = any(
                abs(r.apkc_paper - b) / b < 0.10 for b in (4.0, 8.0)
            )
            if near_boundary:
                continue
            assert r.intensity == TABLE3[r.name].intensity, r.name

    def test_lbm_is_highest(self, t3):
        top = max(t3.rows, key=lambda r: r.apkc_measured)
        assert top.name == "lbm"

    def test_render(self, t3):
        text = table3.render(t3)
        assert "Table III" in text
        assert "lbm" in text and "povray" in text


class TestTable4:
    def test_fourteen_rows(self, t4):
        assert len(t4.rows) == 14

    def test_reference_rsd_matches_printed(self, t4):
        for r in t4.rows:
            if r.mix == "homo-7":
                continue  # known paper off-by-one (see EXPERIMENTS.md)
            assert r.rsd_paper_inputs == pytest.approx(r.rsd_printed, abs=0.02), r.mix

    def test_measured_rsd_classifies_hetero(self, t4):
        """Measured alone profiles keep every hetero mix above the
        RSD=30 threshold."""
        for r in t4.rows:
            if r.is_heterogeneous:
                assert r.rsd_measured > 30.0, r.mix

    def test_hetero_more_heterogeneous_than_homo(self, t4):
        homo = [r.rsd_measured for r in t4.rows if not r.is_heterogeneous]
        het = [r.rsd_measured for r in t4.rows if r.is_heterogeneous]
        assert max(homo) < min(het) + 15.0
        assert sum(het) / len(het) > sum(homo) / len(homo)

    def test_render(self, t4):
        text = table4.render(t4)
        assert "Table IV" in text
        assert "hetero-7" in text
