"""Tests for the sweep compiler (experiments.plan).

Compiling a plan performs zero simulations, so these tests exercise the
full registry cheaply: dedup accounting, dependency shape, digest
compatibility with the serial Runner's cache keys.
"""

import json

import pytest

from repro.experiments.plan import (
    PLANNABLE_EXHIBITS,
    HeuristicPoint,
    ProfilePoint,
    RunPoint,
    compile_plan,
    default_config,
    grid_plan,
)
from repro.sim.engine import SimConfig
from repro.util.errors import ConfigurationError

TINY = SimConfig(warmup_cycles=5_000.0, measure_cycles=20_000.0, seed=3)


def tiny_factory(dram=None):
    if dram is None:
        return TINY
    return SimConfig(
        warmup_cycles=TINY.warmup_cycles,
        measure_cycles=TINY.measure_cycles,
        seed=TINY.seed,
        dram=dram,
    )


class TestCompile:
    def test_every_registered_exhibit_is_plannable(self):
        plan = compile_plan(PLANNABLE_EXHIBITS, quick=True)
        assert plan.n_unique > 0
        assert set(plan.demand) == set(PLANNABLE_EXHIBITS)

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(ConfigurationError):
            compile_plan(("figure1", "figure99"))

    def test_compile_performs_no_simulation(self):
        # compiling the whole registry must be near-instant: the demand
        # functions only touch workload metadata, never the engine
        import time

        t0 = time.perf_counter()
        compile_plan(PLANNABLE_EXHIBITS, quick=True)
        assert time.perf_counter() - t0 < 5.0


class TestDedup:
    def test_figure1_subset_of_figure2(self):
        """Figure 1's grid is a strict subset of Figure 2's, so adding
        figure1 to a figure2 plan must add zero unique tasks."""
        only2 = compile_plan(("figure2",), config_factory=tiny_factory)
        both = compile_plan(("figure2", "figure1"), config_factory=tiny_factory)
        assert both.n_unique == only2.n_unique
        assert both.n_demanded == only2.n_demanded + len(both.demand["figure1"])
        assert both.dedup_ratio > 0.0

    def test_overlapping_exhibits_dedup_counts(self):
        """table4 profiles every mix's benchmarks; figure2 demands the
        same profiles plus its runs -- the union must be smaller than
        the sum of the parts."""
        t4 = compile_plan(("table4",), config_factory=tiny_factory)
        f2 = compile_plan(("figure2",), config_factory=tiny_factory)
        union = compile_plan(("table4", "figure2"), config_factory=tiny_factory)
        assert union.n_unique < t4.n_unique + f2.n_unique
        # table4 is profiles-only and figure2 profiles all its mixes,
        # so the union adds nothing beyond figure2's own task set plus
        # table4-only benchmarks
        assert union.n_unique <= f2.n_unique + t4.n_unique
        assert union.n_demanded == t4.n_demanded + f2.n_demanded

    def test_full_registry_hits_dedup_target(self):
        """The headline acceptance number: planning every exhibit
        eliminates >= 30% of the naive per-experiment simulations."""
        plan = compile_plan(PLANNABLE_EXHIBITS, quick=True)
        assert plan.dedup_ratio >= 0.30
        assert plan.n_unique < plan.n_demanded

    def test_dedup_ratio_gauge_set(self):
        from repro import obs

        obs.reset()
        plan = compile_plan(("figure1", "figure2"), config_factory=tiny_factory)
        assert obs.registry().get_value("parallel.dedup_ratio") == pytest.approx(
            plan.dedup_ratio
        )
        obs.reset()


class TestDependencies:
    def test_runs_depend_only_on_their_mix_profiles(self):
        plan = grid_plan(("hetero-5",), ("nopart", "equal"), TINY)
        profiles = {d for d, t in plan.tasks.items() if t.kind == "profile"}
        runs = {d: t for d, t in plan.tasks.items() if t.kind == "run"}
        assert len(profiles) == 4  # hetero-5 has four distinct benchmarks
        for task in runs.values():
            assert set(task.deps) == profiles

    def test_profiles_have_no_deps(self):
        plan = compile_plan(("figure1",), config_factory=tiny_factory)
        for task in plan.tasks.values():
            if task.kind == "profile":
                assert task.deps == ()

    def test_heuristic_tasks_have_no_deps(self):
        plan = compile_plan(("extension",), config_factory=tiny_factory)
        kinds = plan.counts_by_kind()
        assert kinds.get("heuristic", 0) > 0
        for task in plan.tasks.values():
            if task.kind == "heuristic":
                assert task.deps == ()

    def test_tasks_listed_in_topological_order(self):
        """Profiles are inserted before anything that depends on them."""
        plan = compile_plan(
            ("figure1", "extension"), config_factory=tiny_factory
        )
        seen = set()
        for digest, task in plan.tasks.items():
            assert set(task.deps) <= seen
            seen.add(digest)


class TestDigests:
    def test_profile_digest_matches_runner_alone_key(self):
        """The planner's profile digests must equal the serial Runner's
        SimCache keys, or disk-cached profiles could not short-circuit
        planned tasks (and vice versa)."""
        from repro.experiments.runner import Runner
        from repro.workloads.spec import benchmark

        runner = Runner(TINY)
        spec = benchmark("gobmk").core_spec()
        assert ProfilePoint("gobmk", TINY).digest() == runner._alone_key(spec)

    def test_distinct_points_distinct_digests(self):
        a = RunPoint("hetero-5", "equal", 1, TINY)
        b = RunPoint("hetero-5", "equal", 2, TINY)
        c = HeuristicPoint("hetero-5", "parbs", 1, TINY)
        assert len({a.digest(), b.digest(), c.digest()}) == 3

    def test_same_point_same_digest_across_instances(self):
        cfg2 = SimConfig(
            warmup_cycles=5_000.0, measure_cycles=20_000.0, seed=3
        )
        assert (
            RunPoint("hetero-5", "equal", 1, TINY).digest()
            == RunPoint("hetero-5", "equal", 1, cfg2).digest()
        )


class TestSerialization:
    def test_to_json_round_trips_through_json(self, tmp_path):
        plan = compile_plan(("figure1", "table3"), config_factory=tiny_factory)
        path = tmp_path / "plan.json"
        plan.write(path)
        data = json.loads(path.read_text())
        assert data["n_unique"] == plan.n_unique
        assert data["n_demanded"] == plan.n_demanded
        assert data["dedup_ratio"] == pytest.approx(plan.dedup_ratio)
        assert set(data["tasks"]) == set(plan.tasks)
        for digest, task in plan.tasks.items():
            assert data["tasks"][digest]["kind"] == task.kind
            assert data["tasks"][digest]["deps"] == list(task.deps)

    def test_summary_mentions_dedup(self):
        plan = compile_plan(("figure1", "figure2"), config_factory=tiny_factory)
        text = plan.summary()
        assert "dedup ratio" in text
        assert "figure1" in text and "figure2" in text

    def test_default_config_quick_and_full(self):
        q = default_config(True)
        f = default_config(False)
        assert q.measure_cycles < f.measure_cycles
        assert q.seed == f.seed == 7
