"""Tests for the model-only predicted grid (experiments.predicted)."""

import pytest

from repro.experiments import predicted
from repro.experiments.figure2 import OPTIMAL_FOR
from repro.util.errors import ConfigurationError

TEST_MIXES = ("hetero-5", "hetero-6", "homo-1")


@pytest.fixture(scope="session")
def pred():
    return predicted.run(mixes=TEST_MIXES)


class TestPredictedGrid:
    def test_structure(self, pred):
        assert set(pred.grid) == set(TEST_MIXES)
        for row in pred.grid.values():
            assert set(row) == {
                "equal", "prop", "sqrt", "twothirds", "prio_apc", "prio_api",
            }

    def test_baseline_is_one(self, pred):
        for mix in TEST_MIXES:
            for metric, value in pred.grid[mix]["equal"].items():
                assert value == pytest.approx(1.0)

    def test_optimal_schemes_win_predicted_grid(self, pred):
        """The model's own grid must rank its derived optima first."""
        hetero = tuple(m for m in TEST_MIXES if m.startswith("hetero"))
        for metric, winner in OPTIMAL_FOR.items():
            values = {
                s: pred.average(hetero, s, metric)
                for s in pred.grid[hetero[0]]
            }
            best = max(values, key=values.get)
            if winner.startswith("prio"):
                assert best.startswith("prio")
            else:
                assert best == winner, values

    def test_instantaneous(self):
        """The whole 14-mix predicted grid takes well under a second."""
        import time

        t0 = time.time()
        predicted.run()
        assert time.time() - t0 < 1.0

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            predicted.run(total_bandwidth=0.0)

    def test_render(self, pred):
        text = predicted.render(pred)
        assert "no simulation" in text
        assert "hetero-5" in text


class TestAgreementWithSimulation:
    def test_prediction_tracks_simulation(self, pred, runner):
        """Mean absolute normalized-value error < 0.15 and pairwise
        ordering agreement > 90% on well-separated pairs -- the model's
        'simple yet powerful' claim, quantified."""
        agreement = predicted.compare_with_simulation(
            pred, runner, mixes=TEST_MIXES
        )
        assert agreement.n_cells > 30
        assert agreement.mean_abs_error < 0.15, agreement
        assert agreement.ordering_agreement > 0.90, agreement
