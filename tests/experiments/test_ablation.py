"""Tests for the ablation studies (repro.experiments.ablation)."""

import numpy as np
import pytest

from repro.experiments import ablation


@pytest.fixture(scope="session")
def mvs(runner):
    return ablation.model_vs_sim(runner, "hetero-5")


class TestModelVsSim:
    def test_share_scheme_apc_predictions_close(self, mvs):
        """The analytical model's per-app APC under share-based schemes
        must match the simulator within ~15% mean error -- the model
        validation at the heart of the paper."""
        for scheme in ("equal", "prop", "sqrt", "twothirds"):
            assert mvs.apc_error(scheme) < 0.15, (scheme, mvs.apc_error(scheme))

    def test_priority_apc_predictions_close(self, mvs):
        """Knapsack allocations materialize in the simulator too; the
        starved app's absolute APC is tiny so compare share vectors."""
        for scheme in ("prio_apc", "prio_api"):
            pred, meas = mvs.apc[scheme]
            np.testing.assert_allclose(
                pred / pred.sum(), meas / meas.sum(), atol=0.05
            )

    def test_metric_predictions_close(self, mvs):
        """Predicted vs measured Hsp/Wsp for share schemes within 12%."""
        for scheme in ("equal", "prop", "sqrt"):
            for metric in ("hsp", "wsp"):
                pred, meas = mvs.metrics[scheme][metric]
                assert pred == pytest.approx(meas, rel=0.12), (scheme, metric)

    def test_render(self, mvs):
        text = ablation.render_model_vs_sim(mvs)
        assert "Model vs simulator" in text


class TestEnforcementAblation:
    def test_arrival_free_attains_target(self, runner):
        """Sec. IV-B: with the paper's arrival-free tags, the light app
        attains its (demand-capped) share under Equal."""
        res = ablation.enforcement_ablation(runner)
        assert res.share_arrival_free == pytest.approx(res.target_share, rel=0.2)

    def test_arrival_free_at_least_as_good(self, runner):
        """The paper's modification never hurts the light app relative to
        arrival-coupled DSTF."""
        res = ablation.enforcement_ablation(runner)
        assert res.share_arrival_free >= res.share_arrival_coupled - 0.01


class TestProfilerAblation:
    def test_stalled_mode_beats_pending_for_light_apps(self, runner):
        """The STFM-style gating is the more accurate estimator overall
        on a heterogeneous mix (raw pending-counting over-attributes
        interference to light apps)."""
        res = ablation.profiler_ablation(runner)
        assert res.errors["stalled"] <= res.errors["pending"] + 0.05

    def test_both_modes_bounded(self, runner):
        res = ablation.profiler_ablation(runner)
        for mode, err in res.errors.items():
            assert err < 0.5, (mode, err)


class TestPriorityEnforcement:
    def test_both_enforcements_agree_on_wsp(self, runner):
        """Strict priority and knapsack-as-shares are two realizations of
        the same allocation (paper Sec. III-D): Wsp within 10%."""
        res = ablation.priority_enforcement_ablation(runner)
        assert res.wsp_shares == pytest.approx(res.wsp_strict, rel=0.10)

    def test_starvation_under_both(self, runner):
        """The lowest-priority app is starved under either realization."""
        res = ablation.priority_enforcement_ablation(runner)
        assert res.apc_strict.min() < 0.1 * res.apc_strict.max()
        assert res.apc_shares.min() < 0.2 * res.apc_shares.max()


class TestOnlineVsStatic:
    def test_online_close_to_static(self, runner):
        """Fully-online operation (Sec. IV-C profiling, no alone-run
        oracle) must achieve >= 90% of the static-profile metric."""
        res = ablation.online_vs_static_ablation(runner)
        assert res.relative_gap > 0.90, res

    def test_online_shares_converge_toward_static(self, runner):
        res = ablation.online_vs_static_ablation(runner)
        np.testing.assert_allclose(res.beta_online, res.beta_static, atol=0.12)

    def test_metric_matches_scheme(self, runner):
        res = ablation.online_vs_static_ablation(runner, scheme_name="prop")
        assert res.metric == "minf"


class TestChannelScaling:
    def test_two_scaling_modes_equivalent(self, runner):
        """6.4 GB/s via 2x bus frequency vs via 2 channels: delivered
        bandwidth within 5% and per-app distribution within 10% -- the
        justification for the paper's frequency-only scaling in Fig. 4."""
        res = ablation.channel_scaling_ablation(runner)
        assert res.throughput_ratio == pytest.approx(1.0, abs=0.05)
        np.testing.assert_allclose(
            res.apc_two_channels, res.apc_fast_bus, rtol=0.10
        )

    def test_both_modes_deliver_more_than_baseline(self, runner):
        res = ablation.channel_scaling_ablation(runner)
        base = runner.run("hetero-6", "nopart").sim.total_apc
        assert res.total_apc_fast_bus > base * 1.3
        assert res.total_apc_two_channels > base * 1.3
