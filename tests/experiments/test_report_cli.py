"""Tests for report rendering and the experiments CLI."""

import pytest

from repro.experiments.report import format_grid, format_table, pct


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 2.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "1.500" in text and "2.250" in text

    def test_column_alignment(self):
        text = format_table(["x"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines[2:]}
        # the header divider matches the widest cell
        assert max(len(l) for l in lines) == len("a-much-longer-cell")

    def test_custom_float_format(self):
        text = format_table(["v"], [[3.14159]], float_fmt="{:.1f}")
        assert "3.1" in text and "3.14" not in text

    def test_non_float_cells_passthrough(self):
        text = format_table(["v"], [[42], ["s"]])
        assert "42" in text and "s" in text


class TestFormatGrid:
    def test_grid_rows_and_columns(self):
        grid = {"r1": {"a": 1.0, "b": 2.0}, "r2": {"a": 3.0, "b": 4.0}}
        text = format_grid(grid, columns=["a", "b"])
        assert "r1" in text and "r2" in text
        assert "1.000" in text and "4.000" in text

    def test_missing_cell_is_nan(self):
        grid = {"r1": {"a": 1.0}}
        text = format_grid(grid, columns=["a", "b"])
        assert "nan" in text

    def test_columns_inferred_sorted(self):
        grid = {"r": {"z": 1.0, "a": 2.0}}
        text = format_grid(grid)
        header = text.splitlines()[0]
        assert header.index("a") < header.index("z")


class TestPct:
    def test_positive(self):
        assert pct(1.203) == "+20.3%"

    def test_negative(self):
        assert pct(0.9) == "-10.0%"

    def test_zero(self):
        assert pct(1.0) == "+0.0%"


class TestCLI:
    def test_unknown_exhibit_rejected(self):
        from repro.experiments.__main__ import run_exhibit

        with pytest.raises(SystemExit):
            run_exhibit("figure99")

    def test_main_parses_and_runs_table4(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["table4", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "hetero-7" in out

    def test_main_figure1_quick(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["figure1", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "best scheme per metric" in out
