"""Tests for the robustness sweep (repro.experiments.sensitivity)."""

import pytest

from repro.experiments import sensitivity
from repro.experiments.sensitivity import Perturbation, _cfg


@pytest.fixture(scope="session")
def sens():
    # a reduced perturbation set keeps the suite fast; the full sweep
    # runs in the benchmark harness
    perturbations = (
        Perturbation("baseline", _cfg()),
        Perturbation("seed=101", _cfg(seed=101)),
        Perturbation("short-window", _cfg(measure=300_000.0)),
    )
    return sensitivity.run(perturbations=perturbations)


class TestSensitivity:
    def test_all_perturbations_evaluated(self, sens):
        assert set(sens.winners) == {"baseline", "seed=101", "short-window"}

    def test_baseline_conclusions_hold(self, sens):
        assert sens.holds("baseline"), sens.winners["baseline"]

    def test_seed_robustness(self, sens):
        assert sens.holds("seed=101"), sens.winners["seed=101"]

    def test_window_robustness(self, sens):
        assert sens.holds("short-window"), sens.winners["short-window"]

    def test_all_hold_aggregate(self, sens):
        assert sens.all_hold

    def test_render(self, sens):
        text = sensitivity.render(sens)
        assert "Sensitivity" in text
        assert "ALL conclusions hold" in text

    def test_holds_detects_flips(self, sens):
        from repro.experiments.sensitivity import SensitivityResult

        broken = SensitivityResult(
            mix="hetero-5",
            winners={"x": {"hsp": "equal", "minf": "prop",
                           "wsp": "prio_apc", "ipcsum": "prio_api"}},
        )
        assert not broken.holds("x")

    def test_priority_interchangeability(self):
        from repro.experiments.sensitivity import SensitivityResult

        swapped = SensitivityResult(
            mix="hetero-5",
            winners={"x": {"hsp": "sqrt", "minf": "prop",
                           "wsp": "prio_api", "ipcsum": "prio_apc"}},
        )
        assert swapped.holds("x")


def test_default_perturbations_cover_design_knobs():
    names = {p.name for p in sensitivity.default_perturbations()}
    assert {"baseline", "banks=16", "banks=64", "no-turnaround",
            "no-refresh", "slow-dram", "pending-interference"} <= names
