"""Shape tests for the scalability experiment (repro.experiments.figure4).

The full Fig. 4 sweep (16 cores at 12.8 GB/s over 7 mixes) runs in the
benchmark harness; here a two-point sweep over two mixes checks the
paper's scaling claim with small windows.
"""

import pytest

from repro.experiments import figure4
from repro.experiments.runner import Runner
from repro.sim.dram.config import ddr2_400, ddr2_800
from repro.sim.engine import SimConfig

TEST_POINTS = (
    ("3.2GB/s x4cores", ddr2_400, 1),
    ("6.4GB/s x8cores", ddr2_800, 2),
)
TEST_MIXES = ("hetero-6", "hetero-7")  # both contain lbm (the scaler)


@pytest.fixture(scope="session")
def fig4():
    def factory(dram):
        return Runner(
            SimConfig(
                dram=dram, warmup_cycles=100_000.0,
                measure_cycles=400_000.0, seed=7,
            )
        )

    return figure4.run(factory, mixes=TEST_MIXES, scale_points=TEST_POINTS)


class TestScalingShape:
    def test_gains_exceed_one_at_both_points(self, fig4):
        """Optimal schemes beat Equal on their own metric everywhere."""
        for label in fig4.gains:
            for metric, gain in fig4.gains[label].items():
                assert gain > 0.97, (label, metric, gain)

    @pytest.mark.parametrize("metric", ["hsp", "minf", "wsp", "ipcsum"])
    def test_gain_grows_with_bandwidth(self, fig4, metric):
        """Sec. VI-C: the optimal-vs-Equal gap widens as bandwidth and
        core count scale (workloads become more heterogeneous)."""
        lo = fig4.gains["3.2GB/s x4cores"][metric]
        hi = fig4.gains["6.4GB/s x8cores"][metric]
        assert hi > lo * 0.98, (metric, lo, hi)

    def test_series_ordering_helper(self, fig4):
        # series uses the global SCALE_POINTS labels; only the two test
        # points exist here, so query gains directly instead
        assert set(fig4.gains) == {p[0] for p in TEST_POINTS}

    def test_render(self, fig4):
        text = figure4.render(fig4)
        assert "normalized to Equal" in text
