"""Tests for the machine-readable exhibit exports (experiments.export)."""

import csv
import io
import json

import pytest

from repro.experiments import export, figure1, figure3, table3, table4
from repro.util.errors import ConfigurationError


class TestSerializers:
    def test_csv_roundtrip(self):
        records = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = export.records_to_csv(records)
        back = list(csv.DictReader(io.StringIO(text)))
        assert back == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_json_roundtrip(self):
        records = [{"a": 1.5, "b": "x"}]
        assert json.loads(export.records_to_json(records)) == records

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            export.records_to_csv([])
        with pytest.raises(ConfigurationError):
            export.records_to_json([])

    def test_inconsistent_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            export.records_to_csv([{"a": 1}, {"b": 2}])

    def test_write_records(self, tmp_path):
        csv_path, json_path = export.write_records(
            [{"k": 1}], tmp_path, "thing"
        )
        assert csv_path.read_text().startswith("k\n")
        assert json.loads(json_path.read_text()) == [{"k": 1}]


class TestExhibitFlatteners:
    def test_figure1_records(self, runner):
        result = figure1.run(runner)
        records = export.figure1_records(result)
        assert len(records) == len(figure1.FIG1_SCHEMES) * 4
        assert {r["metric"] for r in records} == {"hsp", "minf", "wsp", "ipcsum"}
        # values match the result object
        sample = records[0]
        assert result.normalized[sample["scheme"]][sample["metric"]] == (
            sample["normalized_value"]
        )

    def test_figure2_records(self, runner):
        from repro.experiments import figure2

        result = figure2.run(runner, mixes=("hetero-5", "homo-1"))
        records = export.figure2_records(result)
        assert len(records) == 2 * len(figure2.FIG2_SCHEMES) * 4
        groups = {r["mix"]: r["group"] for r in records}
        assert groups["hetero-5"] == "hetero"
        assert groups["homo-1"] == "homo"

    def test_figure3_records(self, runner):
        result = figure3.run(runner)
        records = export.figure3_records(result)
        assert len(records) == 6
        assert {r["mix"] for r in records} == {"Mix-1", "Mix-2"}

    def test_table3_records(self, runner):
        result = table3.run(runner)
        records = export.table3_records(result)
        assert len(records) == 16
        lbm = next(r for r in records if r["name"] == "lbm")
        assert lbm["intensity"] == "high"
        assert lbm["apkc_rel_error"] < 0.15

    def test_table4_records(self, runner):
        result = table4.run(runner)
        records = export.table4_records(result)
        assert len(records) == 14
        assert sum(r["heterogeneous"] for r in records) == 7

    def test_csv_export_of_real_exhibit(self, runner, tmp_path):
        result = figure1.run(runner)
        csv_path, json_path = export.write_records(
            export.figure1_records(result), tmp_path, "figure1"
        )
        rows = list(csv.DictReader(io.StringIO(csv_path.read_text())))
        assert len(rows) == 20


class TestFigure4Records:
    def test_flattener_on_synthetic_result(self):
        from repro.experiments.figure4 import Figure4Result

        result = Figure4Result(
            gains={
                "3.2GB/s x4cores": {"hsp": 1.04, "minf": 1.49},
                "6.4GB/s x8cores": {"hsp": 1.08, "minf": 1.70},
            },
            mixes=("hetero-6",),
        )
        records = export.figure4_records(result)
        assert len(records) == 4
        assert {r["scale_point"] for r in records} == set(result.gains)
        row = next(
            r for r in records
            if r["scale_point"] == "6.4GB/s x8cores" and r["metric"] == "minf"
        )
        assert row["gain_over_equal"] == 1.70
