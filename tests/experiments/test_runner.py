"""Tests for the experiment runner (repro.experiments.runner)."""

import numpy as np
import pytest

from repro.experiments.runner import ALL_SCHEME_NAMES, NOPART, Runner
from repro.sim.engine import SimConfig
from repro.sim.mc.fcfs import FCFSScheduler
from repro.sim.mc.priority import PriorityScheduler
from repro.sim.mc.stf import StartTimeFairScheduler
from repro.util.errors import ConfigurationError
from repro.workloads.mixes import mix_core_specs


class TestSchedulerWiring:
    def test_nopart_is_fcfs(self, runner):
        specs = mix_core_specs("hetero-5")
        factory = runner.scheduler_factory(NOPART, runner.profiles(specs))
        assert isinstance(factory(4), FCFSScheduler)

    def test_share_schemes_use_stf(self, runner):
        specs = mix_core_specs("hetero-5")
        profiles = runner.profiles(specs)
        for name in ("equal", "prop", "sqrt", "twothirds"):
            sched = runner.scheduler_factory(name, profiles)(4)
            assert isinstance(sched, StartTimeFairScheduler), name
            assert sched.beta.sum() == pytest.approx(1.0)

    def test_priority_schemes_use_priority_scheduler(self, runner):
        specs = mix_core_specs("hetero-5")
        profiles = runner.profiles(specs)
        sched = runner.scheduler_factory("prio_apc", profiles)(4)
        assert isinstance(sched, PriorityScheduler)
        # lowest measured APC_alone first
        assert sched.priority_order[0] == int(np.argmin(profiles.apc_alone))

    def test_unknown_scheme(self, runner):
        specs = mix_core_specs("hetero-5")
        with pytest.raises(ConfigurationError):
            runner.scheduler_factory("bogus", runner.profiles(specs))


class TestProfiling:
    def test_alone_cache_hit(self, runner):
        specs = mix_core_specs("homo-1")
        a = runner.alone_point(specs[0])
        b = runner.alone_point(specs[0])
        assert a == b  # identical cached tuple

    def test_copies_share_profile(self, runner):
        specs = mix_core_specs("hetero-5", copies=2)
        # libquantum#0 and libquantum#1 must resolve to the same profile
        assert runner.alone_point(specs[0]) == runner.alone_point(specs[4])

    def test_profiles_workload_structure(self, runner):
        specs = mix_core_specs("hetero-5")
        wl = runner.profiles(specs)
        assert wl.n == 4
        assert all(a > 0 for a in wl.apc_alone)

    def test_measured_profile_close_to_paper(self, runner):
        """Measured alone APC within 10% of Table III for the fig-1 mix."""
        from repro.workloads.mixes import mix_paper_workload

        specs = mix_core_specs("hetero-5")
        measured = runner.profiles(specs).apc_alone
        paper = mix_paper_workload("hetero-5").apc_alone
        np.testing.assert_allclose(measured, paper, rtol=0.10)


class TestRunCaching:
    def test_run_cache(self, runner):
        r1 = runner.run("hetero-5", "equal")
        r2 = runner.run("hetero-5", "equal")
        assert r1 is r2

    def test_metrics_structure(self, runner):
        run = runner.run("hetero-5", "equal")
        assert set(run.metrics) == {"hsp", "minf", "wsp", "ipcsum"}
        assert run.speedups.shape == (4,)

    def test_normalization_baseline_is_one(self, runner):
        norm = runner.normalized_metrics("hetero-5", [NOPART])
        for v in norm[NOPART].values():
            assert v == pytest.approx(1.0)

    def test_beta_source_validation(self):
        with pytest.raises(ConfigurationError):
            Runner(SimConfig(), beta_source="guessed")

    def test_paper_beta_source(self):
        quick = Runner(
            SimConfig(warmup_cycles=20_000.0, measure_cycles=80_000.0, seed=3),
            beta_source="paper",
        )
        run = quick.run("hetero-5", "equal")
        # with paper profiles, ipc_alone comes straight from Table III
        from repro.workloads.mixes import mix_paper_workload

        np.testing.assert_allclose(
            run.ipc_alone, mix_paper_workload("hetero-5").ipc_alone
        )

    def test_all_scheme_names_cover_paper(self):
        assert set(ALL_SCHEME_NAMES) == {
            "nopart", "equal", "prop", "sqrt", "twothirds",
            "prio_apc", "prio_api",
        }
