"""Closed-loop evaluation tests: convergence, regret, tracking error.

These run real simulations (short horizons) and assert the headline
acceptance gates: re-convergence after an abrupt phase swap in <= 3
epochs with adaptive windowing, and regret vs. the phase oracle <= 5%
on Hsp / Wsp / MinF.
"""

import numpy as np
import pytest

from repro.control import EpochController, ProfileTracker, evaluate_controller
from repro.control.changepoint import RelativeShiftDetector
from repro.control.smoothing import EMASmoother
from repro.core.partitioning import scheme_by_name
from repro.util.errors import ConfigurationError
from repro.workloads import phase_swap_workload

REGRET_GATE = 0.05
CONVERGENCE_GATE_EPOCHS = 3


@pytest.fixture(scope="module")
def swap_eval():
    wl = phase_swap_workload()
    return evaluate_controller(wl, scheme_by_name("prop"), seed=3)


class TestPhaseSwapGates:
    def test_converges_within_three_epochs(self, swap_eval):
        assert swap_eval.max_lag is not None
        assert swap_eval.max_lag <= CONVERGENCE_GATE_EPOCHS
        assert swap_eval.converged_within(CONVERGENCE_GATE_EPOCHS)

    def test_regret_below_gate(self, swap_eval):
        assert set(swap_eval.regret) == {"hsp", "wsp", "minf"}
        for metric, value in swap_eval.regret.items():
            assert value <= REGRET_GATE, f"{metric} regret {value:.3f}"

    def test_change_point_detected_once(self, swap_eval):
        changed = [d for d in swap_eval.decisions if d.changed]
        assert len(changed) == 1
        # detected at the first epoch whose window saw post-swap data
        assert changed[0].cycle == pytest.approx(700_000.0)

    def test_adaptive_window_engaged(self, swap_eval):
        changed = [d for d in swap_eval.decisions if d.changed][0]
        assert changed.next_epoch_cycles < 100_000.0

    def test_tracking_error_small(self, swap_eval):
        # steady-state profiling noise is a few percent; the one
        # transition epoch lifts the mean but not above 15%
        assert swap_eval.tracking_error < 0.15

    def test_sim_result_attached(self, swap_eval):
        assert len(swap_eval.sim.apps) == 4


class TestFixedEpochBaseline:
    def test_heavy_smoothing_without_detection_converges_slower(self):
        """The CBP-style baseline: fixed window, EMA, no change detection.

        With detection disabled (threshold far above any real shift)
        the EMA drags pre-swap history for several epochs; the adaptive
        controller must beat it.  This is the benchmark comparison in
        miniature.
        """
        wl = phase_swap_workload()
        scheme = scheme_by_name("prop")
        baseline = EpochController(
            scheme,
            wl.true_api(0.0),
            bandwidth=wl.peak_apc,
            epoch_cycles=100_000.0,
            tracker=ProfileTracker(
                wl.n,
                smoother=EMASmoother(alpha=0.3),
                detector=RelativeShiftDetector(1e9),
            ),
            names=wl.names,
        )
        res = evaluate_controller(wl, scheme, controller=baseline, seed=3)
        assert not any(d.changed for d in res.decisions)
        lag = res.convergence[0].lag_epochs
        assert lag is None or lag > CONVERGENCE_GATE_EPOCHS


class TestValidation:
    def test_warmup_must_fit_horizon(self):
        wl = phase_swap_workload()
        with pytest.raises(ConfigurationError):
            evaluate_controller(
                wl, scheme_by_name("prop"), warmup_cycles=2_000_000.0
            )

    def test_decisions_are_logged_in_order(self, swap_eval):
        cycles = [d.cycle for d in swap_eval.decisions]
        assert cycles == sorted(cycles)
        assert all(
            d.beta is None or np.isclose(d.beta.sum(), 1.0)
            for d in swap_eval.decisions
        )
