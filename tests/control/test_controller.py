"""Tests for the EpochController hook and the phase oracle."""

import numpy as np
import pytest

from repro.control.controller import EpochController
from repro.control.oracle import PhaseOracle, beta_for
from repro.core.apps import AppProfile, Workload
from repro.core.partitioning import scheme_by_name
from repro.sim.mc.stf import StartTimeFairScheduler
from repro.sim.profiler import OnlineProfiler
from repro.sim.stats import AppCounters
from repro.util.errors import ConfigurationError
from repro.workloads import phase_swap_workload


def profiler_with(estimates) -> OnlineProfiler:
    p = OnlineProfiler(len(estimates), peak_apc=0.01)
    p.estimates = np.array(estimates, dtype=float)
    return p


def make_controller(**kwargs):
    defaults = dict(
        scheme=scheme_by_name("prop"),
        api=[0.02, 0.02],
        bandwidth=0.01,
        epoch_cycles=100.0,
    )
    defaults.update(kwargs)
    return EpochController(defaults.pop("scheme"), defaults.pop("api"), **defaults)


class TestEpochController:
    def test_resolves_shares_from_estimates(self):
        ctl = make_controller()
        sched = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        nxt = ctl(100.0, profiler_with([0.003, 0.001]), sched)
        assert nxt == pytest.approx(100.0)
        d = ctl.decisions[-1]
        np.testing.assert_allclose(d.beta, [0.75, 0.25])

    def test_nan_estimates_skip_the_resolve(self):
        ctl = make_controller()
        sched = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        ctl(100.0, profiler_with([float("nan"), 0.001]), sched)
        assert ctl.decisions[-1].beta is None
        assert ctl.latest_beta is None

    def test_fallback_fills_nans(self):
        ctl = make_controller(fallback_apc=[0.003, 0.003])
        sched = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        ctl(100.0, profiler_with([float("nan"), 0.001]), sched)
        d = ctl.decisions[-1]
        assert d.beta is not None
        np.testing.assert_allclose(d.beta, [0.75, 0.25])

    def test_change_shortens_next_window(self):
        ctl = make_controller(fast_epoch_cycles=25.0)
        sched = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        for k in range(4):
            nxt = ctl(100.0 * (k + 1), profiler_with([0.003, 0.001]), sched)
            assert nxt == pytest.approx(100.0)
        # 3x jump on app 1 -> change point -> fast window once
        nxt = ctl(500.0, profiler_with([0.003, 0.003]), sched)
        assert nxt == pytest.approx(25.0)
        assert ctl.decisions[-1].changed
        assert ctl.n_changes == 1
        nxt = ctl(525.0, profiler_with([0.003, 0.003]), sched)
        assert nxt == pytest.approx(100.0)

    def test_shares_reach_the_scheduler(self):
        ctl = make_controller()
        sched = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        ctl(100.0, profiler_with([0.003, 0.001]), sched)
        np.testing.assert_allclose(sched._beta, [0.75, 0.25])

    def test_priority_scheme_enforced_through_shares(self):
        ctl = make_controller(scheme=scheme_by_name("prio_apc"))
        sched = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
        ctl(100.0, profiler_with([0.008, 0.008]), sched)
        d = ctl.decisions[-1]
        # greedy gives the full 0.008 to the winner, 0.002 to the other
        np.testing.assert_allclose(d.beta, [0.8, 0.2])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_controller(api=[0.02, -0.1])
        with pytest.raises(ConfigurationError):
            make_controller(bandwidth=0.0)
        with pytest.raises(ConfigurationError):
            make_controller(epoch_cycles=-1.0)
        with pytest.raises(ConfigurationError):
            make_controller(fast_epoch_cycles=0.0)
        with pytest.raises(ConfigurationError):
            make_controller(names=["only-one"])
        with pytest.raises(ConfigurationError):
            make_controller(fallback_apc=[0.001])


class TestBetaFor:
    def workload(self):
        return Workload.of(
            "w",
            [
                AppProfile("a", api=0.02, apc_alone=0.006),
                AppProfile("b", api=0.02, apc_alone=0.002),
            ],
        )

    def test_share_scheme_passthrough(self):
        beta = beta_for(scheme_by_name("prop"), self.workload(), 0.01)
        np.testing.assert_allclose(beta, [0.75, 0.25])

    def test_priority_scheme_normalized_allocation(self):
        beta = beta_for(scheme_by_name("prio_apc"), self.workload(), 0.01)
        # greedy: winner takes its demand 0.006, loser gets 0.002
        np.testing.assert_allclose(beta, [0.75, 0.25])
        assert beta.sum() == pytest.approx(1.0)


class TestPhaseOracle:
    def test_tracks_the_schedule(self):
        wl = phase_swap_workload(swap_cycle=600_000.0)
        oracle = PhaseOracle(wl, scheme_by_name("prop"))
        before = oracle.beta_at(0.0)
        after = oracle.beta_at(600_000.0)
        # the swap exchanges the shares of neighbouring apps
        np.testing.assert_allclose(before, after[[1, 0, 3, 2]])

    def test_profile_matches_truth(self):
        wl = phase_swap_workload()
        oracle = PhaseOracle(wl, scheme_by_name("equal"))
        prof = oracle.profile_at(0.0)
        np.testing.assert_allclose(
            [a.apc_alone for a in prof], wl.true_apc_alone(0.0)
        )

    def test_allocation_capped_by_demand(self):
        wl = phase_swap_workload()
        oracle = PhaseOracle(wl, scheme_by_name("equal"))
        alloc = oracle.allocation_at(0.0)
        assert np.all(alloc <= wl.true_apc_alone(0.0) + 1e-12)
