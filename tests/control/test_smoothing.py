"""Tests for repro.control.smoothing."""

import numpy as np
import pytest

from repro.control.smoothing import (
    EMASmoother,
    SlidingWindowSmoother,
    make_smoother,
)
from repro.util.errors import ConfigurationError

NAN = float("nan")


class TestEMA:
    def test_first_observation_seeds(self):
        s = EMASmoother(alpha=0.5)
        out = s.update(np.array([1.0, 2.0]))
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_exponential_update(self):
        s = EMASmoother(alpha=0.5)
        s.update(np.array([1.0]))
        out = s.update(np.array([3.0]))
        assert out[0] == pytest.approx(2.0)

    def test_alpha_one_passes_through(self):
        s = EMASmoother(alpha=1.0)
        s.update(np.array([1.0]))
        out = s.update(np.array([9.0]))
        assert out[0] == pytest.approx(9.0)

    def test_nan_observation_keeps_state(self):
        s = EMASmoother(alpha=0.5)
        s.update(np.array([2.0, 2.0]))
        out = s.update(np.array([4.0, NAN]))
        assert out[0] == pytest.approx(3.0)
        assert out[1] == pytest.approx(2.0)

    def test_nan_state_seeded_by_observation(self):
        s = EMASmoother(alpha=0.5)
        s.update(np.array([NAN, 2.0]))
        out = s.update(np.array([4.0, 4.0]))
        assert out[0] == pytest.approx(4.0)  # seeded, not averaged with NaN
        assert out[1] == pytest.approx(3.0)

    def test_reset_with_seed(self):
        s = EMASmoother(alpha=0.5)
        s.update(np.array([100.0]))
        s.reset(np.array([4.0]))
        out = s.update(np.array([2.0]))
        assert out[0] == pytest.approx(3.0)  # history gone

    def test_reset_without_seed(self):
        s = EMASmoother()
        s.update(np.array([1.0]))
        s.reset()
        assert s.value is None

    def test_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            EMASmoother(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EMASmoother(alpha=1.5)


class TestSlidingWindow:
    def test_mean_of_window(self):
        s = SlidingWindowSmoother(window=2)
        s.update(np.array([1.0]))
        out = s.update(np.array([3.0]))
        assert out[0] == pytest.approx(2.0)

    def test_finite_impulse_response(self):
        """An outlier leaves the estimate after exactly `window` epochs."""
        s = SlidingWindowSmoother(window=2)
        s.update(np.array([100.0]))
        s.update(np.array([2.0]))
        out = s.update(np.array([2.0]))
        assert out[0] == pytest.approx(2.0)

    def test_nanmean_skips_nan(self):
        s = SlidingWindowSmoother(window=3)
        s.update(np.array([2.0]))
        out = s.update(np.array([NAN]))
        assert out[0] == pytest.approx(2.0)

    def test_all_nan_column_stays_nan(self):
        s = SlidingWindowSmoother(window=2)
        out = s.update(np.array([NAN, 1.0]))
        assert np.isnan(out[0])
        assert out[1] == pytest.approx(1.0)

    def test_reset_with_seed(self):
        s = SlidingWindowSmoother(window=4)
        for v in (10.0, 20.0, 30.0):
            s.update(np.array([v]))
        s.reset(np.array([2.0]))
        out = s.update(np.array([4.0]))
        assert out[0] == pytest.approx(3.0)  # only seed + new obs

    def test_window_validated(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowSmoother(window=0)


class TestFactory:
    def test_ema(self):
        s = make_smoother("ema", alpha=0.3)
        assert isinstance(s, EMASmoother)
        assert s.alpha == pytest.approx(0.3)

    def test_window(self):
        s = make_smoother("window", window=8)
        assert isinstance(s, SlidingWindowSmoother)
        assert s.window == 8

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_smoother("kalman")
