"""Oracle-free controller health: fire rate, churn, regret proxy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control import ControllerHealth
from repro.util.errors import ConfigurationError


def test_fire_rate_counts_changed_epochs():
    h = ControllerHealth()
    for i in range(10):
        h.observe_epoch(changed=(i % 5 == 0), beta=(0.5, 0.5))
    assert h.epochs == 10
    assert h.changes == 2
    assert h.fire_rate == pytest.approx(0.2)


def test_skipped_resolve_counts_the_epoch_only():
    h = ControllerHealth()
    h.observe_epoch(changed=False, beta=None)  # warm-up epoch
    assert h.epochs == 1
    assert h.resolves == 0
    assert h.last_churn is None


def test_beta_churn_is_half_l1():
    h = ControllerHealth()
    h.observe_epoch(changed=True, beta=(0.6, 0.4))
    assert h.last_churn is None  # needs two re-solves
    h.observe_epoch(changed=True, beta=(0.5, 0.5))
    assert h.last_churn == pytest.approx(0.1)
    h.observe_epoch(changed=False, beta=(0.5, 0.5))
    assert h.last_churn == pytest.approx(0.0)


def test_churn_skipped_on_shape_change():
    h = ControllerHealth()
    h.observe_epoch(changed=True, beta=(0.6, 0.4))
    h.observe_epoch(changed=True, beta=(0.4, 0.3, 0.3))
    assert h.last_churn is None


def test_regret_proxy_prices_the_previous_shares():
    h = ControllerHealth()
    # app demands 0.8 APC each at bandwidth 1.0; the old split starves
    # app 1 to 0.1 of the bus
    h.observe_epoch(
        changed=True, beta=(0.9, 0.1), estimate=(0.8, 0.8), bandwidth=1.0
    )
    h.observe_epoch(
        changed=True, beta=(0.5, 0.5), estimate=(0.8, 0.8), bandwidth=1.0
    )
    # achievable(new)=min(.8,.5)*2=1.0, achievable(old)=.8+.1=0.9
    assert h.snapshot()["regret_proxy"]["last"] == pytest.approx(0.1)


def test_regret_zero_when_shares_do_not_move():
    h = ControllerHealth()
    for _ in range(3):
        h.observe_epoch(
            changed=False, beta=(0.5, 0.5), estimate=(0.8, 0.8), bandwidth=1.0
        )
    assert h.snapshot()["regret_proxy"]["max"] == 0.0


def test_regret_guarded_against_nan_estimates():
    h = ControllerHealth()
    h.observe_epoch(
        changed=True, beta=(0.6, 0.4), estimate=(np.nan, 0.5), bandwidth=1.0
    )
    h.observe_epoch(
        changed=True, beta=(0.5, 0.5), estimate=(np.nan, 0.5), bandwidth=1.0
    )
    assert h.snapshot()["regret_proxy"] == {"last": 0.0, "mean": 0.0, "max": 0.0}


def test_resolve_latency_is_caller_supplied():
    h = ControllerHealth()
    h.observe_epoch(changed=False, beta=(0.5, 0.5), resolve_ms=2.0)
    h.observe_epoch(changed=False, beta=(0.5, 0.5), resolve_ms=6.0)
    stats = h.snapshot()["resolve_ms"]
    assert stats == {"last": 6.0, "mean": 4.0, "max": 6.0}


def test_degenerate_rate():
    h = ControllerHealth()
    h.observe_epoch(changed=False, degenerate=True, beta=None)
    h.observe_epoch(changed=False, beta=(1.0,))
    assert h.degenerate_rate == pytest.approx(0.5)


def test_window_bounds_the_series():
    h = ControllerHealth(window=4)
    for i in range(50):
        h.observe_epoch(changed=False, beta=(0.5, 0.5), resolve_ms=float(i))
    assert h.snapshot()["resolve_ms"]["mean"] == pytest.approx(47.5)


def test_window_validation():
    with pytest.raises(ConfigurationError):
        ControllerHealth(window=0)


class TestAggregate:
    def test_empty_fleet_is_all_zeros(self):
        agg = ControllerHealth.aggregate([])
        assert agg["sessions"] == 0
        assert agg["fire_rate"] == 0.0

    def test_fleet_view_sums_and_maxes(self):
        a, b = ControllerHealth(), ControllerHealth()
        a.observe_epoch(changed=True, beta=(0.6, 0.4), resolve_ms=1.0)
        a.observe_epoch(changed=True, beta=(0.5, 0.5), resolve_ms=3.0)
        b.observe_epoch(changed=False, beta=(0.5, 0.5), resolve_ms=9.0)
        b.observe_epoch(changed=False, beta=(0.5, 0.5), resolve_ms=1.0)
        agg = ControllerHealth.aggregate([a.snapshot(), b.snapshot()])
        assert agg["sessions"] == 2
        assert agg["epochs"] == 4
        assert agg["changes"] == 2
        assert agg["fire_rate"] == pytest.approx(0.5)
        assert agg["resolve_ms_max"] == 9.0
        assert agg["beta_churn_mean"] == pytest.approx((0.1 + 0.0) / 2)


def test_controller_wires_health_by_default():
    from repro.control import EpochController
    from repro.core.partitioning import scheme_by_name
    from repro.sim.mc.stf import StartTimeFairScheduler
    from repro.sim.profiler import OnlineProfiler

    def profiler_with(estimates):
        p = OnlineProfiler(len(estimates), peak_apc=0.01)
        p.estimates = np.array(estimates, dtype=float)
        return p

    ctl = EpochController(
        scheme_by_name("prop"), [0.02, 0.02], bandwidth=0.01,
        epoch_cycles=100.0,
    )
    sched = StartTimeFairScheduler(2, np.array([0.5, 0.5]))
    ctl(100.0, profiler_with([0.003, 0.001]), sched)
    ctl(200.0, profiler_with([0.001, 0.003]), sched)
    assert ctl.health.epochs == 2
    assert ctl.health.resolves == 2
    assert ctl.health.last_churn == pytest.approx(0.5)  # 0.75/0.25 swapped
