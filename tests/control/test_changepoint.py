"""Tests for change-point detection and the ProfileTracker."""

import numpy as np
import pytest

from repro.control.changepoint import RelativeShiftDetector
from repro.control.smoothing import EMASmoother
from repro.control.tracker import ProfileTracker
from repro.util.errors import ConfigurationError

NAN = float("nan")


class TestRelativeShiftDetector:
    def test_no_baseline_no_change(self):
        d = RelativeShiftDetector(0.5)
        assert not d.observe(np.array([1.0]), None)

    def test_small_shift_ignored(self):
        d = RelativeShiftDetector(0.5)
        assert not d.observe(np.array([1.2]), np.array([1.0]))

    def test_large_shift_detected(self):
        d = RelativeShiftDetector(0.5)
        assert d.observe(np.array([2.0]), np.array([1.0]))

    def test_any_app_triggers(self):
        d = RelativeShiftDetector(0.5)
        assert d.observe(np.array([1.0, 5.0]), np.array([1.0, 1.0]))

    def test_confirm_two_needs_consecutive(self):
        d = RelativeShiftDetector(0.5, confirm=2)
        base = np.array([1.0])
        assert not d.observe(np.array([5.0]), base)  # first shifted epoch
        assert d.observe(np.array([5.0]), base)  # confirmed

    def test_confirm_streak_broken_by_quiet_epoch(self):
        d = RelativeShiftDetector(0.5, confirm=2)
        base = np.array([1.0])
        assert not d.observe(np.array([5.0]), base)
        assert not d.observe(np.array([1.0]), base)  # streak reset
        assert not d.observe(np.array([5.0]), base)

    def test_nan_pairs_ignored(self):
        d = RelativeShiftDetector(0.5)
        assert not d.observe(np.array([NAN, 1.1]), np.array([1.0, 1.0]))

    def test_tiny_baseline_ignored(self):
        d = RelativeShiftDetector(0.5)
        assert not d.observe(np.array([1.0]), np.array([1e-15]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RelativeShiftDetector(0.0)
        with pytest.raises(ConfigurationError):
            RelativeShiftDetector(0.5, confirm=0)


class TestProfileTracker:
    def test_smooths_between_changes(self):
        t = ProfileTracker(1, smoother=EMASmoother(alpha=0.5))
        t.update(np.array([1.0]))
        out = t.update(np.array([1.2]))
        assert out.estimate[0] == pytest.approx(1.1)
        assert not out.changed

    def test_change_reseeds_from_raw(self):
        t = ProfileTracker(1, smoother=EMASmoother(alpha=0.5))
        for _ in range(4):
            t.update(np.array([1.0]))
        out = t.update(np.array([4.0]))
        assert out.changed
        # the post-change estimate IS the new observation -- no
        # averaging against pre-change history
        assert out.estimate[0] == pytest.approx(4.0)
        assert t.n_changes == 1

    def test_change_keeps_old_value_for_unmeasured_app(self):
        t = ProfileTracker(2)
        t.update(np.array([1.0, 2.0]))
        out = t.update(np.array([4.0, NAN]))
        assert out.changed
        assert out.estimate[0] == pytest.approx(4.0)
        assert out.estimate[1] == pytest.approx(2.0)

    def test_reset(self):
        t = ProfileTracker(1)
        t.update(np.array([1.0]))
        t.reset()
        assert t.estimate is None
        assert t.n_updates == 0
        assert t.n_changes == 0

    def test_update_counter(self):
        t = ProfileTracker(1)
        for k in range(3):
            out = t.update(np.array([1.0]))
            assert out.n_updates == k + 1
