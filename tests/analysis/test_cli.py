"""CLI behaviour: exit codes, rule selection, output files."""

from __future__ import annotations

import json
import pathlib

from repro.analysis.cli import main

from tests.analysis.conftest import FIXTURES


def test_exit_1_on_findings(capsys) -> None:
    assert main([str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "[inv-conservation]" in out


def test_exit_0_on_clean_tree(tmp_path: pathlib.Path, capsys) -> None:
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0


def test_exit_2_on_missing_path(capsys) -> None:
    assert main(["definitely/not/a/path"]) == 2


def test_exit_2_on_unknown_rule(capsys) -> None:
    assert main(["--rule", "no-such-rule", str(FIXTURES)]) == 2


def test_rule_filter(capsys) -> None:
    assert main(["--rule", "exc-broad", "--format", "json", str(FIXTURES)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["counts"]["by_rule"]) == {"exc-broad"}


def test_list_rules(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "det-wallclock" in out
    assert "inv-conservation" in out


def test_output_file(tmp_path: pathlib.Path, capsys) -> None:
    report = tmp_path / "out" / "lint.json"
    code = main(["--format", "json", "--output", str(report), str(FIXTURES)])
    assert code == 1
    on_disk = json.loads(report.read_text())
    on_stdout = json.loads(capsys.readouterr().out)
    assert on_disk == on_stdout


def test_parse_error_is_reported_not_fatal(tmp_path: pathlib.Path, capsys) -> None:
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    assert main([str(tmp_path)]) == 1
    assert "[parse-error]" in capsys.readouterr().out
