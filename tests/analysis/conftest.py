"""Shared fixtures for the reprolint test-suite."""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import LintConfig, analyze_paths
from repro.analysis.engine import AnalysisResult

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "proj" / "src"
REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="session")
def fixture_result() -> AnalysisResult:
    """One engine run over the whole fixture tree, shared by the tests."""
    return analyze_paths([FIXTURES], LintConfig())


def rules_for(result: AnalysisResult, filename: str) -> list[str]:
    """Rule ids reported against ``filename`` (basename match), sorted
    by source position."""
    return [
        d.rule
        for d in result.diagnostics
        if pathlib.PurePath(d.path).name == filename
    ]
