"""Ratchet logic: counting, monotonic comparison, file round-trip."""

from __future__ import annotations

import json
import pathlib

from repro.analysis.ratchet import (
    DEFAULT_RATCHET_PATH,
    compare_counts,
    count_errors_by_package,
    load_ratchet,
    save_ratchet,
)

from tests.analysis.conftest import REPO_ROOT

CANNED = """\
src/repro/sim/dram.py:41: error: Incompatible types in assignment  [assignment]
src/repro/sim/dram.py:41: note: See documentation
src/repro/sim/engine.py:9:12: error: Missing return statement  [return]
src/repro/core/bandwidth.py:100: error: Unsupported operand  [operator]
src/repro/__main__.py:3: error: Module has no attribute  [attr-defined]
scripts/tool.py:1: error: Cannot find implementation  [import]
Found 5 errors in 5 files (checked 100 source files)
"""


def test_count_errors_by_package() -> None:
    counts = count_errors_by_package(CANNED)
    assert counts == {
        "<other>": 1,
        "repro": 1,
        "repro.core": 1,
        "repro.sim": 2,
    }


def test_notes_and_summary_lines_are_not_counted() -> None:
    assert count_errors_by_package("src/repro/core/x.py:1: note: hi") == {}
    assert count_errors_by_package("Found 3 errors in 2 files") == {}


def test_compare_counts_monotonic() -> None:
    ceilings = {"repro.sim": 2, "repro.core": 1}
    # equal and lower pass
    assert compare_counts({"repro.sim": 2, "repro.core": 0}, ceilings) == []
    # higher fails, naming the package
    problems = compare_counts({"repro.sim": 3}, ceilings)
    assert len(problems) == 1 and "repro.sim" in problems[0]
    # unknown packages default to a zero ceiling
    assert compare_counts({"repro.newpkg": 1}, ceilings) != []


def test_ratchet_roundtrip(tmp_path: pathlib.Path) -> None:
    path = tmp_path / "ratchet.json"
    save_ratchet(path, {"repro.sim": 5, "repro.core": 0})
    assert load_ratchet(path) == {"repro.sim": 5, "repro.core": 0}


def test_shipped_ratchet_file_is_wellformed() -> None:
    path = REPO_ROOT / DEFAULT_RATCHET_PATH
    assert path.is_file(), "analysis/mypy_ratchet.json must be committed"
    ceilings = load_ratchet(path)
    # every src/repro subpackage has a recorded ceiling
    packages = {
        f"repro.{p.name}"
        for p in (REPO_ROOT / "src" / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").is_file()
    }
    assert packages <= set(ceilings), sorted(packages - set(ceilings))
    assert all(v >= 0 for v in ceilings.values())
    # the strict ring carries the tightest ceilings in the file
    strict = {
        "repro.core",
        "repro.util",
        "repro.analysis",
        "repro.surrogate",
        "repro.control",
    }
    loosest_strict = max(ceilings[p] for p in strict)
    legacy = set(ceilings) - strict
    assert all(ceilings[p] >= loosest_strict for p in legacy) or not legacy


def test_shipped_ratchet_json_is_pretty() -> None:
    # the file is hand-merged in reviews; keep it deterministic
    path = REPO_ROOT / DEFAULT_RATCHET_PATH
    data = json.loads(path.read_text())
    assert list(data["ceilings"]) == sorted(data["ceilings"])
