"""Call-graph reachability: imports, aliases, helpers, dict dispatch."""

from __future__ import annotations

import ast
import pathlib

from repro.analysis.callgraph import build_module_graph, reaches
from repro.analysis.context import FileContext


def _ctx(tmp_path: pathlib.Path, subpath: str, source: str) -> FileContext:
    path = tmp_path / subpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return FileContext.parse(path)


def _solver(graph, module: str, name: str):
    for info in graph.functions(module):
        if info.name == name:
            return info
    raise AssertionError(f"{module}.{name} not found")


def test_direct_reference_reaches(tmp_path) -> None:
    ctx = _ctx(
        tmp_path,
        "repro/core/a.py",
        "def anchor(x):\n    return x\n\n\ndef solve(x):\n    return anchor(x)\n",
    )
    graph = build_module_graph([ctx])
    assert reaches(graph, _solver(graph, "repro.core.a", "solve"), "anchor")


def test_unreachable_is_rejected(tmp_path) -> None:
    ctx = _ctx(
        tmp_path,
        "repro/core/a.py",
        "def anchor(x):\n    return x\n\n\ndef solve(x):\n    return x\n",
    )
    graph = build_module_graph([ctx])
    assert not reaches(graph, _solver(graph, "repro.core.a", "solve"), "anchor")


def test_cross_module_import_chain(tmp_path) -> None:
    base = _ctx(
        tmp_path,
        "repro/core/base.py",
        "def anchor(x):\n    return x\n",
    )
    mid = _ctx(
        tmp_path,
        "repro/core/mid.py",
        "from repro.core.base import anchor\n\n\ndef helper(x):\n"
        "    return anchor(x)\n",
    )
    top = _ctx(
        tmp_path,
        "repro/core/top.py",
        "from repro.core.mid import helper\n\n\ndef solve(x):\n"
        "    return helper(x)\n",
    )
    graph = build_module_graph([base, mid, top])
    assert reaches(graph, _solver(graph, "repro.core.top", "solve"), "anchor")


def test_import_alias_anchors(tmp_path) -> None:
    base = _ctx(tmp_path, "repro/core/base.py", "def anchor(x):\n    return x\n")
    user = _ctx(
        tmp_path,
        "repro/core/user.py",
        "from repro.core.base import anchor as _check\n\n\ndef solve(x):\n"
        "    return _check(x)\n",
    )
    graph = build_module_graph([base, user])
    assert reaches(graph, _solver(graph, "repro.core.user", "solve"), "anchor")


def test_dict_dispatch_connects(tmp_path) -> None:
    ctx = _ctx(
        tmp_path,
        "repro/core/a.py",
        "def anchor(x):\n    return x\n\n\ndef kernel(x):\n"
        "    return anchor(x)\n\n\nKERNELS = {'k': kernel}\n\n\n"
        "def solve(kind, x):\n    return KERNELS[kind](x)\n",
    )
    graph = build_module_graph([ctx])
    assert reaches(graph, _solver(graph, "repro.core.a", "solve"), "anchor")


def test_method_fallback_by_attribute_name(tmp_path) -> None:
    impl = _ctx(
        tmp_path,
        "repro/core/impl.py",
        "def anchor(x):\n    return x\n\n\nclass Scheme:\n"
        "    def allocate(self, x):\n        return anchor(x)\n",
    )
    caller = _ctx(
        tmp_path,
        "repro/core/caller.py",
        "def solve(scheme, x):\n    return scheme.allocate(x)\n",
    )
    graph = build_module_graph([impl, caller])
    assert reaches(graph, _solver(graph, "repro.core.caller", "solve"), "anchor")


def test_local_function_import_resolves(tmp_path) -> None:
    base = _ctx(tmp_path, "repro/core/base.py", "def anchor(x):\n    return x\n")
    user = _ctx(
        tmp_path,
        "repro/core/user.py",
        "def solve(x):\n    from repro.core.base import anchor\n"
        "    return anchor(x)\n",
    )
    graph = build_module_graph([base, user])
    assert reaches(graph, _solver(graph, "repro.core.user", "solve"), "anchor")


def test_cycles_terminate(tmp_path) -> None:
    ctx = _ctx(
        tmp_path,
        "repro/core/a.py",
        "def f(x):\n    return g(x)\n\n\ndef g(x):\n    return f(x)\n",
    )
    graph = build_module_graph([ctx])
    assert not reaches(graph, _solver(graph, "repro.core.a", "f"), "anchor")


def test_binding_nodes_are_marked(tmp_path) -> None:
    ctx = _ctx(tmp_path, "repro/core/a.py", "TABLE = {'x': 1}\n")
    graph = build_module_graph([ctx])
    infos = list(graph.functions("repro.core.a"))
    assert len(infos) == 1 and infos[0].is_binding
    assert isinstance(infos[0].node, ast.Assign)
