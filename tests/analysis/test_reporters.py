"""Reporter formats: text rendering and the versioned JSON schema."""

from __future__ import annotations

import json

from repro.analysis.reporters import JSON_SCHEMA_VERSION, render_json, render_text


def test_text_report_lines(fixture_result) -> None:
    text = render_text(fixture_result)
    lines = text.splitlines()
    # every diagnostic renders as path:line:col: severity: message [rule]
    for line in lines[:-1]:
        assert ": error: " in line or ": warning: " in line
        assert line.rstrip().endswith("]")
    assert "error(s)" in lines[-1]
    assert "suppressed inline" in lines[-1]


def test_json_schema(fixture_result) -> None:
    payload = json.loads(render_json(fixture_result))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert set(payload) == {
        "version",
        "files_analyzed",
        "suppressed",
        "counts",
        "diagnostics",
    }
    counts = payload["counts"]
    assert set(counts) == {"error", "warning", "by_rule"}
    assert counts["error"] == fixture_result.errors
    assert counts["warning"] == fixture_result.warnings
    assert sum(counts["by_rule"].values()) == len(payload["diagnostics"])
    for diag in payload["diagnostics"]:
        assert set(diag) == {"rule", "severity", "path", "line", "col", "message"}
        assert diag["severity"] in ("error", "warning")
        assert diag["line"] >= 1
        assert diag["col"] >= 0
        assert diag["message"]


def test_json_is_sorted_and_stable(fixture_result) -> None:
    a = render_json(fixture_result)
    b = render_json(fixture_result)
    assert a == b
    diags = json.loads(a)["diagnostics"]
    keys = [(d["path"], d["line"], d["col"], d["rule"]) for d in diags]
    assert keys == sorted(keys)
