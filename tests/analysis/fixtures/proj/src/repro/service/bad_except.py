"""Fixture: swallowing broad exception handlers."""


def harvest(jobs):
    out = []
    for job in jobs:
        try:
            out.append(job())
        except Exception:
            continue
    try:
        return out
    except:  # noqa: E722
        return []
