"""Fixture: acceptable exception handling at boundaries."""


def harvest(jobs):
    out = []
    for job in jobs:
        try:
            out.append(job())
        except (ValueError, OSError):
            continue
    return out


def cleanup_and_raise(resource):
    try:
        return resource.use()
    except Exception:
        resource.close()
        raise


def deliver(future, solve):
    try:
        future.set_result(solve())
    except Exception as exc:
        future.set_exception(exc)
