"""Fixture: deterministic counterparts of bad_determinism."""

import numpy as np


def draw(seed: int):
    rng = np.random.default_rng(seed)
    return rng.random(4)


def stamp(now_cycles: int) -> int:
    return now_cycles
