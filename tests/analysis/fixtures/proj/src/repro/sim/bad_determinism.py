"""Fixture: every determinism violation reprolint knows about."""

import random
import time
from datetime import datetime

import numpy as np


def stamp():
    return time.time(), datetime.now()


def draw():
    np.random.seed(42)
    a = np.random.rand(4)
    b = random.random()
    rng = np.random.default_rng()
    return a, b, rng
