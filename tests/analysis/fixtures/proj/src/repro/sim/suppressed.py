"""Fixture: all three suppression forms."""
# reprolint: disable-file=det-unseeded-rng

import random
import time

import numpy as np


def stamp():
    return time.time()  # reprolint: disable=det-wallclock


def stamp_long():
    # reprolint: disable-next-line=det-wallclock
    return time.time_ns()


def draw():
    np.random.seed(0)
    return random.random()
