"""Fixture: hygienic counterparts of bad_ipc."""

from multiprocessing import shared_memory

from repro.util.cache import atomic_write_json


def export(block):
    shm = shared_memory.SharedMemory(create=True, size=len(block))
    try:
        shm.buf[: len(block)] = block
        return shm.name
    finally:
        shm.close()
        shm.unlink()


def record(path, value, extras=None):
    extras = [] if extras is None else extras
    extras.append(value)
    atomic_write_json(path, value)
