"""Fixture: hygienic counterparts of bad_seqlock."""

import struct
from multiprocessing import shared_memory


class SlotWriter:
    def __init__(self, shm):
        self._shm = shm

    def _write_version(self, offset, version):
        struct.pack_into("<Q", self._shm.buf, offset, version)

    def store(self, offset, payload, version):
        self._write_version(offset, version + 1)  # odd: write in progress
        self._shm.buf[offset + 8 : offset + 8 + len(payload)] = payload
        self._write_version(offset, version + 2)  # even: stable again


def blit(shm, block):
    # a one-shot init-time write, not a seqlock slot: no versioning
    shm.buf[: len(block)] = block


def attach(name):
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
        return shm
