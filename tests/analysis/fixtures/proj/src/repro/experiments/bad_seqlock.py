"""Fixture: shared-cache mmap lifecycle violations."""

import struct
from multiprocessing import shared_memory


class BadSlotWriter:
    def __init__(self, shm):
        self._shm = shm

    def _write_version(self, offset, version):
        struct.pack_into("<Q", self._shm.buf, offset, version)

    def store(self, offset, payload):
        # opens the seqlock (odd version) but never closes it: every
        # reader sees write-in-progress forever
        self._write_version(offset, 1)
        self._shm.buf[offset + 8 : offset + 8 + len(payload)] = payload


def attach(name):
    # adopted by this process's resource tracker: exiting unlinks the
    # segment out from under every sibling worker
    return shared_memory.SharedMemory(name=name)
