"""Fixture: IPC hygiene violations."""

import json
from multiprocessing import shared_memory


def export(block):
    shm = shared_memory.SharedMemory(create=True, size=len(block))
    shm.buf[: len(block)] = block
    return shm.name


def record(path, value, extras=[]):
    extras.append(value)
    with open(path, "w") as fh:
        json.dump(value, fh)
