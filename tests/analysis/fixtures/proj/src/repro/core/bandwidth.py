"""Fixture: the anchor function solvers must reach."""


def assert_conservation(alloc, total, capacity=None):
    return alloc
