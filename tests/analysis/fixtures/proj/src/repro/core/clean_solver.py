"""Fixture: solvers anchored directly, via helper, and via dispatch."""

from repro.core.bandwidth import assert_conservation


def direct_allocation(beta, total):
    return assert_conservation([b * total for b in beta], total)


def _inner(alloc, total):
    return assert_conservation(alloc, total)


def helper_allocation(beta, total):
    return _inner([b * total for b in beta], total)


_KERNELS = {"direct": direct_allocation}


def dispatch_allocate(kind, beta, total):
    return _KERNELS[kind](beta, total)
