"""Fixture: a solver with no path to the conservation anchor."""


def rogue_allocation(beta, total):
    return [b * total for b in beta]
