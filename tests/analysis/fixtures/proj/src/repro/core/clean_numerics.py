"""Fixture: guarded counterparts of bad_numerics."""

import numpy as np


def share(beta, demand):
    total = float(demand.sum())
    if total <= 0:
        raise ValueError("demand must sum to a positive value")
    direct = demand / total
    if np.isclose(direct[0], 0.3):
        return beta / total
    return direct
