"""Fixture: numerical-safety violations."""

import numpy as np


def share(beta, demand):
    with np.errstate(divide="ignore", invalid="ignore"):
        direct = demand / demand.sum()
    total = demand.sum()
    unguarded = beta / total
    if direct[0] == 0.3:
        return unguarded
    return direct
