"""Config loading: severity/path overrides, rule options, degradation."""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import LintConfig, Severity, analyze_paths, load_config
from repro.analysis.config import RuleConfig, find_pyproject


def _toml_available() -> bool:
    try:
        import tomllib  # noqa: F401
    except ImportError:
        try:
            import tomli  # noqa: F401
        except ImportError:
            return False
    return True


needs_toml = pytest.mark.skipif(
    not _toml_available(), reason="no tomllib/tomli in this environment"
)


def test_defaults_without_pyproject() -> None:
    config = load_config(None)
    assert config.source is None
    assert config.rule("det-wallclock").enabled
    assert config.rule("det-wallclock").severity is None  # rule default


@needs_toml
def test_severity_and_paths_override(tmp_path: pathlib.Path) -> None:
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        "[tool.reprolint]\n"
        'exclude = ["vendored"]\n'
        '[tool.reprolint.rules."det-wallclock"]\n'
        'severity = "warning"\n'
        'paths = ["repro/experiments"]\n'
        '[tool.reprolint.rules."exc-broad"]\n'
        "enabled = false\n"
    )
    config = load_config(pyproject)
    assert config.source == pyproject
    assert "vendored" in config.excluded_dirs()
    rule = config.rule("det-wallclock")
    assert rule.severity is Severity.WARNING
    assert rule.paths == ("repro/experiments",)
    assert not config.rule("exc-broad").enabled


@needs_toml
def test_rule_options_pass_through(tmp_path: pathlib.Path) -> None:
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        '[tool.reprolint.rules."inv-conservation"]\n'
        'solver-pattern = "xyz"\n'
        'anchor = "my_check"\n'
    )
    config = load_config(pyproject)
    options = config.rule("inv-conservation").options
    assert options == {"solver-pattern": "xyz", "anchor": "my_check"}


@needs_toml
def test_severity_override_applies_to_findings(tmp_path: pathlib.Path) -> None:
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        '[tool.reprolint.rules."det-wallclock"]\nseverity = "warning"\n'
    )
    bad = tmp_path / "repro" / "sim" / "t.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    result = analyze_paths([tmp_path], load_config(pyproject))
    assert result.errors == 0
    assert result.warnings == 1


def test_disabled_rule_emits_nothing(tmp_path: pathlib.Path) -> None:
    bad = tmp_path / "repro" / "sim" / "t.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    config = LintConfig(rules={"det-wallclock": RuleConfig(enabled=False)})
    result = analyze_paths([tmp_path], config)
    assert [d.rule for d in result.diagnostics] == []


def test_find_pyproject_walks_up(tmp_path: pathlib.Path) -> None:
    (tmp_path / "pyproject.toml").write_text("[tool.reprolint]\n")
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert find_pyproject(nested) == tmp_path / "pyproject.toml"
    # nothing above an isolated root-less dir
    assert find_pyproject(pathlib.Path("/nonexistent-xyz")) is None
