"""The shipped tree must satisfy its own lint gate.

This is the acceptance criterion of the analysis subsystem: every rule
holds on ``src/`` as committed (with its handful of justified inline
suppressions), so CI can run ``repro-lint src`` as a hard gate.
"""

from __future__ import annotations

from repro.analysis import analyze_paths, load_config
from repro.analysis.config import find_pyproject

from tests.analysis.conftest import REPO_ROOT


def test_repro_lint_src_is_clean() -> None:
    src = REPO_ROOT / "src"
    assert src.is_dir()
    config = load_config(find_pyproject(src))
    result = analyze_paths([src], config)
    findings = "\n".join(d.render() for d in result.diagnostics)
    assert result.errors == 0, f"repro-lint src found errors:\n{findings}"
    assert result.warnings == 0, f"repro-lint src found warnings:\n{findings}"
    # the gate actually looked at the tree
    assert result.files_analyzed > 50


def test_every_shipped_suppression_is_justified() -> None:
    """Inline suppressions in src/ must carry an explanatory comment
    nearby (same line, or an adjacent comment line).

    Real suppressions are located with :mod:`tokenize` so docstring
    examples (e.g. in repro.analysis itself) are not mistaken for them.
    """
    import io
    import re
    import tokenize

    marker = re.compile(r"reprolint:\s*disable")
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT or not marker.search(tok.string):
                continue
            i = tok.start[0] - 1
            window = lines[max(0, i - 2) : i + 3]
            # a justification means comment prose beyond the marker
            # itself somewhere in the surrounding window
            prose = [
                w
                for w in window
                if "#" in w and "reprolint" not in w.split("#", 1)[1]
            ]
            assert prose, (
                f"{path}:{i + 1}: suppression without a nearby "
                f"justification comment"
            )
