"""Suppression-comment semantics: same-line, next-line, file-level."""

from __future__ import annotations

import pathlib

from repro.analysis import LintConfig, analyze_paths
from repro.analysis.suppressions import scan_suppressions

from tests.analysis.conftest import rules_for


def test_scan_same_line() -> None:
    supp = scan_suppressions("x = 1  # reprolint: disable=rule-a,rule-b\n")
    assert supp.is_suppressed("rule-a", 1)
    assert supp.is_suppressed("rule-b", 1)
    assert not supp.is_suppressed("rule-c", 1)
    assert not supp.is_suppressed("rule-a", 2)


def test_scan_next_line() -> None:
    supp = scan_suppressions("# reprolint: disable-next-line=rule-a\nx = 1\n")
    assert supp.is_suppressed("rule-a", 2)
    assert not supp.is_suppressed("rule-a", 1)


def test_scan_file_level_window() -> None:
    head = "# reprolint: disable-file=rule-a\n" + "x = 1\n" * 20
    supp = scan_suppressions(head)
    assert supp.is_suppressed("rule-a", 15)

    late = "x = 1\n" * 15 + "# reprolint: disable-file=rule-a\n"
    supp = scan_suppressions(late)
    assert not supp.is_suppressed("rule-a", 3)


def test_disable_all() -> None:
    supp = scan_suppressions("x = 1  # reprolint: disable=all\n")
    assert supp.is_suppressed("anything", 1)


def test_marker_inside_string_is_not_a_suppression() -> None:
    supp = scan_suppressions('msg = "# reprolint: disable=rule-a"\n')
    assert not supp.is_suppressed("rule-a", 1)


def test_fixture_suppressions_all_honoured(fixture_result) -> None:
    # suppressed.py violates det-wallclock twice and det-unseeded-rng
    # twice, every one silenced by a different suppression form
    assert rules_for(fixture_result, "suppressed.py") == []
    assert fixture_result.suppressed >= 4


def test_suppressed_findings_are_counted(tmp_path: pathlib.Path) -> None:
    bad = tmp_path / "repro" / "sim" / "t.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import time\n\n\ndef f():\n"
        "    return time.time()  # reprolint: disable=det-wallclock\n"
    )
    result = analyze_paths([tmp_path], LintConfig())
    assert result.diagnostics == []
    assert result.suppressed == 1
