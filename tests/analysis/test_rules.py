"""Golden-fixture tests: each rule fires on its bad file, stays silent
on the clean counterpart.

The fixture tree under ``fixtures/proj/src/repro/`` mirrors the real
package layout so the rules' default path scoping applies exactly as it
does on the shipped tree.
"""

from __future__ import annotations

import pathlib

from repro.analysis import LintConfig, Severity, all_rules, analyze_paths

from tests.analysis.conftest import FIXTURES, rules_for


def test_fixture_tree_exists() -> None:
    assert (FIXTURES / "repro" / "core" / "bad_solver.py").is_file()


def test_all_errors_no_warnings_by_default(fixture_result) -> None:
    assert fixture_result.errors > 0
    assert fixture_result.warnings == 0
    assert all(d.severity is Severity.ERROR for d in fixture_result.diagnostics)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_wallclock_rule_fires(fixture_result) -> None:
    rules = rules_for(fixture_result, "bad_determinism.py")
    assert rules.count("det-wallclock") == 2  # time.time + datetime.now


def test_unseeded_rng_rule_fires(fixture_result) -> None:
    rules = rules_for(fixture_result, "bad_determinism.py")
    # np.random.seed, np.random.rand, random.random, bare default_rng()
    assert rules.count("det-unseeded-rng") == 4


def test_clean_determinism_is_silent(fixture_result) -> None:
    assert rules_for(fixture_result, "clean_determinism.py") == []


# ----------------------------------------------------------------------
# numerics
# ----------------------------------------------------------------------
def test_numerics_rules_fire(fixture_result) -> None:
    rules = rules_for(fixture_result, "bad_numerics.py")
    assert rules.count("num-errstate-ignore") == 1
    assert rules.count("num-float-eq") == 1
    assert rules.count("num-unguarded-div") == 2  # direct + via name


def test_clean_numerics_is_silent(fixture_result) -> None:
    assert rules_for(fixture_result, "clean_numerics.py") == []


# ----------------------------------------------------------------------
# IPC
# ----------------------------------------------------------------------
def test_ipc_rules_fire(fixture_result) -> None:
    rules = rules_for(fixture_result, "bad_ipc.py")
    assert rules.count("ipc-shm-unlink") == 1
    assert rules.count("ipc-mutable-default") == 1
    assert rules.count("ipc-atomic-write") == 1


def test_clean_ipc_is_silent(fixture_result) -> None:
    assert rules_for(fixture_result, "clean_ipc.py") == []


def test_seqlock_rule_fires(fixture_result) -> None:
    rules = rules_for(fixture_result, "bad_seqlock.py")
    # one torn write bracket + one tracker-adopted attach
    assert rules.count("ipc-seqlock") == 2


def test_clean_seqlock_is_silent(fixture_result) -> None:
    assert rules_for(fixture_result, "clean_seqlock.py") == []


# ----------------------------------------------------------------------
# exceptions
# ----------------------------------------------------------------------
def test_broad_except_rule_fires(fixture_result) -> None:
    rules = rules_for(fixture_result, "bad_except.py")
    assert rules.count("exc-broad") == 2  # except Exception + bare except


def test_clean_except_is_silent(fixture_result) -> None:
    # narrow catch, cleanup-and-raise, and future.set_exception transfer
    # are all acceptable
    assert rules_for(fixture_result, "clean_except.py") == []


# ----------------------------------------------------------------------
# invariants (call-graph)
# ----------------------------------------------------------------------
def test_unanchored_solver_is_flagged(fixture_result) -> None:
    rules = rules_for(fixture_result, "bad_solver.py")
    assert rules == ["inv-conservation"]


def test_anchored_solvers_pass(fixture_result) -> None:
    # direct call, helper indirection, and dict dispatch all anchor
    assert rules_for(fixture_result, "clean_solver.py") == []


# ----------------------------------------------------------------------
# scoping
# ----------------------------------------------------------------------
def test_scoped_rules_skip_out_of_scope_files(tmp_path: pathlib.Path) -> None:
    # the same wall-clock read outside repro/sim + repro/core is ignored
    out_of_scope = tmp_path / "repro" / "obs" / "timer.py"
    out_of_scope.parent.mkdir(parents=True)
    out_of_scope.write_text("import time\n\n\ndef now():\n    return time.time()\n")
    result = analyze_paths([tmp_path], LintConfig())
    assert [d.rule for d in result.diagnostics] == []


def test_rule_catalogue_is_complete() -> None:
    expected = {
        "det-wallclock",
        "det-unseeded-rng",
        "num-float-eq",
        "num-unguarded-div",
        "num-errstate-ignore",
        "ipc-shm-unlink",
        "ipc-atomic-write",
        "ipc-mutable-default",
        "ipc-seqlock",
        "inv-conservation",
        "exc-broad",
    }
    assert expected <= set(all_rules())
    for rule_id, rule_cls in all_rules().items():
        assert rule_cls.id == rule_id
        assert rule_cls.description, f"{rule_id} has no description"
