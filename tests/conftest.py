"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AppProfile, Workload


@pytest.fixture(autouse=True)
def _isolated_profile_cache(tmp_path, monkeypatch):
    """Point the persistent profiling cache (repro.util.cache) at a
    per-test directory so tests never read or pollute the user's real
    cache (and never see entries from a previous test run)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "profile-cache"))


@pytest.fixture
def hetero_workload() -> Workload:
    """A 4-app heterogeneous workload (mirrors the paper's hetero-5:
    libquantum-milc-gromacs-gobmk, Table III values)."""
    return Workload.of(
        "hetero-5",
        [
            AppProfile("libquantum", api=0.0341188, apc_alone=0.00691693),
            AppProfile("milc", api=0.0422216, apc_alone=0.00687143),
            AppProfile("gromacs", api=0.0051976, apc_alone=0.00336604),
            AppProfile("gobmk", api=0.0040668, apc_alone=0.00191485),
        ],
    )


@pytest.fixture
def homo_workload() -> Workload:
    """A 4-app homogeneous workload (paper homo-1 style)."""
    return Workload.of(
        "homo-1",
        [
            AppProfile("libquantum", api=0.0341188, apc_alone=0.00691693),
            AppProfile("milc", api=0.0422216, apc_alone=0.00687143),
            AppProfile("soplex", api=0.0378789, apc_alone=0.00605614),
            AppProfile("hmmer", api=0.0046008, apc_alone=0.00529083),
        ],
    )


@pytest.fixture
def total_bandwidth() -> float:
    """DDR2-400 peak in APC at 64 B lines / 5 GHz: 3.2 GB/s = 0.01 APC."""
    return 0.01


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20130527)  # IPDPS'13 conference date
