"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments without the
``wheel`` package (pip then uses ``setup.py develop`` instead of building
a PEP-517 editable wheel).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
