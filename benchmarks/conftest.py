"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's exhibits
(Figures 1-4, Tables III-IV) end-to-end on the simulator, times the run
with pytest-benchmark, writes the rendered paper-style rows to
``benchmarks/out/`` and asserts the exhibit's shape criteria.

Windows are reduced relative to the CLI defaults (which mimic the
paper's 10M-cycle methodology) so the full harness completes in a few
minutes; the CLI (``python -m repro.experiments all``) regenerates the
same exhibits at full fidelity.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.runner import Runner
from repro.sim.engine import SimConfig

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session", autouse=True)
def _isolated_profile_cache(tmp_path_factory):
    """Divert the persistent profiling cache to a session-temporary
    directory: benchmark timings must not depend on whatever a previous
    run left in the user's cache."""
    prev = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("profile-cache"))
    yield
    if prev is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = prev


def bench_config(dram=None, seed: int = 7) -> SimConfig:
    kwargs = {"dram": dram} if dram is not None else {}
    return SimConfig(
        warmup_cycles=100_000.0, measure_cycles=400_000.0, seed=seed, **kwargs
    )


@pytest.fixture(scope="session")
def bench_runner() -> Runner:
    return Runner(bench_config())


@pytest.fixture(scope="session")
def save_exhibit():
    """Write an exhibit's rendered text under benchmarks/out/."""

    def _save(name: str, text: str) -> pathlib.Path:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
