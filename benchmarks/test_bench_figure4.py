"""Regenerate Figure 4 (scalability: 3.2/6.4/12.8 GB/s x 4/8/16 cores).

The heaviest exhibit: 7 hetero mixes x 5 schemes at three scale points,
with 16-core simulations at the top end.
"""

from conftest import bench_config

from repro.experiments import figure4
from repro.experiments.runner import Runner


def test_bench_figure4(benchmark, save_exhibit):
    def factory(dram):
        return Runner(bench_config(dram))

    result = benchmark.pedantic(
        figure4.run, args=(factory,), rounds=1, iterations=1
    )
    save_exhibit("figure4", figure4.render(result))

    labels = [p[0] for p in figure4.SCALE_POINTS]
    for metric in ("hsp", "minf", "wsp", "ipcsum"):
        series = [result.gains[label][metric] for label in labels]
        # paper Sec. VI-C: gains over Equal grow with bandwidth
        assert series[-1] > series[0], (metric, series)
        # and the optimal scheme never loses to Equal by more than noise
        assert min(series) > 0.95, (metric, series)
