"""Regenerate Figure 1 (motivation: 4 metrics x 5 schemes, hetero-5)."""

from repro.experiments import figure1


def test_bench_figure1(benchmark, bench_runner, save_exhibit):
    result = benchmark.pedantic(
        figure1.run, args=(bench_runner,), rounds=1, iterations=1
    )
    text = figure1.render(result)
    save_exhibit("figure1", text)

    # paper shape: each derived-optimal scheme wins its metric
    assert result.best_scheme("hsp") == "sqrt"
    assert result.best_scheme("minf") == "prop"
    assert result.best_scheme("wsp") in ("prio_apc", "prio_api")
    assert result.best_scheme("ipcsum") in ("prio_api", "prio_apc")
