"""Compare a pytest-benchmark JSON run against a committed baseline.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]

Exits non-zero when any benchmark's mean runtime regressed by more than
the threshold (default 25%) relative to the baseline, or when a
baseline benchmark is missing from the current run.  Speedups and
in-tolerance drift are reported but never fail.

The committed baseline (``benchmarks/bench_baseline.json``) is distinct
from ``benchmarks/baseline.json``, which pins *exhibit numbers* for the
result-regression gate -- this file gates *runtime* only.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict[str, float]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return {b["name"]: float(b["stats"]["mean"]) for b in data["benchmarks"]}


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
) -> list[str]:
    """Human-readable report lines; regressions are prefixed FAIL."""
    lines = []
    for name in sorted(baseline):
        base = baseline[name]
        if name not in current:
            lines.append(f"FAIL {name}: missing from current run")
            continue
        cur = current[name]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > 1.0 + threshold else "  ok"
        lines.append(
            f"{verdict} {name}: {base * 1e3:.1f} ms -> {cur * 1e3:.1f} ms "
            f"({ratio:.2f}x of baseline)"
        )
    for name in sorted(set(current) - set(baseline)):
        lines.append(f" new {name}: {current[name] * 1e3:.1f} ms (no baseline)")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional mean-runtime regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    lines = compare(
        load_means(args.baseline), load_means(args.current), args.threshold
    )
    print("\n".join(lines))
    failed = [ln for ln in lines if ln.startswith("FAIL")]
    if failed:
        print(f"\n{len(failed)} benchmark(s) regressed beyond "
              f"{args.threshold * 100:.0f}%")
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
