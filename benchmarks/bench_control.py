#!/usr/bin/env python
"""Benchmark + gate for the closed-loop re-partitioning controller.

Three sections, one JSON artifact (``BENCH_control.json`` at the repo
top level, or ``$BENCH_OUT_DIR``):

1. **Epoch re-solve latency** -- wall-clock cost of one controller
   decision (smooth + change-detect + re-solve beta + push shares),
   measured against stub profiler/scheduler objects so only the
   controller is on the clock.  Gate: mean <= 5 ms, i.e. vanishing
   next to the 100k-cycle epochs it controls.
2. **Convergence** -- the adaptive controller (change-point triggered
   fast windows) against a CBP-style fixed-epoch baseline (detection
   off, plain EMA, constant window) on the phase-swap scenario.  Gate:
   the adaptive loop re-converges within 3 epoch decisions of the swap
   and is no slower than the fixed baseline.
3. **Regret** -- time-weighted gap to the phase oracle on each of
   Hsp / Wsp / MinF.  Gate: <= 5% per metric for the adaptive loop.

Run::

    PYTHONPATH=src python benchmarks/bench_control.py
    PYTHONPATH=src python benchmarks/bench_control.py --quick --iters 500
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np  # noqa: E402

from repro.control import (  # noqa: E402
    EMASmoother,
    EpochController,
    ProfileTracker,
    RelativeShiftDetector,
    evaluate_controller,
)
from repro.core.partitioning import scheme_by_name  # noqa: E402
from repro.workloads.nonstationary import scenario  # noqa: E402

MAX_RESOLVE_MS = 5.0
MAX_CONVERGENCE_EPOCHS = 3
MAX_REGRET = 0.05
METRICS = ("hsp", "wsp", "minf")
SEED = 3


class _StubProfiler:
    """Just the ``estimates`` surface the controller reads."""

    def __init__(self, estimates: np.ndarray) -> None:
        self.estimates = estimates


class _StubScheduler:
    def __init__(self) -> None:
        self.updates = 0

    def update_shares(self, beta: np.ndarray) -> None:
        self.updates += 1


def bench_resolve_latency(iters: int, n_apps: int) -> dict:
    """Mean per-decision controller latency over ``iters`` epochs."""
    scheme = scheme_by_name("prop")
    epoch = 100_000.0
    controller = EpochController(
        scheme,
        np.full(n_apps, 0.02),
        bandwidth=0.01,
        epoch_cycles=epoch,
    )
    rng = np.random.default_rng(7)
    base = rng.uniform(1e-3, 6e-3, size=n_apps)
    scheduler = _StubScheduler()
    # pre-draw the noisy estimates so the rng is off the clock
    series = base * rng.uniform(0.95, 1.05, size=(iters, n_apps))

    controller(epoch, _StubProfiler(series[0]), scheduler)  # warm-up
    t0 = time.perf_counter()
    for i in range(1, iters):
        controller((i + 1) * epoch, _StubProfiler(series[i]), scheduler)
    resolve_ms = (time.perf_counter() - t0) * 1000.0 / (iters - 1)

    print(
        f"epoch re-solve ({n_apps} apps): {resolve_ms * 1000.0:.1f} us/decision "
        f"({scheduler.updates} share pushes)"
    )
    return {"resolve_ms": resolve_ms, "iters": iters, "n_apps": n_apps}


def _fixed_epoch_controller(workload, scheme, epoch: float) -> EpochController:
    """CBP-style baseline: constant window, no change detection."""
    tracker = ProfileTracker(
        workload.n,
        smoother=EMASmoother(alpha=0.3),
        detector=RelativeShiftDetector(threshold=1e9),
    )
    return EpochController(
        scheme,
        workload.true_api(0.0),
        bandwidth=workload.peak_apc,
        epoch_cycles=epoch,
        fast_epoch_cycles=epoch,
        tracker=tracker,
        names=workload.names,
    )


def bench_tracking(quick: bool) -> dict:
    """Adaptive vs fixed-epoch loop on the phase-swap scenario."""
    horizon = 600_000.0 if quick else 1_200_000.0
    epoch = 100_000.0
    scheme = scheme_by_name("prop")

    def run(controller):
        workload = scenario(
            "phase-swap",
            seed=SEED,
            horizon_cycles=horizon,
            swap_cycle=horizon / 2.0,
        )
        return evaluate_controller(
            workload,
            scheme,
            epoch_cycles=epoch,
            controller=controller,
            seed=SEED,
            metrics=METRICS,
        )

    t0 = time.perf_counter()
    adaptive = run(None)
    adaptive_s = time.perf_counter() - t0
    workload = scenario(
        "phase-swap", seed=SEED, horizon_cycles=horizon,
        swap_cycle=horizon / 2.0,
    )
    fixed = run(_fixed_epoch_controller(workload, scheme, epoch))

    def lag_str(lag):
        return "never" if lag is None else f"{lag} epochs"

    print(
        f"phase-swap convergence: adaptive {lag_str(adaptive.max_lag)} "
        f"vs fixed-epoch {lag_str(fixed.max_lag)} "
        f"(closed loop sim: {adaptive_s:.1f}s)"
    )
    for m in METRICS:
        print(
            f"  regret[{m}]: adaptive {adaptive.regret[m] * 100:+.2f}% "
            f"vs fixed {fixed.regret[m] * 100:+.2f}%"
        )
    return {
        "horizon_cycles": horizon,
        "epoch_cycles": epoch,
        "seed": SEED,
        "adaptive": {
            "max_lag": adaptive.max_lag,
            "regret": adaptive.regret,
            "tracking_error": adaptive.tracking_error,
            "n_decisions": len(adaptive.decisions),
            "wall_seconds": adaptive_s,
        },
        "fixed_epoch": {
            "max_lag": fixed.max_lag,
            "regret": fixed.regret,
            "tracking_error": fixed.tracking_error,
            "n_decisions": len(fixed.decisions),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iters", type=int, default=2000, help="latency epochs")
    parser.add_argument("--apps", type=int, default=4, help="apps per workload")
    parser.add_argument(
        "--quick", action="store_true", help="halve the tracking horizon"
    )
    parser.add_argument("--out", default=None, help="artifact path override")
    args = parser.parse_args(argv)

    latency = bench_resolve_latency(args.iters, args.apps)
    tracking = bench_tracking(args.quick)

    adaptive = tracking["adaptive"]
    fixed = tracking["fixed_epoch"]
    adaptive_lag = adaptive["max_lag"]
    fixed_lag = fixed["max_lag"]
    record = {
        "bench": "control",
        "latency": latency,
        "tracking": tracking,
        "gates": {
            "resolve_ms_ceiling": MAX_RESOLVE_MS,
            "resolve_pass": latency["resolve_ms"] <= MAX_RESOLVE_MS,
            "convergence_ceiling_epochs": MAX_CONVERGENCE_EPOCHS,
            "convergence_pass": (
                adaptive_lag is not None
                and adaptive_lag <= MAX_CONVERGENCE_EPOCHS
            ),
            "adaptive_not_slower_pass": (
                fixed_lag is None
                or (adaptive_lag is not None and adaptive_lag <= fixed_lag)
            ),
            "regret_ceiling": MAX_REGRET,
            "regret_pass": all(
                v <= MAX_REGRET for v in adaptive["regret"].values()
            ),
        },
    }
    if args.out:
        out = pathlib.Path(args.out)
    else:
        out_dir = os.environ.get("BENCH_OUT_DIR")
        base = (
            pathlib.Path(out_dir)
            if out_dir
            else pathlib.Path(__file__).resolve().parent.parent
        )
        out = base / "BENCH_control.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"[wrote {out}]")

    failed = [k for k, v in record["gates"].items() if v is False]
    if failed:
        print(f"FAIL: gates missed: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
