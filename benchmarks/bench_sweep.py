"""Benchmark + gate for the cross-experiment sweep planner.

Two gates (the PR's acceptance criteria), one JSON artifact:

1. **Dedup gate** -- compiling every registered exhibit into one plan
   must eliminate >= 30% of the naive per-experiment simulations.
   Compilation performs zero simulations, so this measures the *real*
   full-size plan, not a proxy.
2. **Wall-clock gate** -- executing a representative grid through the
   cost-aware DAG dispatcher (persistent pool, LPT dispatch,
   shared-memory transport) must be no slower than the legacy static
   ``pool.map`` path on the same cold-cache workload with 2 workers.
   The DAG pool is warmed once first (its production shape: one
   persistent pool across all exhibits), the map path spins its own
   pool per call (its production shape).

Writes ``BENCH_sweep.json`` (and ``sweep_plan.json``, the CI artifact)
into the working directory or ``$BENCH_OUT_DIR``.

Environment: ``BENCH_SWEEP_TOLERANCE`` (default 1.25) loosens the
wall-clock gate for noisy shared CI boxes; on a >= 4-core machine the
recorded ``speedup`` is expected to be materially > 1.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.experiments.plan import PLANNABLE_EXHIBITS, compile_plan, grid_plan  # noqa: E402
from repro.sim.engine import SimConfig  # noqa: E402

DEDUP_FLOOR = 0.30
WORKERS = 2

#: small windows: enough simulations to dominate dispatch overhead,
#: short enough for CI (the grid below is ~26 simulations)
BENCH_CONFIG = SimConfig(
    warmup_cycles=10_000.0, measure_cycles=60_000.0, seed=11
)
BENCH_MIXES = ("hetero-1", "hetero-2", "hetero-5", "homo-1")
BENCH_SCHEMES = ("nopart", "equal", "sqrt", "prop", "prio_apc")


def _fresh_cache(tag: str) -> str:
    d = tempfile.mkdtemp(prefix=f"bench-sweep-{tag}-")
    os.environ["REPRO_CACHE_DIR"] = d
    return d


def gate_dedup(out_dir: pathlib.Path) -> dict:
    plan = compile_plan(PLANNABLE_EXHIBITS, quick=True)
    plan.write(out_dir / "sweep_plan.json")
    print(plan.summary())
    return {
        "n_demanded": plan.n_demanded,
        "n_unique": plan.n_unique,
        "dedup_ratio": plan.dedup_ratio,
        "counts_by_kind": plan.counts_by_kind(),
        "pass": plan.dedup_ratio >= DEDUP_FLOOR,
    }


def _time_map() -> float:
    from repro.experiments.parallel import ParallelRunner

    _fresh_cache("map")
    runner = ParallelRunner(
        BENCH_CONFIG, max_workers=WORKERS, strategy="map"
    )
    t0 = time.perf_counter()
    runner.run_grid(BENCH_MIXES, BENCH_SCHEMES)
    return time.perf_counter() - t0


def _time_dag() -> float:
    from repro.experiments.dispatch import Dispatcher

    dispatcher = Dispatcher(max_workers=WORKERS)
    try:
        # warm the persistent pool (production amortizes this across
        # every exhibit of a sweep); the cache stays cold for the
        # timed run
        _fresh_cache("dag-warm")
        dispatcher.execute(grid_plan(("homo-1",), ("nopart",), BENCH_CONFIG))

        _fresh_cache("dag")
        plan = grid_plan(BENCH_MIXES, BENCH_SCHEMES, BENCH_CONFIG)
        t0 = time.perf_counter()
        _, stats = dispatcher.execute(plan)
        wall = time.perf_counter() - t0
        print(
            f"dag: {stats.n_tasks} tasks, {stats.n_steals} stolen, "
            f"{stats.utilization * 100:.0f}% utilization, "
            f"{stats.n_shm_segments} shm segments"
        )
        return wall
    finally:
        dispatcher.shutdown()


def gate_wallclock() -> dict:
    tolerance = float(os.environ.get("BENCH_SWEEP_TOLERANCE", "1.25"))
    map_wall = _time_map()
    dag_wall = _time_dag()
    speedup = map_wall / dag_wall if dag_wall > 0 else float("inf")
    print(
        f"map(pool.map, chunked): {map_wall:.2f}s   "
        f"dag(LPT + stealing):    {dag_wall:.2f}s   "
        f"speedup: {speedup:.2f}x (tolerance {tolerance:.2f})"
    )
    return {
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "map_wall_s": map_wall,
        "dag_wall_s": dag_wall,
        "speedup": speedup,
        "tolerance": tolerance,
        "pass": dag_wall <= map_wall * tolerance,
    }


def main() -> int:
    out_dir = pathlib.Path(os.environ.get("BENCH_OUT_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)

    dedup = gate_dedup(out_dir)
    wall = gate_wallclock()

    report = {"dedup": dedup, "wallclock": wall}
    report_path = out_dir / "BENCH_sweep.json"
    report_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {report_path} and {out_dir / 'sweep_plan.json'}")

    ok = True
    if not dedup["pass"]:
        print(
            f"FAIL: dedup ratio {dedup['dedup_ratio']:.1%} "
            f"below the {DEDUP_FLOOR:.0%} floor"
        )
        ok = False
    if not wall["pass"]:
        print(
            f"FAIL: dag wall {wall['dag_wall_s']:.2f}s exceeds "
            f"map wall {wall['map_wall_s']:.2f}s x {wall['tolerance']}"
        )
        ok = False
    print("bench-sweep: " + ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
