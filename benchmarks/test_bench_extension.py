"""Regenerate the extension experiment (heuristics vs derived optima)."""

from repro.experiments import extension
from repro.experiments.figure2 import OPTIMAL_FOR


def test_bench_extension(benchmark, bench_runner, save_exhibit):
    result = benchmark.pedantic(
        extension.run, args=(bench_runner,), rounds=1, iterations=1
    )
    save_exhibit("extension", extension.render(result))

    for metric, (_np_v, heur, opt) in result.brackets().items():
        # heuristics never beat the derived optimum on its own metric
        assert heur <= opt * 1.05, metric
    # and they avoid the priority schemes' starvation
    for h in extension.HEURISTICS:
        assert result.average(h, "minf") > 0.5, h
