#!/usr/bin/env python
"""Benchmark + gates for the watch layer (``repro.watch``).

Three gates, one JSON artifact (``BENCH_watch.json`` at the repo top
level, or ``$BENCH_OUT_DIR``):

1. **Shadow overhead** -- request-path cost of shadow-sampling at the
   default 5% rate vs sampling disabled, A/B interleaved in-process
   (no sockets, cache off, unbatched) so allocator and thermal state
   hit both sides equally.  The sampler's inflight bound sheds due
   samples rather than queueing sim work behind a burst, so the
   request path must stay within ``--threshold`` (default 3%).
2. **Drift detection** -- serving a deliberately perturbed surrogate
   artifact (passing model card, coefficients scaled to 0.5x) under
   shadow rate 1.0 must flip the ``degraded`` flag within
   ``--flag-budget`` requests (default 50).
3. **repro-top smoke** -- ``repro-top --once`` against a real HTTP
   server on an ephemeral port must exit 0 and render every pane.

Run (CI runs exactly this)::

    PYTHONPATH=src python benchmarks/bench_watch.py
    PYTHONPATH=src python benchmarks/bench_watch.py --requests 200 --repeats 3
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import statistics
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np  # noqa: E402

from repro.service import PartitionService, ServiceConfig  # noqa: E402
from repro.surrogate.artifact import SurrogateModel, save_model  # noqa: E402
from repro.surrogate.fit import (  # noqa: E402
    DEFAULT_TERMS,
    QualityThresholds,
    SchemeFit,
)

APC = [0.004, 0.007, 0.002]


def make_model(coef_scale: float = 1.0) -> SurrogateModel:
    """A fabricated ``min(x, g)``-surface artifact with a passing card.

    ``coef_scale=1.0`` tracks the sim within ~2.5% at contended
    operating points; ``0.5`` predicts half the true surface -- the
    perturbation the drift gate must catch online, because the stored
    card still claims fit-time quality.
    """
    coef = tuple(
        coef_scale if term == "min_xg" else 0.0 for term in DEFAULT_TERMS
    )
    return SurrogateModel(
        sweep_digest="ab" * 32,
        fits={
            "sqrt": SchemeFit(
                scheme="sqrt", terms=DEFAULT_TERMS, coef=coef, r2=0.999,
                mape=0.01, n_train=96, n_test=24, ridge=False,
            )
        },
        thresholds=QualityThresholds(),
        defaults={"row_locality": 0.6, "bank_frac": 0.9},
        settings={"preset": "bench"},
    )


def service_config(artifact_dir: str, **overrides) -> ServiceConfig:
    base = dict(
        batching=False,  # handle() without start(): pure request path
        cache=False,  # every request must actually solve
        surrogate_dir=artifact_dir,
    )
    base.update(overrides)
    return ServiceConfig(**base)


async def serve_requests(service: PartitionService, n: int, seed: int) -> float:
    """Serve ``n`` in-process surrogate solves; returns request-path seconds."""
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(n):
        apc = (np.array(APC) * rng.uniform(0.9, 1.1, size=3)).tolist()
        body = json.dumps(
            {"scheme": "sqrt", "apc_alone": apc, "bandwidth": 0.01,
             "profile": "surrogate"}
        ).encode()
        t0 = time.perf_counter()
        status, out = await service.handle("POST", "/v1/partition", body)
        total += time.perf_counter() - t0
        if status != 200:
            raise RuntimeError(f"bench request failed: {status} {out}")
    return total


# ----------------------------------------------------------------------
# gate 1: shadow-sampling overhead on the request path
# ----------------------------------------------------------------------
async def bench_overhead(
    artifact_dir: str, requests: int, repeats: int, rate: float
) -> dict:
    on: list[float] = []
    off: list[float] = []
    sampled = skipped = 0
    for i in range(repeats + 1):
        for with_shadow in (True, False):
            service = PartitionService(service_config(
                artifact_dir,
                shadow_rate=rate if with_shadow else 0.0,
                shadow_max_inflight=2,
            ))
            seconds = await serve_requests(service, requests, seed=17 + i)
            await service.drain_shadows()
            if i == 0:
                continue  # warmup pair: imports, allocator, caches
            if with_shadow:
                on.append(seconds)
                snap = service.watch.sampler.snapshot()
                sampled += snap["sampled"]
                skipped += snap["skipped_inflight"]
            else:
                off.append(seconds)
    mean_on = statistics.mean(on)
    mean_off = statistics.mean(off)
    return {
        "requests_per_side": requests,
        "repeats": repeats,
        "rate": rate,
        "mean_request_path_ms_shadow": mean_on * 1000.0,
        "mean_request_path_ms_baseline": mean_off * 1000.0,
        "overhead_pct": 100.0 * (mean_on - mean_off) / mean_off,
        "shadows_sampled": sampled,
        "shadows_skipped_inflight": skipped,
    }


# ----------------------------------------------------------------------
# gate 2: the drift detector flags a perturbed artifact
# ----------------------------------------------------------------------
async def bench_drift_flagging(artifact_dir: str, flag_budget: int) -> dict:
    service = PartitionService(service_config(
        artifact_dir,
        shadow_rate=1.0,
        shadow_max_inflight=8,
        drift_min_samples=6,
    ))
    rng = np.random.default_rng(23)
    served = 0
    flagged_at: int | None = None
    while served < flag_budget:
        for _ in range(4):
            apc = (np.array(APC) * rng.uniform(0.9, 1.1, size=3)).tolist()
            body = json.dumps(
                {"scheme": "sqrt", "apc_alone": apc, "bandwidth": 0.01,
                 "profile": "surrogate"}
            ).encode()
            await service.handle("POST", "/v1/partition", body)
            served += 1
        await service.drain_shadows()
        if service.watch.drift.degraded:
            flagged_at = served
            break
    snapshot = service.watch.drift.snapshot()
    # degraded + auto-fallback: the next surrogate request rides the sim
    status, after = await service.handle(
        "POST", "/v1/partition",
        json.dumps({"scheme": "sqrt", "apc_alone": APC, "bandwidth": 0.01,
                    "profile": "surrogate"}).encode(),
    )
    return {
        "flag_budget": flag_budget,
        "flagged_after_requests": flagged_at,
        "online_mape": snapshot["schemes"].get("sqrt", {}).get("mape"),
        "auto_fallback_source": after.get("source"),
    }


# ----------------------------------------------------------------------
# gate 3: repro-top --once against a real server
# ----------------------------------------------------------------------
async def bench_repro_top(artifact_dir: str) -> dict:
    from repro.watch.top import main as top_main

    service = PartitionService(ServiceConfig(
        port=0, cache=False, surrogate_dir=artifact_dir
    ))
    await service.start()
    try:
        await serve_requests(service, 5, seed=3)
        code = await asyncio.to_thread(
            top_main, ["--once", "--port", str(service.port)]
        )
    finally:
        await service.stop()
    return {"exit_code": code}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=400,
                        help="in-process requests per overhead side")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed A/B pairs (default 5, plus 1 warmup)")
    parser.add_argument("--rate", type=float, default=0.05,
                        help="shadow rate under test (default 0.05)")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="max allowed request-path overhead, percent")
    parser.add_argument("--flag-budget", type=int, default=50,
                        help="requests within which drift must be flagged")
    args = parser.parse_args(argv)

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as healthy_dir, \
            tempfile.TemporaryDirectory() as drifted_dir:
        save_model(make_model(1.0), healthy_dir)
        save_model(make_model(0.5), drifted_dir)

        overhead = asyncio.run(bench_overhead(
            healthy_dir, args.requests, args.repeats, args.rate
        ))
        print(f"shadow rate        : {overhead['rate']:.2f} "
              f"({overhead['shadows_sampled']} sampled, "
              f"{overhead['shadows_skipped_inflight']} shed by the "
              f"inflight bound)")
        print(f"request path shadow: "
              f"{overhead['mean_request_path_ms_shadow']:8.2f} ms "
              f"/ {overhead['requests_per_side']} requests")
        print(f"request path off   : "
              f"{overhead['mean_request_path_ms_baseline']:8.2f} ms")
        print(f"overhead           : {overhead['overhead_pct']:+8.2f} %  "
              f"(threshold {args.threshold:.1f} %)")
        if overhead["overhead_pct"] > args.threshold:
            failures.append("shadow-sampling overhead above threshold")

        drift = asyncio.run(bench_drift_flagging(
            drifted_dir, args.flag_budget
        ))
        print(f"drift flagged after: {drift['flagged_after_requests']} "
              f"requests (budget {drift['flag_budget']}; online MAPE "
              f"{drift['online_mape']:.3f})" if drift["flagged_after_requests"]
              else f"drift NOT flagged within {drift['flag_budget']} requests")
        print(f"auto-fallback      : source={drift['auto_fallback_source']}")
        if drift["flagged_after_requests"] is None:
            failures.append("drift detector missed the perturbed artifact")
        if drift["auto_fallback_source"] != "sim":
            failures.append("degraded artifact kept serving (no auto-fallback)")

        top = asyncio.run(bench_repro_top(healthy_dir))
        print(f"repro-top --once   : exit {top['exit_code']}")
        if top["exit_code"] != 0:
            failures.append("repro-top --once smoke failed")

    record = {
        "overhead": overhead,
        "threshold_pct": args.threshold,
        "drift": drift,
        "repro_top": top,
        "passing": not failures,
    }
    out_dir = os.environ.get("BENCH_OUT_DIR")
    base = pathlib.Path(out_dir) if out_dir else pathlib.Path(
        __file__).resolve().parent.parent
    base.mkdir(parents=True, exist_ok=True)
    out = base / "BENCH_watch.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
