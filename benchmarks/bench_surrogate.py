#!/usr/bin/env python
"""Benchmark + gate for the APC-response surrogate.

Two gates, one JSON artifact (``BENCH_surrogate.json`` at the repo
top level, or ``$BENCH_OUT_DIR``):

1. **Fit quality** -- the smoke sweep's cross-validated report card:
   every scheme must clear the serialization gate (held-out R^2 >= 0.98,
   MAPE <= 5%).  The sweep compiles through the experiment planner, so
   a warm SimCache makes this assembly-only; a cold cache costs ~15 s
   of simulation.
2. **Serving latency** -- mean per-request solve latency of the fitted
   surface (vectorized ``predict``, measured at batch 1: the worst case
   the micro-batcher can hand it) against the bounded-window sim path
   the service falls back to.  The surrogate must be >= 50x faster.

Run::

    PYTHONPATH=src python benchmarks/bench_surrogate.py
    PYTHONPATH=src python benchmarks/bench_surrogate.py --preset smoke --iters 200
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np  # noqa: E402

from repro.surrogate import (  # noqa: E402
    collect_dataset,
    fit_surface,
    full_settings,
    run_sweep,
    smoke_settings,
    sweep_digest,
)
from repro.surrogate.artifact import model_from_report  # noqa: E402
from repro.surrogate.simpath import simulate_partition_request  # noqa: E402

SPEEDUP_FLOOR = 50.0

_PRESETS = {"smoke": smoke_settings, "full": full_settings}


def bench_fit(preset: str, workers: int | None) -> tuple[dict, object]:
    settings = _PRESETS[preset]()
    t0 = time.perf_counter()
    results = run_sweep(settings, workers=workers)
    sweep_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    report = fit_surface(collect_dataset(results.values()))
    fit_s = time.perf_counter() - t0
    print(report.summary())
    print(f"[sweep {sweep_s:.1f}s ({len(results)} runs), fit {fit_s:.2f}s]")
    record = {
        "preset": preset,
        "sweep_digest": sweep_digest(settings),
        "sweep_seconds": sweep_s,
        "fit_seconds": fit_s,
        "n_runs": len(results),
        "passing": report.passing,
        "schemes": {
            name: {"r2": f.r2, "mape": f.mape}
            for name, f in report.fits.items()
        },
    }
    model = model_from_report(
        report, sweep_digest(settings), settings={"preset": preset}
    )
    return record, model


def bench_latency(model, iters: int, sim_iters: int, n_apps: int) -> dict:
    """Mean per-request solve latency: surrogate predict vs sim path."""
    rng = np.random.default_rng(7)
    apcs = rng.uniform(5e-4, 6e-3, size=(iters, n_apps))
    bands = rng.uniform(4e-3, 8e-3, size=iters)

    # warm up (first call pays numpy/scheme dispatch setup)
    model.predict("sqrt", apcs[:1], bands[:1])
    t0 = time.perf_counter()
    for i in range(iters):
        model.predict("sqrt", apcs[i : i + 1], bands[i : i + 1])
    surrogate_ms = (time.perf_counter() - t0) * 1000.0 / iters

    t0 = time.perf_counter()
    for i in range(sim_iters):
        simulate_partition_request("sqrt", apcs[i], float(bands[i]))
    sim_ms = (time.perf_counter() - t0) * 1000.0 / sim_iters

    speedup = sim_ms / surrogate_ms if surrogate_ms > 0 else float("inf")
    print(
        f"solve latency (batch 1, {n_apps} apps): "
        f"surrogate {surrogate_ms:.4f} ms vs sim {sim_ms:.2f} ms "
        f"-> {speedup:.0f}x"
    )
    return {
        "surrogate_ms": surrogate_ms,
        "sim_ms": sim_ms,
        "speedup": speedup,
        "iters": iters,
        "sim_iters": sim_iters,
        "n_apps": n_apps,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", choices=sorted(_PRESETS), default="smoke")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--iters", type=int, default=200, help="predict calls")
    parser.add_argument("--sim-iters", type=int, default=8, help="sim calls")
    parser.add_argument("--apps", type=int, default=4, help="apps per request")
    parser.add_argument("--out", default=None, help="artifact path override")
    args = parser.parse_args(argv)

    fit_record, model = bench_fit(args.preset, args.workers)
    latency = bench_latency(model, args.iters, args.sim_iters, args.apps)

    record = {
        "bench": "surrogate",
        "fit": fit_record,
        "latency": latency,
        "gates": {
            "fit_quality": fit_record["passing"],
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup_pass": latency["speedup"] >= SPEEDUP_FLOOR,
        },
    }
    if args.out:
        out = pathlib.Path(args.out)
    else:
        out_dir = os.environ.get("BENCH_OUT_DIR")
        base = (
            pathlib.Path(out_dir)
            if out_dir
            else pathlib.Path(__file__).resolve().parent.parent
        )
        out = base / "BENCH_surrogate.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"[wrote {out}]")

    failed = [k for k, v in record["gates"].items() if v is False]
    if failed:
        print(f"FAIL: gates missed: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
