#!/usr/bin/env python
"""Load generator for repro.service: batched vs unbatched throughput.

Two comparisons, both on the closed-form (``sqrt``) endpoint:

1. **Solve path** -- the naive one-request-one-solve loop (exactly what
   the server runs with ``--no-batch``) against the micro-batched
   vectorized kernel (one stacked numpy solve per group).  This isolates
   the speedup the service's batching exists to capture, without HTTP
   framing noise.  The acceptance bar is >= 5x.

2. **HTTP path** -- an in-process server on an ephemeral port, hammered
   by concurrent asyncio clients, once with micro-batching enabled and
   once without.  Reports RPS and p50/p99 latency for each mode.

``--profile surrogate`` runs a different comparison instead: it fits a
smoke-sweep surrogate artifact (SimCache-deduped; assembly-only when
the sweep already ran), serves it from an in-process server, and
drives ``profile: "surrogate"`` requests against ``profile: "sim"``
requests.  The mean *solve-path* latencies come from the server's own
``/metrics`` ``solvers`` section (so HTTP framing is excluded) and the
reported ``speedup_vs_sim`` must clear the 50x acceptance bar.

``--saturation`` runs the scale-out harness instead: a single-process
server and a pre-fork fleet (``--workers``), each ramped with an
**open-loop** arrival schedule (arrivals fire on the offered-rate
clock, not on completions, so latency includes client-side queueing --
no coordinated omission).  The knee is the highest offered rate a mode
sustains (achieved >= 90% of offered, error rate <= 1%); the artifact
records throughput and p50/p99 at the knee for both modes, the
fleet/single speedup, the cross-worker shared-cache hit check, the
overload 429+Retry-After shed check, and a bit-identity sweep proving
the fleet answers exactly what the single-process server answers.
Results land in top-level ``BENCH_service.json``; gates that require
more cores than the host has (a 1-CPU box cannot exhibit a 4-worker
speedup) are recorded as waived with the measured value, never faked.

Run:

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --requests 2000 --clients 32
    PYTHONPATH=src python benchmarks/bench_service.py --profile surrogate
    PYTHONPATH=src python benchmarks/bench_service.py --saturation --smoke --workers 2
    PYTHONPATH=src python benchmarks/bench_service.py --saturation --workers 4
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import platform
import signal
import statistics
import time

import numpy as np

from repro.service.batching import solve_partition_rows
from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.protocol import parse_partition_request, partition_response
from repro.service.server import PartitionService, _solve_one_partition
from repro.service.supervisor import Supervisor, _worker_main
from repro.util.cache import atomic_write_json


def make_requests(count: int, n_apps: int, seed: int = 7, with_metrics: bool = False):
    """Distinct parsed sqrt-scheme requests (no two hit the same cache key).

    By default the requests carry no ``api`` vector, so responses skip
    the (scalar, per-row) metric computation and the comparison isolates
    the allocation solve itself; ``--with-metrics`` adds it back.
    """
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(count):
        payload = {
            "scheme": "sqrt",
            "apc_alone": rng.uniform(1e-4, 0.02, size=n_apps).tolist(),
            "bandwidth": float(rng.uniform(5e-3, 0.05)),
        }
        if with_metrics:
            payload["api"] = rng.uniform(1e-3, 0.08, size=n_apps).tolist()
        requests.append(parse_partition_request(payload))
    return requests


def pctl(samples, q):
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * len(ordered)) - 1))
    return ordered[rank]


# ----------------------------------------------------------------------
# 1. solve path: naive loop vs vectorized micro-batch
# ----------------------------------------------------------------------
def bench_solver(requests, batch_size: int):
    t0 = time.perf_counter()
    naive = [
        partition_response(r, _solve_one_partition(r), batch_size=1)
        for r in requests
    ]
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = []
    for start in range(0, len(requests), batch_size):
        chunk = requests[start : start + batch_size]
        rows = solve_partition_rows(chunk)
        batched.extend(
            partition_response(r, row, batch_size=len(chunk))
            for r, row in zip(chunk, rows)
        )
    batched_s = time.perf_counter() - t0

    for a, b in zip(naive, batched):
        assert a["apc_shared"] == b["apc_shared"], "batched solve diverged"

    count = len(requests)
    naive_rps = count / naive_s
    batched_rps = count / batched_s
    print(f"solve path ({count} sqrt requests, batch={batch_size}):")
    print(f"  naive one-request-one-solve : {naive_rps:10.0f} solves/s")
    print(f"  micro-batched vectorized    : {batched_rps:10.0f} solves/s")
    print(f"  speedup                     : {batched_rps / naive_rps:10.1f}x")
    return batched_rps / naive_rps


# ----------------------------------------------------------------------
# 2. HTTP path: in-process server, concurrent clients
# ----------------------------------------------------------------------
async def drive_http(payloads, clients: int, batching: bool, max_wait_ms: float):
    config = ServiceConfig(
        port=0,
        batching=batching,
        cache=False,
        max_wait_ms=max_wait_ms,
        max_batch_size=256,
    )
    service = PartitionService(config)
    await service.start()
    latencies: list[float] = []
    try:
        shards = [payloads[i::clients] for i in range(clients)]

        async def worker(shard):
            async with AsyncServiceClient(port=service.port) as client:
                for payload in shard:
                    t0 = time.perf_counter()
                    await client.partition(
                        payload["apc_alone"],
                        payload["bandwidth"],
                        scheme=payload["scheme"],
                        api=payload.get("api"),
                    )
                    latencies.append((time.perf_counter() - t0) * 1e3)

        t0 = time.perf_counter()
        await asyncio.gather(*(worker(s) for s in shards if s))
        elapsed = time.perf_counter() - t0
    finally:
        await service.stop()
    return len(payloads) / elapsed, latencies


async def drive_http_batch_endpoint(payloads, clients: int, chunk: int):
    """Client-side batching: /v1/partition/batch with ``chunk`` per call."""
    config = ServiceConfig(port=0, batching=False, cache=False)
    service = PartitionService(config)
    await service.start()
    latencies: list[float] = []
    try:
        calls = [payloads[i : i + chunk] for i in range(0, len(payloads), chunk)]
        shards = [calls[i::clients] for i in range(clients)]

        async def worker(shard):
            async with AsyncServiceClient(port=service.port) as client:
                for call in shard:
                    t0 = time.perf_counter()
                    await client.partition_batch(call)
                    latencies.append((time.perf_counter() - t0) * 1e3)

        t0 = time.perf_counter()
        await asyncio.gather(*(worker(s) for s in shards if s))
        elapsed = time.perf_counter() - t0
    finally:
        await service.stop()
    return len(payloads) / elapsed, latencies


def to_payloads(requests):
    payloads = []
    for r in requests:
        payload = {
            "scheme": r.scheme,
            "apc_alone": list(r.apc_alone),
            "bandwidth": r.bandwidth,
        }
        if r.api is not None:
            payload["api"] = list(r.api)
        payloads.append(payload)
    return payloads


def bench_http(requests, clients: int, max_wait_ms: float, chunk: int):
    payloads = to_payloads(requests)
    print(f"\nhttp path ({len(payloads)} requests, {clients} concurrent clients):")
    for label, batching in (("unbatched", False), ("micro-batched", True)):
        rps, lat = asyncio.run(drive_http(payloads, clients, batching, max_wait_ms))
        print(
            f"  {label:14s}: {rps:8.0f} req/s   "
            f"p50 {pctl(lat, 50):6.2f} ms   p99 {pctl(lat, 99):6.2f} ms   "
            f"mean {statistics.mean(lat):6.2f} ms"
        )
    rps, lat = asyncio.run(drive_http_batch_endpoint(payloads, clients, chunk))
    print(
        f"  batch endpoint: {rps:8.0f} req/s   "
        f"p50 {pctl(lat, 50):6.2f} ms/call   p99 {pctl(lat, 99):6.2f} ms/call   "
        f"({chunk} requests per call)"
    )


# ----------------------------------------------------------------------
# 3. surrogate profile: fitted surface vs the sim fallback path
# ----------------------------------------------------------------------
SURROGATE_SPEEDUP_FLOOR = 50.0


async def drive_surrogate(artifact_dir: str, count: int, sim_count: int, n_apps: int):
    """Serve the artifact; return /metrics after surrogate + sim traffic."""
    import numpy as np

    config = ServiceConfig(port=0, cache=False, surrogate_dir=artifact_dir)
    service = PartitionService(config)
    await service.start()
    try:
        rng = np.random.default_rng(7)
        async with AsyncServiceClient(port=service.port) as client:
            for profile, n in (("surrogate", count), ("sim", sim_count)):
                for _ in range(n):
                    response = await client.partition(
                        rng.uniform(5e-4, 6e-3, size=n_apps).tolist(),
                        float(rng.uniform(4e-3, 8e-3)),
                        scheme="sqrt",
                        profile=profile,
                    )
                    assert response["source"] == profile, response
            return await client.metrics()
    finally:
        await service.stop()


def bench_surrogate_profile(args) -> int:
    """Fit an artifact, serve it, and compare solve-path latencies."""
    import tempfile

    from repro.surrogate import (
        collect_dataset,
        fit_surface,
        run_sweep,
        save_model,
        smoke_settings,
        sweep_digest,
    )
    from repro.surrogate.artifact import model_from_report

    settings = smoke_settings()
    print("fitting smoke-sweep surrogate (cached sweeps are assembly-only)...")
    dataset = collect_dataset(run_sweep(settings).values())
    report = fit_surface(dataset)
    if not report.passing:
        print(report.summary())
        print("FAIL: fit below the quality gate; not serving", flush=True)
        return 1
    artifact_dir = tempfile.mkdtemp(prefix="bench-surrogate-")
    save_model(
        model_from_report(report, sweep_digest(settings)), artifact_dir
    )

    metrics = asyncio.run(
        drive_surrogate(artifact_dir, args.requests, args.sim_requests, args.apps)
    )
    solvers = metrics["solvers"]
    surr_ms = solvers["surrogate"]["latency_ms"]["mean"]
    sim_ms = solvers["sim"]["latency_ms"]["mean"]
    speedup = metrics["speedup_vs_sim"].get("surrogate", 0.0)
    fallbacks = metrics["surrogate"]["fallbacks"]
    print(
        f"solve path ({args.requests} surrogate / {args.sim_requests} sim "
        f"requests, {args.apps} apps):"
    )
    print(f"  surrogate mean solve : {surr_ms:10.4f} ms")
    print(f"  sim-path mean solve  : {sim_ms:10.2f} ms")
    print(f"  speedup_vs_sim       : {speedup:10.1f}x   (fallbacks: {fallbacks})")
    if fallbacks:
        print(f"\nFAIL: {fallbacks} unexpected surrogate fallbacks")
        return 1
    if speedup < SURROGATE_SPEEDUP_FLOOR:
        print(
            f"\nFAIL: surrogate speedup {speedup:.1f}x below the "
            f"{SURROGATE_SPEEDUP_FLOOR:.0f}x target"
        )
        return 1
    return 0


# ----------------------------------------------------------------------
# 4. saturation: single process vs pre-fork fleet, open-loop ramps
# ----------------------------------------------------------------------
#: network/protocol errors the open-loop driver counts (not raises)
_DRIVE_ERRORS = (
    ServiceError,
    ConnectionError,
    OSError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
)


class SingleServer:
    """One PartitionService in its own forked process (fair baseline).

    The fleet workers are real processes, so the single-process
    baseline must be one too -- an in-loop server would share the
    load generator's event loop and undercount.  Reuses the
    supervisor's worker entry point with no supervisor attached.
    """

    def __init__(self, config: ServiceConfig) -> None:
        import multiprocessing

        self.config = config
        self._ctx = multiprocessing.get_context("fork")
        self._proc = None
        self.port: int | None = None

    def start(self) -> None:
        ready_q = self._ctx.Queue()
        self._proc = self._ctx.Process(
            target=_worker_main,
            args=(self.config, None, ready_q, None),
            name="bench-single-server",
        )
        self._proc.start()
        event = ready_q.get(timeout=30)
        if event[0] != "ready":
            raise RuntimeError(f"baseline server failed to start: {event}")
        self.port = event[3]

    def stop(self) -> None:
        if self._proc is None:
            return
        if self._proc.pid is not None and self._proc.is_alive():
            os.kill(self._proc.pid, signal.SIGTERM)
        self._proc.join(timeout=self.config.shutdown_grace_s + 5.0)
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=5.0)
        self._proc = None

    def __enter__(self) -> "SingleServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


async def _send_one(client, payload):
    await client.partition(
        payload["apc_alone"],
        payload["bandwidth"],
        scheme=payload["scheme"],
        api=payload.get("api"),
        profile=payload.get("profile", "analytic"),
    )


async def closed_loop_rps(port: int, payloads, clients_n: int) -> float:
    """Closed-loop burst: calibrates where to aim the open-loop ramp."""
    shards = [payloads[i::clients_n] for i in range(clients_n)]
    done = 0

    async def worker(shard):
        nonlocal done
        async with AsyncServiceClient(port=port) as client:
            for payload in shard:
                await _send_one(client, payload)
                done += 1

    t0 = time.perf_counter()
    await asyncio.gather(*(worker(s) for s in shards if s))
    return done / max(time.perf_counter() - t0, 1e-9)


async def open_loop(port: int, payloads, rate_rps: float, duration_s: float,
                    *, pool_cap: int = 96) -> dict:
    """Drive ``rate_rps`` for ``duration_s`` on the arrival clock.

    Arrivals fire when the offered-rate schedule says so, never when a
    previous response frees a slot; latency is measured from the
    *scheduled* arrival instant, so time a request spends queued behind
    a saturated connection pool is charged to the server (no
    coordinated omission).
    """
    total = max(1, int(rate_rps * duration_s))
    interval = 1.0 / rate_rps
    idle: asyncio.LifoQueue = asyncio.LifoQueue()
    opened = 0
    ok_latencies_ms: list[float] = []
    errors = 0

    async def fire(i: int, scheduled: float) -> None:
        nonlocal opened, errors
        try:
            client = idle.get_nowait()
        except asyncio.QueueEmpty:
            if opened < pool_cap:
                opened += 1
                client = AsyncServiceClient(port=port)
            else:
                client = await idle.get()
        try:
            await _send_one(client, payloads[i % len(payloads)])
        except _DRIVE_ERRORS:
            errors += 1
            await client.aclose()  # connection state is unknown; rebuild
        else:
            ok_latencies_ms.append((time.perf_counter() - scheduled) * 1e3)
        idle.put_nowait(client)

    start = time.perf_counter()
    tasks = []
    for i in range(total):
        scheduled = start + i * interval
        delay = scheduled - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(fire(i, scheduled)))
    await asyncio.gather(*tasks)
    elapsed = max(time.perf_counter() - start, 1e-9)
    while not idle.empty():
        await idle.get_nowait().aclose()
    return {
        "offered_rps": round(rate_rps, 1),
        "achieved_rps": round(len(ok_latencies_ms) / elapsed, 1),
        "sent": total,
        "ok": len(ok_latencies_ms),
        "errors": errors,
        "p50_ms": round(pctl(ok_latencies_ms, 50), 3),
        "p99_ms": round(pctl(ok_latencies_ms, 99), 3),
    }


def run_ramp(port: int, payloads, est_rps: float, fractions, step_s: float,
             label: str):
    """Open-loop stages around the calibrated rate; returns (stages, knee).

    The knee is the highest offered rate the mode *sustained*:
    achieved >= 90% of offered with an error rate <= 1%.  If even the
    lowest stage collapses, the first stage is reported (and marked
    unsustained) so the artifact still shows what was measured.
    """
    stages, knee = [], None
    for frac in fractions:
        rate = max(20.0, est_rps * frac)
        stage = asyncio.run(open_loop(port, payloads, rate, step_s))
        stage["sustained"] = bool(
            stage["achieved_rps"] >= 0.9 * stage["offered_rps"]
            and stage["errors"] <= 0.01 * stage["sent"]
        )
        print(
            f"  {label:6s} offered {stage['offered_rps']:8.0f} rps -> "
            f"achieved {stage['achieved_rps']:8.0f} rps   "
            f"p50 {stage['p50_ms']:7.2f} ms   p99 {stage['p99_ms']:7.2f} ms"
            f"{'' if stage['sustained'] else '   (collapsed)'}"
        )
        stages.append(stage)
        if stage["sustained"]:
            knee = stage
    return stages, knee or stages[0]


def check_bit_identity(single_port: int, fleet_port: int, payloads) -> dict:
    """Same request to both modes must yield byte-identical JSON bodies.

    ``cached`` and ``batch_size`` are envelope fields that legitimately
    depend on traffic shape (which batch a request landed in), not on
    the answer; everything else -- beta, apc_shared, metrics, source --
    must match exactly.
    """
    envelope = ("cached", "batch_size")

    def canon(body: dict) -> str:
        return json.dumps(
            {k: v for k, v in body.items() if k not in envelope},
            sort_keys=True,
        )

    mismatches = 0
    with ServiceClient(port=single_port) as one:
        with ServiceClient(port=fleet_port) as fleet:
            for payload in payloads:
                a = one.partition(
                    payload["apc_alone"], payload["bandwidth"],
                    scheme=payload["scheme"], api=payload.get("api"),
                    profile=payload.get("profile", "analytic"),
                )
                b = fleet.partition(
                    payload["apc_alone"], payload["bandwidth"],
                    scheme=payload["scheme"], api=payload.get("api"),
                    profile=payload.get("profile", "analytic"),
                )
                if canon(a) != canon(b):
                    mismatches += 1
    return {"checked": len(payloads), "mismatches": mismatches,
            "passed": mismatches == 0}


def check_shared_cache(port: int, payload, *, connections: int = 30,
                       timeout_s: float = 15.0) -> dict:
    """Repeat one key over fresh connections; expect cross-worker hits.

    SO_REUSEPORT spreads fresh connections over the workers, so the
    second worker's first sight of the key must come out of the shared
    segment unless every single connection landed on one worker.
    """
    for _ in range(connections):
        with ServiceClient(port=port) as client:
            client.partition(
                payload["apc_alone"], payload["bandwidth"],
                scheme=payload["scheme"], api=payload.get("api"),
            )
    hits = 0
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        with ServiceClient(port=port) as client:
            metrics = client.metrics()
        hits = (
            metrics.get("cluster", {}).get("cache", {}).get("shared_hits", 0)
        )
        if hits:
            break
        time.sleep(0.2)
    return {"connections": connections, "shared_hits": hits,
            "passed": hits > 0}


async def _overload_burst(port: int, payloads, burst: int) -> dict:
    """Slam a bounded fleet with concurrent sim solves; count the sheds."""
    async def one(i: int):
        client = AsyncServiceClient(port=port)
        payload = payloads[i % len(payloads)]
        try:
            await client.partition(
                payload["apc_alone"], payload["bandwidth"],
                scheme=payload["scheme"], api=payload.get("api"),
                profile="sim",
            )
            return ("ok", None)
        except ServiceError as exc:
            if exc.status == 429:
                return ("shed", exc.retry_after_s)
            return ("error", None)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            return ("error", None)
        finally:
            await client.aclose()

    outcomes = await asyncio.gather(*(one(i) for i in range(burst)))
    sheds = [hint for kind, hint in outcomes if kind == "shed"]
    return {
        "burst": burst,
        "ok": sum(1 for kind, _ in outcomes if kind == "ok"),
        "sheds": len(sheds),
        "retry_hint_present": bool(sheds) and all(
            h is not None and h > 0 for h in sheds
        ),
    }


def check_overload(port: int, payloads, *, burst: int = 40) -> dict:
    result = asyncio.run(_overload_burst(port, payloads, burst))
    # the other half of the contract: honouring the hint gets you in
    retried_ok = 0
    with ServiceClient(port=port, timeout=30.0) as client:
        for payload in payloads[:5]:
            body = client.request_with_retry(
                "POST", "/v1/partition",
                {"scheme": payload["scheme"],
                 "apc_alone": payload["apc_alone"],
                 "api": payload.get("api"),
                 "bandwidth": payload["bandwidth"],
                 "profile": "sim"},
                max_attempts=10,
            )
            retried_ok += 1 if "beta" in body else 0
    result["retried_ok"] = retried_ok
    result["passed"] = bool(
        result["sheds"] > 0 and result["retry_hint_present"]
        and retried_ok == 5
    )
    return result


def _surrogate_payloads(count: int, n_apps: int, seed: int = 11):
    """Surrogate-profile payloads inside the smoke artifact's domain."""
    rng = np.random.default_rng(seed)
    return [
        {
            "scheme": "sqrt",
            "apc_alone": rng.uniform(5e-4, 6e-3, size=n_apps).tolist(),
            "bandwidth": float(rng.uniform(4e-3, 8e-3)),
            "profile": "surrogate",
        }
        for _ in range(count)
    ]


def _fit_surrogate_artifact() -> str:
    import tempfile

    from repro.surrogate import (
        collect_dataset,
        fit_surface,
        run_sweep,
        save_model,
        smoke_settings,
        sweep_digest,
    )
    from repro.surrogate.artifact import model_from_report

    settings = smoke_settings()
    report = fit_surface(collect_dataset(run_sweep(settings).values()))
    if not report.passing:
        raise RuntimeError("surrogate fit below the quality gate")
    artifact_dir = tempfile.mkdtemp(prefix="bench-saturation-surrogate-")
    save_model(model_from_report(report, sweep_digest(settings)), artifact_dir)
    return artifact_dir


def bench_saturation(args) -> int:
    smoke = args.smoke
    workers = args.workers
    cpus = os.cpu_count() or 1
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    out_path = pathlib.Path(args.out) if args.out else repo_root / "BENCH_service.json"

    fractions = (0.5, 0.8, 1.1) if smoke else (0.4, 0.6, 0.8, 1.0, 1.2)
    step_s = 1.5 if smoke else 4.0
    calib_n = 300 if smoke else 1500
    identity_n = 64 if smoke else 128

    profile_payloads = {
        "analytic": to_payloads(
            make_requests(256, args.apps, with_metrics=True)
        ),
    }
    surrogate_dir = None
    if not smoke:
        print("fitting smoke-sweep surrogate artifact for the fleet...")
        surrogate_dir = _fit_surrogate_artifact()
        profile_payloads["surrogate"] = _surrogate_payloads(256, args.apps)

    # shadow_rate=0: the ramp measures *serving* throughput; the default
    # 5% sim shadow-sampling would contend for cores at high RPS and
    # dominate the knee (bench_watch gates shadow overhead separately)
    server_kwargs = dict(
        port=0, cache=False, max_wait_ms=1.0, shutdown_grace_s=2.0,
        surrogate_dir=surrogate_dir, shadow_rate=0.0,
    )
    profiles: dict[str, dict] = {}
    print(f"\nsaturation: {workers} workers vs 1 process on {cpus} CPU(s)")
    with SingleServer(ServiceConfig(**server_kwargs)) as single:
        with Supervisor(
            ServiceConfig(**server_kwargs, workers=workers, shared_cache=False)
        ) as fleet:
            fleet.start()
            fleet_mode = fleet.mode
            for profile, payloads in profile_payloads.items():
                print(f"profile {profile}:")
                calib = (payloads * (calib_n // len(payloads) + 1))[:calib_n]
                est_1 = asyncio.run(closed_loop_rps(single.port, calib, 8))
                stages_1, knee_1 = run_ramp(
                    single.port, payloads, est_1, fractions, step_s, "single"
                )
                est_n = asyncio.run(
                    closed_loop_rps(fleet.port, calib, max(8, 4 * workers))
                )
                stages_n, knee_n = run_ramp(
                    fleet.port, payloads, est_n, fractions, step_s, "fleet"
                )
                speedup = knee_n["achieved_rps"] / max(knee_1["achieved_rps"], 1e-9)
                print(f"  fleet/single speedup at the knee: {speedup:.2f}x")
                profiles[profile] = {
                    "single": {"calibrated_rps": round(est_1, 1),
                               "stages": stages_1, "knee": knee_1},
                    "fleet": {"calibrated_rps": round(est_n, 1),
                              "stages": stages_n, "knee": knee_n},
                    "speedup_fleet_vs_single": round(speedup, 3),
                }
            identity = check_bit_identity(
                single.port, fleet.port,
                profile_payloads["analytic"][:identity_n],
            )
            print(
                f"bit identity: {identity['checked']} requests, "
                f"{identity['mismatches']} mismatches"
            )

    # a second, *bounded* fleet exercises the overload contract and the
    # shared cache (the ramp fleet runs unbounded + uncached so the
    # knee measures solves, not cache hits)
    bounded = Supervisor(ServiceConfig(
        port=0, cache=True, workers=workers, max_inflight=2,
        max_wait_ms=1.0, shutdown_grace_s=2.0, metrics_sync_s=0.2,
    ))
    bounded.start()
    try:
        cache_check = check_shared_cache(
            bounded.port, profile_payloads["analytic"][0]
        )
        print(
            f"shared cache: {cache_check['shared_hits']} cross-worker hits "
            f"over {cache_check['connections']} fresh connections"
        )
        overload = check_overload(bounded.port, profile_payloads["analytic"])
        print(
            f"overload: {overload['sheds']}/{overload['burst']} shed with "
            f"Retry-After, {overload['retried_ok']}/5 retries landed"
        )
    finally:
        bounded.stop()

    # ---- gates (hardware-aware: never fake a speedup the host cannot
    # physically exhibit -- waive with the measured value instead) ----
    gate_profile = "surrogate" if "surrogate" in profiles else "analytic"
    measured = profiles[gate_profile]
    speedup = measured["speedup_fleet_vs_single"]
    knee = measured["fleet"]["knee"]
    tail_ratio = knee["p99_ms"] / max(knee["p50_ms"], 1e-9)
    floor = 3.0 if workers >= 4 else 0.65 * workers
    parallel_feasible = cpus > workers  # fleet + load generator need cores
    waived_reason = None if parallel_feasible else (
        f"host has {cpus} CPU(s) for {workers} workers plus the load "
        f"generator; no parallel speedup is physically available"
    )
    gates = {
        "speedup_fleet_vs_single": {
            "profile": gate_profile, "floor": floor,
            "value": speedup,
            "passed": (speedup >= floor) if parallel_feasible else None,
            "waived_reason": waived_reason,
        },
        "tail_p99_over_p50_at_knee": {
            "profile": gate_profile, "ceiling": 5.0,
            "value": round(tail_ratio, 3),
            "passed": (tail_ratio <= 5.0) if parallel_feasible else None,
            "waived_reason": waived_reason,
        },
        "shared_cache_hits": {
            "floor": 1, "value": cache_check["shared_hits"],
            "passed": cache_check["passed"],
        },
        "overload_sheds_with_retry_after": {
            "value": overload["sheds"], "passed": overload["passed"],
        },
        "bit_identity": {
            "value": identity["mismatches"], "passed": identity["passed"],
        },
    }
    enforced = [g for g in gates.values() if g["passed"] is not None]
    passed = all(g["passed"] for g in enforced)

    artifact = {
        "bench": "service-saturation",
        "mode": "smoke" if smoke else "full",
        "generated_unix": int(time.time()),
        "host": {
            "cpus": cpus,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "workers": workers,
        "supervisor_mode": fleet_mode,
        "apps": args.apps,
        "profiles": profiles,
        "shared_cache": cache_check,
        "overload": overload,
        "bit_identity": identity,
        "gates": gates,
        "passed": passed,
    }
    atomic_write_json(out_path, artifact)
    print(f"\nwrote {out_path}")
    for name, gate in gates.items():
        status = ("PASS" if gate["passed"] else "FAIL") \
            if gate["passed"] is not None else "WAIVED"
        print(f"  {status:6s} {name}: {gate.get('value')}")
    if not passed:
        print("\nFAIL: saturation gates not met")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1024, help="total requests")
    parser.add_argument("--apps", type=int, default=8, help="apps per request")
    parser.add_argument("--clients", type=int, default=16, help="concurrent clients")
    parser.add_argument("--batch", type=int, default=128, help="solver batch size")
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="micro-batch window"
    )
    parser.add_argument(
        "--with-metrics",
        action="store_true",
        help="include api vectors so responses compute all four metrics",
    )
    parser.add_argument(
        "--skip-http", action="store_true", help="solver comparison only"
    )
    parser.add_argument(
        "--profile",
        choices=("analytic", "surrogate"),
        default="analytic",
        help="surrogate: compare the fitted surface against the sim path",
    )
    parser.add_argument(
        "--sim-requests",
        type=int,
        default=12,
        help="sim-path requests for the surrogate comparison",
    )
    parser.add_argument(
        "--saturation",
        action="store_true",
        help="scale-out harness: single process vs pre-fork fleet, "
        "open-loop ramps, BENCH_service.json artifact",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="fleet size for --saturation"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short --saturation ramps, analytic profile only (CI budget)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="artifact path for --saturation (default: repo-root "
        "BENCH_service.json)",
    )
    args = parser.parse_args(argv)

    if args.saturation:
        if args.workers < 2:
            parser.error("--saturation needs --workers >= 2")
        return bench_saturation(args)

    if args.profile == "surrogate":
        if args.requests > 256:
            args.requests = 256  # enough for a stable mean at batch 1
        return bench_surrogate_profile(args)

    requests = make_requests(args.requests, args.apps, with_metrics=args.with_metrics)
    speedup = bench_solver(requests, args.batch)
    if not args.skip_http:
        bench_http(requests, args.clients, args.max_wait_ms, args.batch)
    if speedup < 5.0:
        print(f"\nWARNING: solve-path speedup {speedup:.1f}x below the 5x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
