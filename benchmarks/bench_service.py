#!/usr/bin/env python
"""Load generator for repro.service: batched vs unbatched throughput.

Two comparisons, both on the closed-form (``sqrt``) endpoint:

1. **Solve path** -- the naive one-request-one-solve loop (exactly what
   the server runs with ``--no-batch``) against the micro-batched
   vectorized kernel (one stacked numpy solve per group).  This isolates
   the speedup the service's batching exists to capture, without HTTP
   framing noise.  The acceptance bar is >= 5x.

2. **HTTP path** -- an in-process server on an ephemeral port, hammered
   by concurrent asyncio clients, once with micro-batching enabled and
   once without.  Reports RPS and p50/p99 latency for each mode.

``--profile surrogate`` runs a different comparison instead: it fits a
smoke-sweep surrogate artifact (SimCache-deduped; assembly-only when
the sweep already ran), serves it from an in-process server, and
drives ``profile: "surrogate"`` requests against ``profile: "sim"``
requests.  The mean *solve-path* latencies come from the server's own
``/metrics`` ``solvers`` section (so HTTP framing is excluded) and the
reported ``speedup_vs_sim`` must clear the 50x acceptance bar.

Run:

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --requests 2000 --clients 32
    PYTHONPATH=src python benchmarks/bench_service.py --profile surrogate
"""

from __future__ import annotations

import argparse
import asyncio
import statistics
import time

import numpy as np

from repro.service.batching import solve_partition_rows
from repro.service.client import AsyncServiceClient
from repro.service.config import ServiceConfig
from repro.service.protocol import parse_partition_request, partition_response
from repro.service.server import PartitionService, _solve_one_partition


def make_requests(count: int, n_apps: int, seed: int = 7, with_metrics: bool = False):
    """Distinct parsed sqrt-scheme requests (no two hit the same cache key).

    By default the requests carry no ``api`` vector, so responses skip
    the (scalar, per-row) metric computation and the comparison isolates
    the allocation solve itself; ``--with-metrics`` adds it back.
    """
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(count):
        payload = {
            "scheme": "sqrt",
            "apc_alone": rng.uniform(1e-4, 0.02, size=n_apps).tolist(),
            "bandwidth": float(rng.uniform(5e-3, 0.05)),
        }
        if with_metrics:
            payload["api"] = rng.uniform(1e-3, 0.08, size=n_apps).tolist()
        requests.append(parse_partition_request(payload))
    return requests


def pctl(samples, q):
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * len(ordered)) - 1))
    return ordered[rank]


# ----------------------------------------------------------------------
# 1. solve path: naive loop vs vectorized micro-batch
# ----------------------------------------------------------------------
def bench_solver(requests, batch_size: int):
    t0 = time.perf_counter()
    naive = [
        partition_response(r, _solve_one_partition(r), batch_size=1)
        for r in requests
    ]
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = []
    for start in range(0, len(requests), batch_size):
        chunk = requests[start : start + batch_size]
        rows = solve_partition_rows(chunk)
        batched.extend(
            partition_response(r, row, batch_size=len(chunk))
            for r, row in zip(chunk, rows)
        )
    batched_s = time.perf_counter() - t0

    for a, b in zip(naive, batched):
        assert a["apc_shared"] == b["apc_shared"], "batched solve diverged"

    count = len(requests)
    naive_rps = count / naive_s
    batched_rps = count / batched_s
    print(f"solve path ({count} sqrt requests, batch={batch_size}):")
    print(f"  naive one-request-one-solve : {naive_rps:10.0f} solves/s")
    print(f"  micro-batched vectorized    : {batched_rps:10.0f} solves/s")
    print(f"  speedup                     : {batched_rps / naive_rps:10.1f}x")
    return batched_rps / naive_rps


# ----------------------------------------------------------------------
# 2. HTTP path: in-process server, concurrent clients
# ----------------------------------------------------------------------
async def drive_http(payloads, clients: int, batching: bool, max_wait_ms: float):
    config = ServiceConfig(
        port=0,
        batching=batching,
        cache=False,
        max_wait_ms=max_wait_ms,
        max_batch_size=256,
    )
    service = PartitionService(config)
    await service.start()
    latencies: list[float] = []
    try:
        shards = [payloads[i::clients] for i in range(clients)]

        async def worker(shard):
            async with AsyncServiceClient(port=service.port) as client:
                for payload in shard:
                    t0 = time.perf_counter()
                    await client.partition(
                        payload["apc_alone"],
                        payload["bandwidth"],
                        scheme=payload["scheme"],
                        api=payload.get("api"),
                    )
                    latencies.append((time.perf_counter() - t0) * 1e3)

        t0 = time.perf_counter()
        await asyncio.gather(*(worker(s) for s in shards if s))
        elapsed = time.perf_counter() - t0
    finally:
        await service.stop()
    return len(payloads) / elapsed, latencies


async def drive_http_batch_endpoint(payloads, clients: int, chunk: int):
    """Client-side batching: /v1/partition/batch with ``chunk`` per call."""
    config = ServiceConfig(port=0, batching=False, cache=False)
    service = PartitionService(config)
    await service.start()
    latencies: list[float] = []
    try:
        calls = [payloads[i : i + chunk] for i in range(0, len(payloads), chunk)]
        shards = [calls[i::clients] for i in range(clients)]

        async def worker(shard):
            async with AsyncServiceClient(port=service.port) as client:
                for call in shard:
                    t0 = time.perf_counter()
                    await client.partition_batch(call)
                    latencies.append((time.perf_counter() - t0) * 1e3)

        t0 = time.perf_counter()
        await asyncio.gather(*(worker(s) for s in shards if s))
        elapsed = time.perf_counter() - t0
    finally:
        await service.stop()
    return len(payloads) / elapsed, latencies


def bench_http(requests, clients: int, max_wait_ms: float, chunk: int):
    payloads = []
    for r in requests:
        payload = {
            "scheme": r.scheme,
            "apc_alone": list(r.apc_alone),
            "bandwidth": r.bandwidth,
        }
        if r.api is not None:
            payload["api"] = list(r.api)
        payloads.append(payload)
    print(f"\nhttp path ({len(payloads)} requests, {clients} concurrent clients):")
    for label, batching in (("unbatched", False), ("micro-batched", True)):
        rps, lat = asyncio.run(drive_http(payloads, clients, batching, max_wait_ms))
        print(
            f"  {label:14s}: {rps:8.0f} req/s   "
            f"p50 {pctl(lat, 50):6.2f} ms   p99 {pctl(lat, 99):6.2f} ms   "
            f"mean {statistics.mean(lat):6.2f} ms"
        )
    rps, lat = asyncio.run(drive_http_batch_endpoint(payloads, clients, chunk))
    print(
        f"  batch endpoint: {rps:8.0f} req/s   "
        f"p50 {pctl(lat, 50):6.2f} ms/call   p99 {pctl(lat, 99):6.2f} ms/call   "
        f"({chunk} requests per call)"
    )


# ----------------------------------------------------------------------
# 3. surrogate profile: fitted surface vs the sim fallback path
# ----------------------------------------------------------------------
SURROGATE_SPEEDUP_FLOOR = 50.0


async def drive_surrogate(artifact_dir: str, count: int, sim_count: int, n_apps: int):
    """Serve the artifact; return /metrics after surrogate + sim traffic."""
    import numpy as np

    config = ServiceConfig(port=0, cache=False, surrogate_dir=artifact_dir)
    service = PartitionService(config)
    await service.start()
    try:
        rng = np.random.default_rng(7)
        async with AsyncServiceClient(port=service.port) as client:
            for profile, n in (("surrogate", count), ("sim", sim_count)):
                for _ in range(n):
                    response = await client.partition(
                        rng.uniform(5e-4, 6e-3, size=n_apps).tolist(),
                        float(rng.uniform(4e-3, 8e-3)),
                        scheme="sqrt",
                        profile=profile,
                    )
                    assert response["source"] == profile, response
            return await client.metrics()
    finally:
        await service.stop()


def bench_surrogate_profile(args) -> int:
    """Fit an artifact, serve it, and compare solve-path latencies."""
    import tempfile

    from repro.surrogate import (
        collect_dataset,
        fit_surface,
        run_sweep,
        save_model,
        smoke_settings,
        sweep_digest,
    )
    from repro.surrogate.artifact import model_from_report

    settings = smoke_settings()
    print("fitting smoke-sweep surrogate (cached sweeps are assembly-only)...")
    dataset = collect_dataset(run_sweep(settings).values())
    report = fit_surface(dataset)
    if not report.passing:
        print(report.summary())
        print("FAIL: fit below the quality gate; not serving", flush=True)
        return 1
    artifact_dir = tempfile.mkdtemp(prefix="bench-surrogate-")
    save_model(
        model_from_report(report, sweep_digest(settings)), artifact_dir
    )

    metrics = asyncio.run(
        drive_surrogate(artifact_dir, args.requests, args.sim_requests, args.apps)
    )
    solvers = metrics["solvers"]
    surr_ms = solvers["surrogate"]["latency_ms"]["mean"]
    sim_ms = solvers["sim"]["latency_ms"]["mean"]
    speedup = metrics["speedup_vs_sim"].get("surrogate", 0.0)
    fallbacks = metrics["surrogate"]["fallbacks"]
    print(
        f"solve path ({args.requests} surrogate / {args.sim_requests} sim "
        f"requests, {args.apps} apps):"
    )
    print(f"  surrogate mean solve : {surr_ms:10.4f} ms")
    print(f"  sim-path mean solve  : {sim_ms:10.2f} ms")
    print(f"  speedup_vs_sim       : {speedup:10.1f}x   (fallbacks: {fallbacks})")
    if fallbacks:
        print(f"\nFAIL: {fallbacks} unexpected surrogate fallbacks")
        return 1
    if speedup < SURROGATE_SPEEDUP_FLOOR:
        print(
            f"\nFAIL: surrogate speedup {speedup:.1f}x below the "
            f"{SURROGATE_SPEEDUP_FLOOR:.0f}x target"
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1024, help="total requests")
    parser.add_argument("--apps", type=int, default=8, help="apps per request")
    parser.add_argument("--clients", type=int, default=16, help="concurrent clients")
    parser.add_argument("--batch", type=int, default=128, help="solver batch size")
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="micro-batch window"
    )
    parser.add_argument(
        "--with-metrics",
        action="store_true",
        help="include api vectors so responses compute all four metrics",
    )
    parser.add_argument(
        "--skip-http", action="store_true", help="solver comparison only"
    )
    parser.add_argument(
        "--profile",
        choices=("analytic", "surrogate"),
        default="analytic",
        help="surrogate: compare the fitted surface against the sim path",
    )
    parser.add_argument(
        "--sim-requests",
        type=int,
        default=12,
        help="sim-path requests for the surrogate comparison",
    )
    args = parser.parse_args(argv)

    if args.profile == "surrogate":
        if args.requests > 256:
            args.requests = 256  # enough for a stable mean at batch 1
        return bench_surrogate_profile(args)

    requests = make_requests(args.requests, args.apps, with_metrics=args.with_metrics)
    speedup = bench_solver(requests, args.batch)
    if not args.skip_http:
        bench_http(requests, args.clients, args.max_wait_ms, args.batch)
    if speedup < 5.0:
        print(f"\nWARNING: solve-path speedup {speedup:.1f}x below the 5x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
