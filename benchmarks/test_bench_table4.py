"""Regenerate Table IV (workload construction + RSD heterogeneity)."""

import pytest

from repro.experiments import table4


def test_bench_table4(benchmark, bench_runner, save_exhibit):
    result = benchmark.pedantic(
        table4.run, args=(bench_runner,), rounds=1, iterations=1
    )
    save_exhibit("table4", table4.render(result))

    assert len(result.rows) == 14
    for row in result.rows:
        if row.mix == "homo-7":  # known paper off-by-one (EXPERIMENTS.md)
            continue
        assert row.rsd_paper_inputs == pytest.approx(
            row.rsd_printed, abs=0.02
        ), row.mix
    # measured profiles keep the hetero mixes above the RSD-30 line
    for row in result.rows:
        if row.is_heterogeneous:
            assert row.rsd_measured > 30.0, row.mix
