"""Regenerate Figure 3 (QoS guarantee: hmmer pinned at IPC 0.6)."""

import pytest

from repro.experiments import figure3


def test_bench_figure3(benchmark, bench_runner, save_exhibit):
    result = benchmark.pedantic(
        figure3.run, args=(bench_runner,), rounds=1, iterations=1
    )
    save_exhibit("figure3", figure3.render(result))

    # shape: the QoS partition pins hmmer at ~0.6 in both mixes...
    for mix in ("Mix-1", "Mix-2"):
        row = result.row(mix, "wsp")
        assert row.qos_ipc_guaranteed == pytest.approx(
            figure3.QOS_IPC_TARGET, rel=0.10
        ), mix
    # ...while No_partitioning does not regulate it
    deviations = [
        abs(result.row(m, "wsp").qos_ipc_nopart - figure3.QOS_IPC_TARGET)
        for m in ("Mix-1", "Mix-2")
    ]
    assert max(deviations) > 0.05
    # and best-effort throughput improves where FCFS was the bad baseline
    assert result.row("Mix-1", "wsp").best_effort_gain > 1.0
    assert result.row("Mix-1", "ipcsum").best_effort_gain > 1.0
