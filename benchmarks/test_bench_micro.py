"""Micro-benchmarks of the hot paths (proper multi-round timings).

Unlike the exhibit benches (single-shot end-to-end regenerations), these
time the kernels that dominate experiment wall-time: the event-driven
engine, the analytical model's allocation paths, and the numerical
optimizer -- useful for tracking performance regressions.
"""

import numpy as np

from repro.core import (
    AnalyticalModel,
    HarmonicWeightedSpeedup,
    SquareRootPartitioning,
    optimize_partition,
)
from repro.sim import FCFSScheduler, SimConfig, StartTimeFairScheduler, simulate
from repro.sim.cpu import CoreSpec
from repro.workloads.mixes import mix_core_specs, mix_paper_workload

_SHORT = SimConfig(warmup_cycles=10_000.0, measure_cycles=100_000.0, seed=7)


def test_bench_engine_fcfs_4core(benchmark):
    """100k-cycle 4-core FCFS simulation throughput."""
    specs = mix_core_specs("hetero-5")
    result = benchmark(lambda: simulate(specs, lambda n: FCFSScheduler(n), _SHORT))
    assert result.total_apc > 0


def test_bench_engine_stf_16core(benchmark):
    """100k-cycle 16-core start-time-fair simulation (fig-4 scale)."""
    specs = mix_core_specs("hetero-5", copies=4)
    beta = np.full(16, 1.0 / 16)
    result = benchmark(
        lambda: simulate(specs, lambda n: StartTimeFairScheduler(n, beta), _SHORT)
    )
    assert result.total_apc > 0


def test_bench_engine_saturated(benchmark):
    """Saturated channel (4 heavy streams): worst-case event density."""
    spec = CoreSpec(name="h", api=0.05, ipc_peak=0.5, mlp=24, write_fraction=0.1)
    specs = [spec] * 4
    result = benchmark(lambda: simulate(specs, lambda n: FCFSScheduler(n), _SHORT))
    assert result.bus_utilization > 0.9


def test_bench_model_allocation(benchmark):
    """Analytical operating point for one scheme (the what-if kernel)."""
    wl = mix_paper_workload("hetero-5")
    model = AnalyticalModel(wl, 0.01)
    scheme = SquareRootPartitioning()
    op = benchmark(lambda: model.operating_point(scheme))
    assert op.apc_shared.sum() > 0


def test_bench_model_compare_all(benchmark):
    """Full scheme-x-metric scoreboard (the consolidation-example path)."""
    from repro.core import default_schemes

    wl = mix_paper_workload("hetero-5")
    model = AnalyticalModel(wl, 0.01)
    schemes = default_schemes()
    table = benchmark(lambda: model.compare(schemes))
    assert len(table) == 6


def test_bench_numerical_optimizer(benchmark):
    """SLSQP partition optimization for a smooth metric."""
    wl = mix_paper_workload("hetero-5")
    result = benchmark.pedantic(
        lambda: optimize_partition(wl, 0.01, HarmonicWeightedSpeedup()),
        rounds=3,
        iterations=1,
    )
    assert result.objective > 0


def test_bench_cache_hierarchy(benchmark):
    """Functional L1/L2 filtering rate (refs/sec through the hierarchy)."""
    from repro.sim.cache import CacheHierarchy

    def run():
        h = CacheHierarchy()
        for addr in range(20_000):
            h.access(addr % 4096, addr % 7 == 0)
        return h

    h = benchmark(run)
    assert h.references == 20_000


def test_bench_knapsack(benchmark):
    """Greedy fractional-knapsack solve at fig-4 scale (16 apps)."""
    import numpy as np

    from repro.core import solve_fractional_knapsack

    rng = np.random.default_rng(3)
    v = rng.uniform(0.1, 5.0, 16)
    cap = rng.uniform(0.0005, 0.009, 16)
    sol = benchmark(lambda: solve_fractional_knapsack(v, cap, 0.04))
    assert sol.used_capacity > 0


def test_bench_frontier_sweep(benchmark):
    """31-point power-family sweep with all four metrics."""
    from repro.core import power_family_frontier
    from repro.workloads.mixes import mix_paper_workload

    wl = mix_paper_workload("hetero-5")
    points = benchmark(lambda: power_family_frontier(wl, 0.01))
    assert len(points) == 31


def test_bench_trace_replay(benchmark):
    """Open-loop replay throughput (requests/sec through MC+DRAM)."""
    from repro.sim.mc.fcfs import FCFSScheduler
    from repro.sim.replay import TraceRecord, replay_trace

    records = [
        TraceRecord(cycle=i * 60.0, line_addr=i * 13, is_write=i % 6 == 0, app_id=i % 4)
        for i in range(2_000)
    ]
    result = benchmark.pedantic(
        lambda: replay_trace(records, FCFSScheduler(4)), rounds=3, iterations=1
    )
    assert result.total_served == 2_000
