"""Regenerate Figure 2 (main evaluation: 4 metrics x 6 schemes x 14 mixes).

One benchmark per panel keeps per-panel timings visible; the grid is
simulated once (cached in the session runner) and the panels read it.
"""

import pytest

from repro.experiments import figure2
from repro.workloads.mixes import HETERO_MIXES, HOMO_MIXES


@pytest.fixture(scope="session")
def fig2_result(bench_runner, save_exhibit):
    result = figure2.run(bench_runner)
    save_exhibit("figure2", figure2.render(result))
    return result


def test_bench_figure2_grid(benchmark, bench_runner, fig2_result):
    """Times the (cached) full-grid pass; the heavy lifting happened in
    the fixture, so this times the analysis path."""
    benchmark.pedantic(
        figure2.run, args=(bench_runner,), rounds=1, iterations=1
    )


@pytest.mark.parametrize("metric", ["hsp", "minf", "wsp", "ipcsum"])
def test_fig2_panel_winner(fig2_result, metric, benchmark):
    """Per-panel shape: the paper's derived optimum tops the hetero avg."""
    def panel():
        return {
            s: fig2_result.hetero_average(s, metric)
            for s in figure2.FIG2_SCHEMES
        }

    values = benchmark.pedantic(panel, rounds=1, iterations=1)
    winner = figure2.OPTIMAL_FOR[metric]
    best = max(values, key=values.get)
    if winner.startswith("prio"):
        assert best.startswith("prio"), values
    else:
        assert best == winner, values


def test_fig2_headline_gains(fig2_result, benchmark):
    """The abstract's comparison: positive hetero-average gains of every
    optimal scheme over No_partitioning and over Equal."""
    headline = benchmark.pedantic(fig2_result.headline, rounds=1, iterations=1)
    for metric, (over_np, over_eq) in headline.items():
        assert over_np > 1.0, (metric, over_np)
        assert over_eq > 1.0, (metric, over_eq)


def test_fig2_homo_less_diverse(fig2_result, benchmark):
    """Sec. VI-A: homogeneous workloads show smaller scheme spreads."""
    def spreads():
        return (
            fig2_result.spread(HOMO_MIXES, "ipcsum"),
            fig2_result.spread(HETERO_MIXES, "ipcsum"),
        )

    homo, hetero = benchmark.pedantic(spreads, rounds=1, iterations=1)
    assert homo < hetero
