#!/usr/bin/env python
"""Telemetry overhead gate: instrumented engine vs ``REPRO_OBS=off``.

The ``repro.obs`` contract is that tracing never taxes the hot path:
spans mark *phases* (a handful per run), counters are flushed once per
run from plain locals, and the disabled path is one attribute read.
This benchmark enforces that contract -- it times identical engine runs
with tracing fully on (sample=1) and fully off, interleaved A/B/A/B so
thermal drift and allocator state hit both sides equally, and fails if
the enabled mean exceeds the disabled mean by more than the threshold.

Run (CI runs exactly this):

    PYTHONPATH=src python benchmarks/bench_obs.py
    PYTHONPATH=src python benchmarks/bench_obs.py --repeats 9 --threshold 3.0
    PYTHONPATH=src python benchmarks/bench_obs.py --trace out/sample.trace.json
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro import obs
from repro.sim.cpu import CoreSpec
from repro.sim.engine import SimConfig, simulate
from repro.sim.mc.fcfs import FCFSScheduler


def workload():
    return [
        CoreSpec(name="h0", api=0.04, ipc_peak=0.4, mlp=12),
        CoreSpec(name="h1", api=0.03, ipc_peak=0.5, mlp=8),
        CoreSpec(name="l0", api=0.005, ipc_peak=0.6, mlp=2),
        CoreSpec(name="l1", api=0.004, ipc_peak=0.5, mlp=2),
    ]


def one_run(config: SimConfig) -> float:
    t0 = time.perf_counter()
    simulate(workload(), lambda n: FCFSScheduler(n), config)
    return time.perf_counter() - t0


def measure(repeats: int, config: SimConfig) -> tuple[list[float], list[float]]:
    """Interleaved on/off timings (a warmup pair first, discarded)."""
    on: list[float] = []
    off: list[float] = []
    for i in range(repeats + 1):
        obs.configure(enabled=True, sample=1.0)
        t_on = one_run(config)
        obs.configure(enabled=False)
        t_off = one_run(config)
        if i == 0:
            continue  # warmup pair: imports, allocator, branch caches
        on.append(t_on)
        off.append(t_off)
        obs.tracer().clear()  # keep the ring from skewing later repeats
    return on, off


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=7,
                        help="timed A/B pairs (default 7, plus 1 warmup)")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="max allowed mean overhead, percent (default 3)")
    parser.add_argument("--measure-cycles", type=float, default=400_000.0,
                        help="simulated cycles per run (default 400k)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="also write one instrumented run's Chrome trace")
    args = parser.parse_args(argv)

    config = SimConfig(
        warmup_cycles=50_000.0,
        measure_cycles=args.measure_cycles,
        seed=11,
        epoch_cycles=100_000.0,  # exercise the scheduler_round spans too
    )

    obs.reset()
    on, off = measure(args.repeats, config)
    mean_on = statistics.mean(on)
    mean_off = statistics.mean(off)
    overhead = 100.0 * (mean_on - mean_off) / mean_off

    print(f"runs per side      : {len(on)}")
    print(f"tracing on   mean  : {mean_on * 1000.0:8.2f} ms  "
          f"(stdev {statistics.stdev(on) * 1000.0:.2f})")
    print(f"tracing off  mean  : {mean_off * 1000.0:8.2f} ms  "
          f"(stdev {statistics.stdev(off) * 1000.0:.2f})")
    print(f"overhead           : {overhead:+8.2f} %  (threshold "
          f"{args.threshold:.1f} %)")

    if args.trace:
        obs.reset()
        obs.configure(enabled=True, sample=1.0)
        simulate(workload(), lambda n: FCFSScheduler(n), config)
        obs.write_chrome_trace(args.trace, obs.tracer().spans())
        print(f"sample trace       : {args.trace} "
              f"({len(obs.tracer())} spans)")

    if overhead > args.threshold:
        print("FAIL: telemetry overhead above threshold", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
