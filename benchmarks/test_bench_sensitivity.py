"""Run the full robustness sweep (all perturbations, hetero-5)."""

from repro.experiments import sensitivity


def test_bench_sensitivity(benchmark, save_exhibit):
    result = benchmark.pedantic(sensitivity.run, rounds=1, iterations=1)
    save_exhibit("sensitivity", sensitivity.render(result))
    # the paper's per-metric winners survive every perturbation
    assert result.all_hold, result.winners
