"""Regenerate Table III (benchmark characterization, alone-mode runs)."""

from repro.experiments import table3


def test_bench_table3(benchmark, bench_runner, save_exhibit):
    result = benchmark.pedantic(
        table3.run, args=(bench_runner,), rounds=1, iterations=1
    )
    save_exhibit("table3", table3.render(result))

    assert len(result.rows) == 16
    # measured APKC within 15% of Table III for every benchmark
    assert result.worst_apkc_error < 0.15, [
        (r.name, round(r.apkc_error, 3)) for r in result.rows
    ]
    # the intensity ordering anchors: lbm highest, povray/sjeng lowest
    ordered = sorted(result.rows, key=lambda r: r.apkc_measured, reverse=True)
    assert ordered[0].name == "lbm"
    assert {r.name for r in ordered[-3:]} <= {"povray", "sjeng", "namd"}
