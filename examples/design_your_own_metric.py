#!/usr/bin/env python
"""Optimize a custom IPC-based objective (paper Sec. III-F).

The paper claims the model extends to *any* IPC-based system metric.
This example defines two metrics the paper never derives --
geometric-mean speedup and an SLA-style step objective -- and finds
their optimal bandwidth partitions with the generic numerical optimizer,
then sanity-checks the geometric-mean optimum against its known closed
form (equal APC, water-filled).

Run:  python examples/design_your_own_metric.py
"""

import numpy as np

from repro.core import (
    AnalyticalModel,
    AppProfile,
    Metric,
    Workload,
    optimize_partition,
)

workload = Workload.of(
    "custom",
    [
        AppProfile("stream-heavy", api=0.050, apc_alone=0.0090),
        AppProfile("balanced", api=0.020, apc_alone=0.0055),
        AppProfile("latency-bound", api=0.006, apc_alone=0.0030),
        AppProfile("cache-friendly", api=0.002, apc_alone=0.0012),
    ],
)
B = 0.0095


class GeoMeanSpeedup(Metric):
    """Geometric mean of per-app speedups (Nash-bargaining flavour)."""

    name = "geomean"
    label = "Geometric-mean speedup"

    def evaluate(self, ipc_shared, ipc_alone):
        if np.any(ipc_shared <= 0):
            return 0.0
        return float(np.exp(np.mean(np.log(ipc_shared / ipc_alone))))


class SLAValue(Metric):
    """Value accrues per app only once it clears 40% of standalone speed
    (a soft SLA), then linearly -- non-smooth, no closed form."""

    name = "sla"
    label = "SLA value"

    def evaluate(self, ipc_shared, ipc_alone):
        speedup = ipc_shared / ipc_alone
        return float(np.sum(np.where(speedup >= 0.4, speedup, 0.0)))


for metric in (GeoMeanSpeedup(), SLAValue()):
    result = optimize_partition(workload, B, metric, extra_starts=8)
    shares = ", ".join(
        f"{a.name}={b:.2f}" for a, b in zip(workload, result.beta)
    )
    print(f"{metric.label}:")
    print(f"  optimum value = {result.objective:.4f}")
    print(f"  optimal shares: {shares}\n")

# cross-check: geometric-mean optimum = equal-APC water-filling
geo = optimize_partition(workload, B, GeoMeanSpeedup())
cap = workload.apc_alone
equal_apc = np.minimum(np.full(4, B / 4), cap)
# redistribute what the capped app cannot use, equally among the rest
slack = B - equal_apc.sum()
uncapped = equal_apc < cap
equal_apc[uncapped] += slack / uncapped.sum()
print("geometric-mean closed form (equal APC, water-filled):",
      np.round(equal_apc * 1000, 3), "APKC")
print("numerical optimizer found:                           ",
      np.round(geo.apc_shared * 1000, 3), "APKC")

# and the four paper metrics still have their one-line derivations:
model = AnalyticalModel(workload, B)
from repro.core import HarmonicWeightedSpeedup

print("\npaper metric (Hsp) for contrast -> scheme:",
      model.optimal_scheme(HarmonicWeightedSpeedup()).label)

# ----------------------------------------------------------------
# priority weights (the paper's motivation: "applications with higher
# priority have more weights") also have derived optima -- no numerical
# optimizer needed:
from repro.core.weighted import (
    WeightedHarmonicSpeedup,
    WeightedSquareRootPartitioning,
)

weights = np.array([1.0, 4.0, 1.0, 1.0])  # 'balanced' is business-critical
scheme = WeightedSquareRootPartitioning(weights)
op = model.operating_point(scheme)
print("\nweighted Hsp (app 'balanced' weighted 4x):")
print("  derived optimal shares:",
      {a.name: round(float(b), 3) for a, b in zip(workload, op.beta)})
print(f"  weighted Hsp value: {op.evaluate(WeightedHarmonicSpeedup(weights)):.4f}")
