#!/usr/bin/env python
"""Trace one figure-2 point end to end with repro.obs.

Runs a single (mix, scheme) simulation point with span tracing on,
then writes everything an operator would want from the run:

* ``out/trace_quickstart/fig2-point.trace.json`` -- Chrome trace-event
  JSON; drop it on https://ui.perfetto.dev (or ``chrome://tracing``)
  to see where the wall-clock went: profiling runs, warmup vs
  measurement, scheduler rounds;
* ``out/trace_quickstart/fig2-point.manifest.json`` -- the provenance
  manifest (config digest, git revision, interpreter versions,
  per-phase timings);
* a ``repro-trace`` summary table on stdout.

Run:  PYTHONPATH=src python examples/trace_quickstart.py
"""

import time

from repro import obs
from repro.experiments.runner import Runner
from repro.obs.cli import render, summarize
from repro.sim.engine import SimConfig

OUT_DIR = "out/trace_quickstart"
MIX, SCHEME = "hetero-5", "sqrt"

# Short windows keep the example snappy; the trace shape is identical
# to a paper-scale run, just with smaller phase durations.
config = SimConfig(
    warmup_cycles=50_000.0,
    measure_cycles=200_000.0,
    seed=7,
    epoch_cycles=100_000.0,
)

obs.configure(enabled=True, sample=1.0)
manifest = obs.RunManifest.create(
    "fig2-point", {"mix": MIX, "scheme": SCHEME}, config
)

t0 = time.perf_counter()
run = Runner(config).run(MIX, SCHEME)
manifest.add_timing("point", time.perf_counter() - t0)

print(f"{MIX} under {SCHEME}: "
      + ", ".join(f"{k}={v:.4f}" for k, v in run.metrics.items()))

spans = obs.tracer().spans()
trace_path = f"{OUT_DIR}/fig2-point.trace.json"
obs.write_chrome_trace(trace_path, spans)
manifest_path = manifest.write(OUT_DIR)

print(f"\nwrote {trace_path} ({len(spans)} spans)"
      f" -- load it at https://ui.perfetto.dev")
print(f"wrote {manifest_path}"
      f" (git {manifest.git_rev or 'n/a'}, digest"
      f" {(manifest.config_digest or 'n/a')[:12]})")

print("\nwhere the time went:")
print(render(summarize(
    [{"name": s.name, "dur_us": s.dur_us, "cpu_us": s.cpu_us} for s in spans]
)))
