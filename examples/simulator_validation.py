#!/usr/bin/env python
"""Validate the analytical model against the cycle-level simulator.

For one heterogeneous workload, predict every scheme's per-app bandwidth
share and metric values with the analytical model, then measure them on
the GEM5+DRAMSim2-surrogate simulator -- the reproduction of the paper's
core validation loop.

Run:  python examples/simulator_validation.py
"""

import numpy as np

from repro.core import ALL_METRICS, AnalyticalModel, default_schemes
from repro.experiments.runner import Runner
from repro.sim import SimConfig
from repro.workloads.mixes import mix_core_specs

MIX = "hetero-6"  # lbm-libquantum-gromacs-zeusmp

runner = Runner(SimConfig(warmup_cycles=150_000, measure_cycles=600_000, seed=3))
specs = mix_core_specs(MIX)

print(f"profiling {MIX} standalone operating points...")
profiles = runner.profiles(specs)
for app in profiles:
    print(f"  {app.name:12s} APC_alone={app.apc_alone * 1000:6.3f} APKC "
          f"API={app.api * 1000:6.2f} APKI")

print("\nscheme      app          predicted-APKC  measured-APKC")
for name, scheme in default_schemes().items():
    run = runner.run(MIX, name)
    model = AnalyticalModel(profiles, run.sim.total_apc)
    predicted = model.operating_point(scheme)
    for i, app in enumerate(profiles):
        print(
            f"{name:12s}{app.name:12s}"
            f"{predicted.apc_shared[i] * 1000:14.3f}"
            f"{run.sim.apc_shared[i] * 1000:15.3f}"
        )

print("\nmetric agreement (predicted vs measured):")
for name, scheme in default_schemes().items():
    run = runner.run(MIX, name)
    model = AnalyticalModel(profiles, run.sim.total_apc)
    predicted = model.operating_point(scheme)
    cells = []
    for m in ALL_METRICS:
        p = m(predicted.ipc_shared, profiles.ipc_alone)
        s = m(run.sim.ipc_shared, run.ipc_alone)
        cells.append(f"{m.name}={p:.3f}/{s:.3f}")
    print(f"  {name:12s}" + "  ".join(cells))
