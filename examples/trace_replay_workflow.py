#!/usr/bin/env python
"""Trace capture + open-loop replay: scheduler what-ifs on a fixed stream.

Memory-controller studies often replay a *fixed* arrival trace against
different schedulers so every policy sees byte-identical traffic.  This
example:

1. runs a closed-loop simulation of one heavy + one light app and
   captures its off-chip request stream with ``TraceRecorder``;
2. saves / reloads the trace through the text format (portable:
   ``cycle line_addr r|w app_id`` per line);
3. replays it open-loop under FCFS, start-time-fair (Equal) and strict
   priority, comparing per-app latency and service share.

Run:  python examples/trace_replay_workflow.py
"""

import io

import numpy as np

from repro.sim import (
    CoreSpec,
    FCFSScheduler,
    PriorityScheduler,
    SimConfig,
    StartTimeFairScheduler,
    simulate,
)
from repro.sim.replay import TraceRecorder, read_trace, replay_trace

# --- 1. capture -------------------------------------------------------
specs = [
    CoreSpec(name="streamer", api=0.05, ipc_peak=0.5, mlp=16, write_fraction=0.1),
    CoreSpec(name="pointer-chaser", api=0.004, ipc_peak=0.6, mlp=2),
]
recorder = TraceRecorder()
cfg = SimConfig(warmup_cycles=0, measure_cycles=200_000, seed=21)
simulate(specs, lambda n: recorder.wrap(FCFSScheduler(n)), cfg)
print(f"captured {len(recorder.records)} requests "
      f"({sum(r.is_write for r in recorder.records)} writes)")

# --- 2. persist + reload ----------------------------------------------
buf = io.StringIO()
recorder.save(buf)
buf.seek(0)
trace = read_trace(buf)
assert trace == recorder.records
print(f"trace round-tripped through the text format "
      f"({len(buf.getvalue().splitlines())} lines)")

# --- 3. replay under three policies ------------------------------------
policies = {
    "fcfs": lambda: FCFSScheduler(2),
    "equal (STF)": lambda: StartTimeFairScheduler(2, np.array([0.5, 0.5])),
    "priority->light": lambda: PriorityScheduler(2, [1, 0]),
}

print(f"\n{'policy':18s}{'lat streamer':>14s}{'lat chaser':>13s}"
      f"{'share streamer':>16s}")
for name, factory in policies.items():
    result = replay_trace(trace, factory())
    print(
        f"{name:18s}{result.mean_latency[0]:14.0f}"
        f"{result.mean_latency[1]:13.0f}"
        f"{result.service_shares[0]:16.2f}"
    )

print("\ntakeaway: the same request stream, three different latency"
      "\ndistributions -- partitioning policy, not traffic, decides who waits.")
