"""Streaming re-partitioning over HTTP in ~70 lines.

Opens a ``/v1/stream`` session against an in-process service and plays
the paper's online loop (Sec. IV-C) from the client side: push the
three profiling counters after each epoch (elapsed window cycles,
per-app accesses, per-app interference cycles), get back the server's
smoothed ``APC_alone`` estimate and freshly re-solved shares.  The
server keeps the same smoothing + change-point state the simulator's
epoch controller uses (docs/CONTROL.md), so a phase change in the
pushed counters flips the shares within an epoch or two.
"""

from __future__ import annotations

import asyncio

from repro.service import AsyncServiceClient, PartitionService, ServiceConfig

API = [0.03, 0.04]  # accesses per instruction, fixed program properties
BANDWIDTH = 0.01  # DDR2-400-ish usable APC budget
WINDOW = 100_000  # epoch length in cycles

# two demand phases: app 0 heavy then app 1 heavy (an abrupt swap).
# counters are (accesses, interference_cycles) per app for one window;
# APC_alone estimate = accesses / (window - interference), Sec. IV-C.
PHASE_A = ([800, 200], [0, 30_000])
PHASE_B = ([200, 800], [30_000, 0])


def show(update: dict) -> None:
    est = ", ".join(
        "  --  " if x is None else f"{x:.4f}" for x in update["apc_alone_estimate"]
    )
    if update["beta"] is None:
        print(
            f"epoch {update['epoch']:2d}  est [{est}]  beta pending "
            f"({update['reason']})"
        )
        return
    beta = ", ".join(f"{x:.2f}" for x in update["beta"])
    flag = "  <- change point" if update["changed"] else ""
    print(f"epoch {update['epoch']:2d}  est [{est}]  beta [{beta}]{flag}")


async def main() -> None:
    service = PartitionService(ServiceConfig(port=0))
    await service.start()
    print(f"service listening on 127.0.0.1:{service.port}\n")

    async with AsyncServiceClient(port=service.port) as client:
        opened = await client.stream_open(
            API, BANDWIDTH, scheme="prop", smoothing="ema", smoothing_param=0.5
        )
        sid = opened["session"]
        print(f"opened stream {sid} (scheme={opened['scheme']})")

        # warm-up: only app 0 has traffic, and no prior was given for
        # app 1 -- the push is acknowledged but shares are withheld
        # until every app has been observed at least once.
        show(await client.stream_push(sid, WINDOW, [800, 0], [0, 0]))

        # phase A: app 0 dominates -> proportional shares follow
        for _ in range(4):
            accesses, interference = PHASE_A
            show(await client.stream_push(sid, WINDOW, accesses, interference))

        # abrupt swap: the relative-shift detector declares a change and
        # re-seeds the smoother from the post-change observation, so the
        # shares flip right away instead of bleeding through the EMA
        print("\n-- demand swaps: app 1 becomes the heavy app --\n")
        for _ in range(4):
            accesses, interference = PHASE_B
            show(await client.stream_push(sid, WINDOW, accesses, interference))

        info = await client.stream_info(sid)
        summary = await client.stream_close(sid)
        print(
            f"\nsession saw {info['epochs']} epochs, "
            f"{summary['change_points']} change point(s); closed."
        )

        metrics = await client.metrics()
        sessions = metrics["sessions"]
        print(
            f"server session metrics: opened={sessions['opened']} "
            f"closed={sessions['closed']} active={sessions['active']}"
        )

    await service.stop()


if __name__ == "__main__":
    asyncio.run(main())
