#!/usr/bin/env python
"""Consolidation what-if: which partitioning policy should this box run?

The paper's introduction motivates bandwidth partitioning with
multi-programmed consolidation.  This example plays the operator: given
a candidate set of jobs to co-locate on one 4-core CMP, it uses the
analytical model (no simulation -- milliseconds per what-if) to

1. score every partitioning policy on every objective,
2. show how the right policy depends on the objective you care about,
3. sweep bandwidth to find where upgrading memory stops paying off.

Run:  python examples/datacenter_consolidation.py
"""

import numpy as np

from repro.core import (
    ALL_METRICS,
    AnalyticalModel,
    Workload,
    default_schemes,
    metric_by_name,
)
from repro.workloads.spec import paper_profile

# the jobs the operator wants to consolidate (Table III surrogates)
JOBS = ["lbm", "sphinx3", "h264ref", "povray"]
workload = Workload.of("consolidation", [paper_profile(j) for j in JOBS])

print(f"candidate co-location: {', '.join(JOBS)}")
print(f"heterogeneity RSD = {workload.heterogeneity:.1f} "
      f"({'hetero' if workload.is_heterogeneous else 'homo'}geneous)\n")

# ----------------------------------------------------------------
# 1-2. policy scoreboard at DDR2-400 (0.01 APC)
# ----------------------------------------------------------------
model = AnalyticalModel(workload, total_bandwidth=0.0095)
table = model.compare(default_schemes())

print("policy scoreboard (higher is better):")
print("policy      " + "".join(f"{m.name:>9s}" for m in ALL_METRICS))
for name, row in table.items():
    print(f"{name:12s}" + "".join(f"{row[m.name]:9.3f}" for m in ALL_METRICS))

print("\nrecommended policy per objective:")
for m in ALL_METRICS:
    best = max(table, key=lambda s: table[s][m.name])
    print(f"  optimize {m.label:27s} -> run {best}")

# ----------------------------------------------------------------
# 3. bandwidth upgrade sweep: when does more memory stop helping?
# ----------------------------------------------------------------
print("\nbandwidth sweep (weighted speedup under Priority_APC):")
wsp = metric_by_name("wsp")
total_demand = float(workload.apc_alone.sum())
for gbs in (1.6, 3.2, 4.8, 6.4, 8.0):
    b = gbs / 3.2 * 0.01  # GB/s -> APC at 64 B / 5 GHz
    m = AnalyticalModel(workload, min(b, total_demand))
    best = m.max_weighted_speedup()
    note = "  <- demand-saturated" if b >= total_demand else ""
    print(f"  {gbs:4.1f} GB/s: Wsp = {best:.3f}{note}")

demand_gbs = total_demand * 64 * 5e9 / 1e9  # APC -> GB/s at 64 B / 5 GHz
print(
    "\n(once bandwidth exceeds the jobs' total standalone demand of "
    f"{demand_gbs:.2f} GB/s, partitioning is moot: everyone runs at "
    "standalone speed)"
)
