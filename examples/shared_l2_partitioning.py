#!/usr/bin/env python
"""Joint L2-capacity + memory-bandwidth partitioning (paper footnote 1).

The paper's model assumes private L2s; its footnote sketches the shared
L2 extension: replace the constant API with API(cache share), obtained
from a non-invasive profiler.  This example runs the whole loop:

1. profile miss-ratio curves API(share) for three synthetic apps by
   pushing reference streams through the Table II cache model at several
   L2 capacities;
2. evaluate the joint model: every cache partition induces a bandwidth
   sub-problem that the paper's closed forms solve optimally;
3. grid-search the cache partition and report the jointly-optimal
   (cache, bandwidth) split for two objectives.

Run:  python examples/shared_l2_partitioning.py
"""

import numpy as np

from repro.core.metrics import HarmonicWeightedSpeedup, SumOfIPCs
from repro.core.sharedl2 import (
    SharedL2App,
    SharedL2Model,
    optimize_joint,
    profile_miss_ratio_curve,
)
from repro.workloads.refgen import RefStreamSpec

# --- 1. profile API(cache share) per app ------------------------------
streams = {
    "db-like": RefStreamSpec(  # big reusable working set: cache-hungry
        refs_per_instr=0.30, streaming_fraction=0.01,
        working_set_lines=9_000, store_fraction=0.25,
    ),
    "stencil": RefStreamSpec(  # streaming: cache-insensitive, heavy
        refs_per_instr=0.30, streaming_fraction=0.10,
        working_set_lines=1_000, store_fraction=0.30,
    ),
    "scripting": RefStreamSpec(  # small footprint: light either way
        refs_per_instr=0.30, streaming_fraction=0.003,
        working_set_lines=512, store_fraction=0.15,
    ),
}
ipc_memfree = {"db-like": 0.9, "stencil": 0.45, "scripting": 1.2}

apps = []
print("profiled miss-ratio curves (APKI at L2 share):")
for name, spec in streams.items():
    curve = profile_miss_ratio_curve(spec, instructions=40_000)
    pts = "  ".join(
        f"{s:.3f}->{a * 1000:6.2f}" for s, a in zip(curve.shares, curve.apis)
    )
    print(f"  {name:10s} {pts}")
    apps.append(SharedL2App(name, curve, ipc_memfree[name]))

model = SharedL2Model(apps, total_bandwidth=0.0095)

# --- 2-3. joint optimization ------------------------------------------
for metric in (SumOfIPCs(), HarmonicWeightedSpeedup()):
    best = optimize_joint(model, metric, granularity=12)
    equal = model.evaluate(np.full(3, 1 / 3), metric)
    print(f"\nobjective: {metric.label}")
    print(f"  equal cache split : value {equal.metric_value:.4f}")
    print(f"  joint optimum     : value {best.metric_value:.4f} "
          f"({(best.metric_value / equal.metric_value - 1) * 100:+.1f}%)")
    print("  optimal cache shares:",
          {a.name: round(float(c), 3) for a, c in zip(apps, best.cache_shares)})
    print("  bandwidth shares    :",
          {a.name: round(float(b), 3)
           for a, b in zip(apps, best.operating_point.beta)})
