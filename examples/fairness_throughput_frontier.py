#!/usr/bin/env python
"""Map the fairness-throughput tradeoff of bandwidth partitioning.

Paper Sec. III-F shows Equal, Square_root, 2/3_power and Proportional
are all members of one family, beta ~ APC_alone^alpha.  This example
sweeps alpha, prints the metric curves, extracts the Pareto frontier of
(fairness, weighted speedup), and recommends the knee point -- a default
policy when no single objective has been blessed.

Run:  python examples/fairness_throughput_frontier.py
"""

import numpy as np

from repro.core import (
    Workload,
    best_alpha,
    knee_alpha,
    pareto_points,
    power_family_frontier,
)
from repro.workloads.spec import paper_profile

workload = Workload.of(
    "frontier-demo",
    [paper_profile(n) for n in ("libquantum", "milc", "gromacs", "gobmk")],
)
B = 0.0095  # utilized DDR2-400 bandwidth (APC)

points = power_family_frontier(workload, B, alphas=np.linspace(0.0, 1.5, 16))

print("alpha sweep (beta_i ~ APC_alone_i^alpha):")
print("alpha   hsp     minf    wsp     ipcsum")
for p in points:
    tag = {0.0: "  <- Equal", 0.5: "  <- Square_root", 1.0: "  <- Proportional"}.get(
        round(p.alpha, 2), ""
    )
    print(f"{p.alpha:5.2f}  {p['hsp']:.4f}  {p['minf']:.4f}  "
          f"{p['wsp']:.4f}  {p['ipcsum']:.4f}{tag}")

print("\nper-metric optima along the family:")
for metric in ("hsp", "minf", "wsp", "ipcsum"):
    best = best_alpha(points, metric)
    print(f"  {metric:7s} best at alpha = {best.alpha:.2f} "
          f"(value {best[metric]:.4f})")

frontier = pareto_points(points, x="minf", y="wsp")
print(f"\nPareto frontier (fairness vs weighted speedup): "
      f"{len(frontier)} of {len(points)} points survive")
for p in frontier:
    print(f"  alpha={p.alpha:.2f}  minf={p['minf']:.4f}  wsp={p['wsp']:.4f}")

knee = knee_alpha(points, x="minf", y="wsp")
print(f"\nrecommended default (knee of the tradeoff): alpha = {knee.alpha:.2f}")
print(f"  -> concedes {100 * (1 - knee['wsp'] / best_alpha(points, 'wsp')['wsp']):.1f}% "
      f"throughput for {100 * (knee['minf'] / best_alpha(points, 'wsp')['minf'] - 1):.0f}% "
      "better fairness than the throughput-optimal member")
