#!/usr/bin/env python
"""Online re-partitioning tracking a phase-changing application.

Paper Sec. IV-C (last paragraph): APC_alone is profiled periodically;
"when an application's behavior changes, its APC_alone will be updated
correspondingly [and] our partitioning schemes will change an
application's bandwidth share correspondingly."

This example runs a 4-app mix in which one app ("morph") starts as a
light pointer-chaser and turns into a heavy streamer at cycle 400k.  A
Proportional controller re-profiles every 50k cycles and updates the
start-time-fair shares; we print the share trajectory and show the
morphing app's share following its behaviour.

Run:  python examples/online_adaptation.py
"""

import numpy as np

from repro.core import ProportionalPartitioning
from repro.sim import (
    AdaptiveController,
    CorePhase,
    CoreSpec,
    SimConfig,
    StartTimeFairScheduler,
    simulate,
)

PHASE_SWITCH = 400_000.0

specs = [
    CoreSpec(name="streamer", api=0.05, ipc_peak=0.4, mlp=16, write_fraction=0.1),
    CoreSpec(name="steady", api=0.02, ipc_peak=0.4, mlp=8),
    CoreSpec(
        name="morph",
        api=0.004,  # phase 0: light
        ipc_peak=0.6,
        mlp=16,
        phases=(CorePhase(PHASE_SWITCH, 0.05, 0.5),),  # then: heavy
    ),
    CoreSpec(name="background", api=0.003, ipc_peak=0.7, mlp=2),
]

controller = AdaptiveController(
    ProportionalPartitioning(),
    api=[0.05, 0.02, 0.05, 0.003],  # morph's API declared at its heavy phase
    names=[s.name for s in specs],
    smoothing=0.7,
)

cfg = SimConfig(
    warmup_cycles=0,
    measure_cycles=800_000,
    seed=33,
    epoch_cycles=50_000.0,
)
result = simulate(
    specs,
    lambda n: StartTimeFairScheduler(n, np.full(n, 0.25)),
    cfg,
    repartition_hook=controller,
)

print("share trajectory (Proportional controller, epoch = 50k cycles):")
print(f"{'cycle':>9s}  " + "".join(f"{s.name:>12s}" for s in specs))
for cycle, beta in controller.history:
    marker = "  <- morph turns heavy" if abs(cycle - PHASE_SWITCH) < 25_000 else ""
    print(f"{cycle:9.0f}  " + "".join(f"{b:12.3f}" for b in beta) + marker)

before = next(b for c, b in controller.history if c < PHASE_SWITCH)
after = controller.history[-1][1]
print(f"\nmorph's share: {before[2]:.3f} before the phase change -> "
      f"{after[2]:.3f} after")
print("final measured IPCs:",
      {s.name: round(float(i), 3) for s, i in zip(specs, result.ipc_shared)})
