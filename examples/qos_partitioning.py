#!/usr/bin/env python
"""QoS-guaranteed bandwidth partitioning (paper Sec. III-G / VI-B).

Scenario: a latency-critical service (hmmer) shares a 4-core CMP with
three batch jobs.  The operator wants hmmer pinned at IPC = 0.6 while
the batch jobs get the best weighted speedup the leftover bandwidth
allows.  This example computes the reservation analytically and then
*validates it on the cycle-level simulator*.

Run:  python examples/qos_partitioning.py
"""

import numpy as np

from repro.core import (
    AppProfile,
    QoSPartitioner,
    QoSTarget,
    WeightedSpeedup,
    Workload,
)
from repro.sim import SimConfig, StartTimeFairScheduler, simulate, run_alone
from repro.workloads.mixes import mix_core_specs

TARGET_IPC = 0.6
MIX = "Mix-1"  # lbm, libquantum, omnetpp, hmmer (paper Sec. VI-B)

specs = mix_core_specs(MIX)
cfg = SimConfig(warmup_cycles=100_000, measure_cycles=500_000, seed=11)

# --- profile each app standalone (the paper's APC_alone measurement) ---
print("profiling standalone operating points...")
alone = [run_alone(s, cfg) for s in specs]
profiles = Workload.of(
    MIX,
    [
        AppProfile(s.name, api=s.api, apc_alone=a.apc)
        for s, a in zip(specs, alone)
    ],
)
for s, a in zip(specs, alone):
    print(f"  {s.name:12s} APC_alone={a.apc * 1000:6.3f} APKC  IPC_alone={a.ipc:.3f}")

# --- plan the QoS partition (Eq. 11: B_QoS + B_BE = B) ---
planner = QoSPartitioner(WeightedSpeedup())
plan = planner.plan(profiles, total_bandwidth=0.0095, targets=[QoSTarget("hmmer", TARGET_IPC)])
print(f"\nreservation: B_QoS={plan.b_qos * 1000:.3f} APKC "
      f"({plan.b_qos / 0.0095 * 100:.0f}% of bandwidth), "
      f"B_best_effort={plan.b_best_effort * 1000:.3f} APKC")
print("planned shares:", np.round(plan.beta, 3))

# --- enforce on the simulator via start-time-fair scheduling ----------
result = simulate(specs, lambda n: StartTimeFairScheduler(n, plan.beta), cfg)
i = [s.name for s in specs].index("hmmer")
print(f"\nsimulated hmmer IPC: {result.ipc_shared[i]:.3f} (target {TARGET_IPC})")
print("simulated per-app IPC:", {
    s.name: round(float(ipc), 3) for s, ipc in zip(specs, result.ipc_shared)
})

ok = abs(result.ipc_shared[i] - TARGET_IPC) / TARGET_IPC < 0.1
print("QoS guarantee", "HELD" if ok else "VIOLATED")
