#!/usr/bin/env python
"""Quickstart: the analytical model in ~40 lines.

Characterize four co-scheduled applications by (API, APC_alone), then
derive the paper's four optimal off-chip bandwidth partitions -- one per
system objective -- and compare what each scheme delivers.

Run:  python examples/quickstart.py
"""

from repro import AnalyticalModel, AppProfile, Workload
from repro.core import ALL_METRICS, default_schemes

# Table III values for the paper's motivating mix (Fig. 1):
# libquantum, milc, gromacs, gobmk on a 4-core CMP.
workload = Workload.of(
    "fig1-mix",
    [
        AppProfile("libquantum", api=0.0341188, apc_alone=0.00691693),
        AppProfile("milc", api=0.0422216, apc_alone=0.00687143),
        AppProfile("gromacs", api=0.0051976, apc_alone=0.00336604),
        AppProfile("gobmk", api=0.0040668, apc_alone=0.00191485),
    ],
)

# DDR2-400 delivers 3.2 GB/s = 0.01 accesses/cycle (64 B lines @ 5 GHz).
model = AnalyticalModel(workload, total_bandwidth=0.01)

print(f"workload heterogeneity (RSD): {workload.heterogeneity:.1f}"
      f"  -> {'heterogeneous' if workload.is_heterogeneous else 'homogeneous'}\n")

# 1. Derive the optimal partition for each objective (paper Sec. III).
for metric in ALL_METRICS:
    scheme = model.optimal_scheme(metric)
    op = model.operating_point(scheme)
    shares = ", ".join(
        f"{name}={share:.2f}"
        for name, share in zip(workload.names, op.beta)
    )
    print(f"{metric.label:28s} -> {scheme.label:13s}"
          f" value={op.evaluate(metric):.3f}  shares: {shares}")

# 2. Compare every scheme on every metric (the Fig. 1 table).
print("\nall schemes x all metrics:")
table = model.compare(default_schemes())
header = "scheme      " + "".join(f"{m.name:>9s}" for m in ALL_METRICS)
print(header)
for scheme_name, row in table.items():
    cells = "".join(f"{row[m.name]:9.3f}" for m in ALL_METRICS)
    print(f"{scheme_name:12s}{cells}")
