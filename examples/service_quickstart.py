"""Partitioning-advisor service in ~60 lines.

Starts the asyncio HTTP service in-process on an ephemeral port, asks
it for bandwidth partitions over the wire -- single requests, a batch
call, and a QoS plan -- then reads back the server's own metrics.
Everything here works identically against a standalone server started
with ``python -m repro.service`` (or the ``repro-serve`` entry point).
"""

from __future__ import annotations

import asyncio

from repro.service import AsyncServiceClient, PartitionService, ServiceConfig

# a 4-app mix in APC (accesses per cycle) terms, paper Table III style
APC_ALONE = [0.0131, 0.0106, 0.0052, 0.0018]  # lbm-like .. gobmk-like
API = [0.0465, 0.0191, 0.0076, 0.0070]
BANDWIDTH = 0.0198  # DDR2-400-ish usable APC budget


async def main() -> None:
    service = PartitionService(ServiceConfig(port=0, max_wait_ms=1.0))
    await service.start()
    print(f"service listening on 127.0.0.1:{service.port}\n")

    async with AsyncServiceClient(port=service.port) as client:
        # --- one partition per objective -------------------------------
        print("scheme       per-app APC shares                    Hsp    Wsp")
        for scheme in ("sqrt", "prop", "prio_apc", "prio_api"):
            result = await client.partition(
                APC_ALONE, BANDWIDTH, scheme=scheme, api=API
            )
            shares = "  ".join(f"{x:.4f}" for x in result["apc_shared"])
            print(
                f"{scheme:12s} [{shares}]  "
                f"{result['metrics']['hsp']:.3f}  {result['metrics']['wsp']:.3f}"
            )

        # --- the same four in one vectorized round trip ----------------
        batch = await client.partition_batch(
            [
                {"scheme": s, "apc_alone": APC_ALONE, "api": API, "bandwidth": BANDWIDTH}
                for s in ("sqrt", "prop", "prio_apc", "prio_api")
            ]
        )
        print(f"\nbatch call returned {len(batch)} solutions in one request")
        cached = await client.partition(APC_ALONE, BANDWIDTH, scheme="sqrt", api=API)
        print(f"repeat request served from cache: {cached['cached']}")

        # --- QoS: pin app 3's IPC, optimize best-effort Wsp ------------
        plan = await client.qos(
            APC_ALONE, API, BANDWIDTH, targets=[(3, 0.15)], objective="wsp"
        )
        print(
            f"\nQoS plan: app 3 reserved {plan['b_qos']:.4f} APC for IPC 0.15, "
            f"{plan['b_best_effort']:.4f} left for best-effort"
        )
        shares = "  ".join(f"{x:.4f}" for x in plan["apc_shared"])
        print(f"          shares [{shares}]")

        # --- the server kept score -------------------------------------
        metrics = await client.metrics()
        partition_stats = metrics["endpoints"]["/v1/partition"]
        print(
            f"\nserver metrics: {partition_stats['requests']} partition requests, "
            f"p50 {partition_stats['latency_ms']['p50']:.2f} ms, "
            f"cache hit rate {metrics['cache']['hit_rate']:.0%}"
        )

    await service.stop()


if __name__ == "__main__":
    asyncio.run(main())
